"""Metadata TLB: the LBA accelerator caching shadow-page translations.

The paper's evaluation uses LBA's *metadata-TLB* so the common case of a
lifeguard metadata lookup costs a single indexed load (Section 7.1).
This model is a small set-associative, LRU cache of shadow page numbers;
the timing substrate charges ``hit_cycles`` or ``miss_cycles``
accordingly.
"""

from __future__ import annotations

from typing import Dict, List


class MetadataTLB:
    """Set-associative LRU TLB over shadow pages."""

    def __init__(
        self,
        entries: int = 64,
        associativity: int = 4,
        page_size: int = 4096,
        hit_cycles: int = 1,
        miss_cycles: int = 30,
    ) -> None:
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        if associativity < 1:
            raise ValueError(
                f"associativity must be >= 1, got {associativity}"
            )
        if entries < associativity:
            # Covers entries <= 0 too: num_sets would be 0 and every
            # lookup would die on ``page % 0``.  (entries ==
            # associativity is legal -- it collapses to one
            # fully-associative set.)
            raise ValueError(
                f"entries ({entries}) must be >= associativity "
                f"({associativity}) so the TLB has at least one set"
            )
        if entries % associativity != 0:
            raise ValueError("entries must be a multiple of associativity")
        self.page_size = page_size
        self.associativity = associativity
        self.num_sets = entries // associativity
        self.hit_cycles = hit_cycles
        self.miss_cycles = miss_cycles
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def lookup(self, addr: int) -> int:
        """Translate ``addr``; returns the cycle cost of the lookup."""
        page = addr // self.page_size
        idx = page % self.num_sets
        way = self._sets[idx]
        if page in way:
            way.remove(page)
            way.append(page)
            self.hits += 1
            return self.hit_cycles
        self.misses += 1
        way.append(page)
        if len(way) > self.associativity:
            way.pop(0)
        return self.miss_cycles

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
