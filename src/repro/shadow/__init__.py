"""Shadow state substrate: lifeguard metadata storage.

Lifeguards keep fine-grained metadata for every application memory
location (paper Section 2).  This subpackage provides the two-level
shadow memory that stores it and the metadata-TLB accelerator from the
LBA platform (Section 7.1) that the timing model charges lookups
against.
"""

from repro.shadow.shadow_memory import ShadowMemory
from repro.shadow.metadata_tlb import MetadataTLB

__all__ = ["ShadowMemory", "MetadataTLB"]
