"""Two-level shadow memory.

Mirrors the classic Valgrind/LBA layout: a first-level table indexes
fixed-size second-level pages allocated on demand; untouched regions
cost nothing.  Values default to ``default`` until written.

Page backend: when numpy is available and the store only ever holds
plain ``int`` metadata (the common case -- allocation bits, taint
lattice codes), second-level pages are ``int64`` arrays, so burst
``store_range``/``load_range`` spans move as single C-level slice
operations.  The first store of a value an ``int64`` page cannot hold
(an arbitrary object, a huge int) transparently degrades the whole
store to plain-list pages; behavior is identical either way, and the
``page_backend`` stat reports which engaged.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.columnar import HAVE_NUMPY, np

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


class ShadowMemory:
    """Sparse per-location metadata store.

    Parameters
    ----------
    page_size:
        Locations per second-level page (power of two recommended).
    default:
        Metadata value of never-written locations.
    """

    def __init__(self, page_size: int = 4096, default: Any = 0) -> None:
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self.page_size = page_size
        self.default = default
        self._pages: Dict[int, Any] = {}
        self._vector = HAVE_NUMPY and self._fits(default)
        self.reads = 0
        self.writes = 0
        #: Observability counters: burst (range) accesses vs the
        #: per-word ``load``/``store`` calls folded into ``reads``/
        #: ``writes``, words moved by bursts, and total page
        #: materializations (plain int adds; read via :meth:`stats`).
        self.burst_reads = 0
        self.burst_writes = 0
        self.burst_read_words = 0
        self.burst_write_words = 0
        self.pages_allocated = 0

    @staticmethod
    def _fits(value: Any) -> bool:
        """Whether ``value`` survives an int64 round trip unchanged.

        ``bool`` is excluded: it would come back as ``0``/``1``.
        """
        return type(value) is int and _INT64_MIN <= value <= _INT64_MAX

    def _degrade(self) -> None:
        """Switch to list pages (a value int64 can't represent)."""
        for pid, page in self._pages.items():
            self._pages[pid] = page.tolist()
        self._vector = False

    def _page_of(self, addr: int) -> Tuple[int, int]:
        return addr // self.page_size, addr % self.page_size

    def load(self, addr: int) -> Any:
        """Read the metadata for ``addr``."""
        self.reads += 1
        pid, off = self._page_of(addr)
        page = self._pages.get(pid)
        if page is None:
            return self.default
        if self._vector:
            return int(page[off])
        return page[off]

    def store(self, addr: int, value: Any) -> None:
        """Write the metadata for ``addr`` (allocates its page)."""
        self.writes += 1
        if self._vector and not self._fits(value):
            self._degrade()
        pid, off = self._page_of(addr)
        page = self._pages.get(pid)
        if page is None:
            page = self._new_page()
            self._pages[pid] = page
            self.pages_allocated += 1
        page[off] = value

    def _new_page(self) -> Any:
        if self._vector:
            return np.full(self.page_size, self.default, dtype=np.int64)
        return [self.default] * self.page_size

    def store_range(self, start: int, size: int, value: Any) -> None:
        """Write ``value`` over ``[start, start + size)``.

        Bulk path: each page's span is written with one slice
        assignment, and a page fully covered by the range is replaced
        wholesale.  The whole burst counts as **one** logical write
        (``writes += 1``) -- it models a single range-update message,
        mirroring how LBA coalesces a malloc's metadata update.
        """
        if size <= 0:
            return
        self.writes += 1
        self.burst_writes += 1
        self.burst_write_words += size
        if self._vector and not self._fits(value):
            self._degrade()
        vector = self._vector
        page_size = self.page_size
        pages = self._pages
        end = start + size
        pid = start // page_size
        off = start - pid * page_size
        while start < end:
            span = min(page_size - off, end - start)
            page = pages.get(pid)
            if page is None:
                self.pages_allocated += 1
                if span == page_size:
                    # Whole-page fast path: no fill-then-overwrite.
                    if vector:
                        pages[pid] = np.full(page_size, value, dtype=np.int64)
                    else:
                        pages[pid] = [value] * page_size
                else:
                    page = self._new_page()
                    if vector:
                        page[off:off + span] = value
                    else:
                        page[off:off + span] = [value] * span
                    pages[pid] = page
            elif vector:
                page[off:off + span] = value
            else:
                page[off:off + span] = [value] * span
            start += span
            pid += 1
            off = 0

    def load_range(self, start: int, size: int) -> List[Any]:
        """Read ``[start, start + size)`` as a list, page by page.

        Counts as one logical read burst (``reads += 1``).
        """
        if size <= 0:
            return []
        self.reads += 1
        self.burst_reads += 1
        self.burst_read_words += size
        vector = self._vector
        page_size = self.page_size
        pages = self._pages
        default = self.default
        end = start + size
        pid = start // page_size
        off = start - pid * page_size
        out: List[Any] = []
        while start < end:
            span = min(page_size - off, end - start)
            page = pages.get(pid)
            if page is None:
                out.extend([default] * span)
            elif vector:
                out.extend(page[off:off + span].tolist())
            else:
                out.extend(page[off:off + span])
            start += span
            pid += 1
            off = 0
        return out

    @property
    def resident_pages(self) -> int:
        """Second-level pages materialized so far."""
        return len(self._pages)

    def stats(self) -> Dict[str, Any]:
        """Access-pattern telemetry: burst vs per-word traffic and page
        allocation pressure (consumed by ``repro stats`` and the bench
        report)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "burst_reads": self.burst_reads,
            "burst_writes": self.burst_writes,
            "burst_read_words": self.burst_read_words,
            "burst_write_words": self.burst_write_words,
            "scalar_reads": self.reads - self.burst_reads,
            "scalar_writes": self.writes - self.burst_writes,
            "pages_allocated": self.pages_allocated,
            "resident_pages": len(self._pages),
            "page_size": self.page_size,
            "page_backend": "numpy" if self._vector else "list",
        }

    def emit_metrics(self, recorder: Any, prefix: str = "shadow") -> None:
        """Publish :meth:`stats` as gauges named ``<prefix>.<key>``."""
        for key, value in self.stats().items():
            if isinstance(value, str):
                continue
            recorder.gauge(f"{prefix}.{key}", value)

    def nonzero_items(self) -> Iterator[Tuple[int, Any]]:
        """Iterate ``(addr, value)`` for locations differing from the
        default (test/debug helper)."""
        for pid, page in sorted(self._pages.items()):
            base = pid * self.page_size
            if self._vector:
                for off in (page != self.default).nonzero()[0].tolist():
                    yield base + off, int(page[off])
            else:
                for off, value in enumerate(page):
                    if value != self.default:
                        yield base + off, value
