"""Butterfly analysis: dataflow analysis adapted to dynamic parallel monitoring.

This package reproduces the system described in:

    Goodstein, Vlachos, Chen, Gibbons, Kozuch, Mowry.
    "Butterfly Analysis: Adapting Dataflow Analysis to Dynamic Parallel
    Monitoring." ASPLOS 2010.

Public entry points
-------------------
- :mod:`repro.trace` -- dynamic per-thread event sequences and interleavings.
- :mod:`repro.core` -- epochs, butterfly windows, the generic two-pass
  engine, and the canonical reaching-definitions / reaching-expressions
  analyses.
- :mod:`repro.lifeguards` -- butterfly and sequential AddrCheck /
  TaintCheck lifeguards.
- :mod:`repro.sim` -- the Log-Based Architectures (LBA) chip-multiprocessor
  timing substrate the paper evaluates on.
- :mod:`repro.workloads` -- Splash-2 / Parsec 2.0 synthetic workload
  generators.
- :mod:`repro.bench` -- the experiment harness regenerating the paper's
  Table 1 and Figures 11-13.
"""

from repro.trace.events import Instr, Op
from repro.trace.program import ThreadTrace, TraceProgram
from repro.core.epoch import (
    EpochPartition,
    partition_by_global_order,
    partition_fixed,
    partition_with_skew,
)
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.racecheck import ButterflyRaceCheck
from repro.lifeguards.taintcheck import ButterflyTaintCheck

__version__ = "1.0.0"

__all__ = [
    "Instr",
    "Op",
    "ThreadTrace",
    "TraceProgram",
    "EpochPartition",
    "partition_fixed",
    "partition_by_global_order",
    "partition_with_skew",
    "ButterflyAddrCheck",
    "ButterflyRaceCheck",
    "ButterflyTaintCheck",
    "__version__",
]
