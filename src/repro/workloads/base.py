"""Workload-generator scaffolding.

Benchmarks are built from *phases* separated by barriers, the SPMD
structure of every Splash-2/Parsec program we model.  Within a phase,
threads' events interleave randomly in recorded ground truth; across a
barrier, everything in phase ``p`` precedes everything in phase
``p+1``.  Generators that respect a simple discipline -- memory is
allocated in an earlier phase than any cross-thread access, and freed
in a later one -- therefore produce executions with *zero true
AddrCheck errors*, so every flag a lifeguard raises on them is a false
positive (exactly the Figure 13 setting).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import WorkloadError
from repro.trace.events import Instr
from repro.trace.program import GlobalRef, ThreadTrace, TraceProgram


@dataclass(frozen=True)
class WorkloadSpec:
    """A benchmark's identity and qualitative character.

    The character fields are the stream statistics that drive the
    paper's results (see the subpackage docstring); ``input_desc``
    reproduces Table 1's input-data-set column.
    """

    name: str
    suite: str
    input_desc: str
    #: Fraction of instructions that touch memory (rest are compute).
    mem_fraction: float
    #: Qualitative reuse: how effectively LBA's idempotent filter
    #: collapses repeated checks (0 = streaming, 1 = tight reuse).
    reuse: float
    #: Cross-thread allocation handoff intensity (drives butterfly
    #: false positives near epoch boundaries).
    sharing: float
    #: Load imbalance (0 = perfectly balanced).
    imbalance: float


class PhasedTraceBuilder:
    """Accumulates per-thread events phase by phase, recording a valid
    ground-truth interleaving."""

    def __init__(self, num_threads: int, rng: random.Random) -> None:
        if num_threads < 1:
            raise WorkloadError("need at least one thread")
        self.num_threads = num_threads
        self.rng = rng
        self._traces: List[List[Instr]] = [[] for _ in range(num_threads)]
        self._order: List[GlobalRef] = []
        self._timesliced: List[GlobalRef] = []
        self._ts_cursors: List[int] = [0] * num_threads

    def phase(self, per_thread: Sequence[Sequence[Instr]]) -> None:
        """One barrier-delimited phase: ``per_thread[t]`` is thread
        ``t``'s event list; events of different threads interleave in
        geometric chunks in the recorded order."""
        if len(per_thread) != self.num_threads:
            raise WorkloadError(
                f"phase needs {self.num_threads} event lists, "
                f"got {len(per_thread)}"
            )
        cursors = [0] * self.num_threads
        live = [t for t in range(self.num_threads) if per_thread[t]]
        while live:
            t = self.rng.choice(live)
            # Geometric chunk, mean ~8 events, models parallel drift.
            chunk = 1 + min(
                int(self.rng.expovariate(1 / 8.0)), 64
            )
            seq = per_thread[t]
            for _ in range(chunk):
                if cursors[t] >= len(seq):
                    break
                self._order.append((t, len(self._traces[t])))
                self._traces[t].append(seq[cursors[t]])
                cursors[t] += 1
            if cursors[t] >= len(seq):
                live.remove(t)
        # The timesliced execution runs each thread's whole phase chunk
        # back-to-back (barriers force every other thread to wait until
        # the phase completes anyway).
        for t in range(self.num_threads):
            end = len(self._traces[t])
            self._timesliced.extend(
                (t, i) for i in range(self._ts_cursors[t], end)
            )
            self._ts_cursors[t] = end

    def serial_phase(self, tid: int, instrs: Sequence[Instr]) -> None:
        """A phase executed by one thread while others wait."""
        lists: List[List[Instr]] = [[] for _ in range(self.num_threads)]
        lists[tid] = list(instrs)
        self.phase(lists)

    def build(self, preallocated: frozenset = frozenset()) -> TraceProgram:
        program = TraceProgram(
            [ThreadTrace(tr) for tr in self._traces],
            true_order=self._order,
            preallocated=preallocated,
            timesliced_order=self._timesliced,
        )
        program.validate()
        return program


class BenchmarkGenerator(abc.ABC):
    """One synthetic benchmark."""

    spec: WorkloadSpec

    @abc.abstractmethod
    def generate(
        self, num_threads: int, events_per_thread: int, seed: int = 0
    ) -> TraceProgram:
        """Produce a trace with ~``events_per_thread`` events per thread."""


# -- shared building blocks ------------------------------------------------

#: Locations per thread-private heap region; regions never overlap.
REGION = 1 << 20


def thread_region(tid: int) -> int:
    """Base location of thread ``tid``'s private heap."""
    return (tid + 1) * REGION


def compute_block(rng: random.Random, n: int) -> List[Instr]:
    """``n`` compute-only instructions (NOPs to the lifeguard)."""
    return [Instr.nop() for _ in range(n)]


def strided_reads(
    base: int, count: int, stride: int = 1
) -> List[Instr]:
    return [Instr.read(base + i * stride) for i in range(count)]


class StreamingWorkingSet:
    """One thread's memory-access generator: hot set plus a stream.

    A fraction ``reuse`` of the accesses hit a small resident *hot set*
    (which any idempotent filter keeps collapsing); the rest stream
    across the footprint with a **persistent cursor**, never revisiting
    a position until the whole footprint has been swept -- so a finite
    filter gains nothing from the stream, exactly like the paper's
    streaming benchmarks whose working sets dwarf any hardware table.
    ``reuse`` therefore directly sets the achievable filter rate.
    """

    def __init__(
        self,
        rng: random.Random,
        base: int,
        footprint: int,
        reuse: float,
        compute_per_mem: int,
    ) -> None:
        if footprint < 8:
            raise WorkloadError("footprint must be at least 8 locations")
        self.rng = rng
        self.base = base
        self.footprint = footprint
        self.reuse = reuse
        self.compute_per_mem = compute_per_mem
        self.hot = max(4, footprint // 20)
        self._cursor = 0

    def events(self, n: int) -> List[Instr]:
        """The next ``n`` events (memory ops interleaved with compute)."""
        out: List[Instr] = []
        rng = self.rng
        stream_span = max(1, self.footprint - self.hot)
        while len(out) < n:
            if rng.random() < self.reuse:
                loc = self.base + rng.randrange(self.hot)
            else:
                # Sequential sweep (array-walk locality: ~8 locations
                # per cache line) that never revisits a location until
                # the whole footprint has been covered.
                loc = self.base + self.hot + (self._cursor % stream_span)
                self._cursor += 1
            if rng.random() < 0.5:
                out.append(Instr.read(loc))
            else:
                out.append(Instr.write(loc))
            for _ in range(self.compute_per_mem):
                if len(out) < n:
                    out.append(Instr.nop())
        return out[:n]


def local_update(
    rng: random.Random,
    base: int,
    footprint: int,
    n: int,
    reuse: float,
    compute_per_mem: int,
) -> List[Instr]:
    """One-shot convenience wrapper over :class:`StreamingWorkingSet`.

    Stateless callers (tests) get a fresh cursor; benchmark generators
    should hold one :class:`StreamingWorkingSet` per thread so streams
    continue across phases.
    """
    return StreamingWorkingSet(
        rng, base, footprint, reuse, compute_per_mem
    ).events(n)
