"""Synthetic Parsec 2.0 benchmark: BLACKSCHOLES.

Blackscholes is the paper's embarrassingly parallel, compute-dominated
outlier: each thread re-prices its private slice of options every
iteration, so (a) memory operations are a small fraction of the
instruction stream, (b) reuse is extreme -- the unflushed timesliced
filter removes nearly every check, making the timesliced baseline very
fast -- and (c) there is no cross-thread sharing, hence no false
positives.  In Figure 11 it is the one benchmark where the timesliced
baseline still wins at eight threads, with butterfly scaling toward the
crossover.
"""

from __future__ import annotations

import random
from typing import List

from repro.trace.events import Instr
from repro.trace.program import TraceProgram
from repro.workloads.base import (
    BenchmarkGenerator,
    PhasedTraceBuilder,
    WorkloadSpec,
    thread_region,
)


class Blackscholes(BenchmarkGenerator):
    """Option pricing: private data, heavy compute, extreme reuse."""

    spec = WorkloadSpec(
        name="BLACKSCHOLES",
        suite="Parsec 2.0",
        input_desc="16384 options (simmedium)",
        mem_fraction=0.35,
        reuse=0.95,
        sharing=0.0,
        imbalance=0.03,
    )

    OPTIONS = 232  #: options per thread
    FIELDS = 6  #: spot, strike, rate, volatility, time, result

    def generate(
        self, num_threads: int, events_per_thread: int, seed: int = 0
    ) -> TraceProgram:
        rng = random.Random(seed)
        b = PhasedTraceBuilder(num_threads, rng)
        spec = self.spec
        cpm = round((1 - spec.mem_fraction) / spec.mem_fraction)
        footprint = self.OPTIONS * self.FIELDS
        data = [thread_region(t) for t in range(num_threads)]

        b.phase(
            [
                [Instr.write(data[t] + i) for i in range(footprint)]
                for t in range(num_threads)
            ]
        )

        per_option = self.FIELDS + self.FIELDS * cpm
        iter_cost = self.OPTIONS * per_option
        iters = max(1, events_per_thread // iter_cost)
        for _ in range(iters):
            phase: List[List[Instr]] = []
            for t in range(num_threads):
                evs: List[Instr] = []
                for opt in range(self.OPTIONS):
                    base = data[t] + opt * self.FIELDS
                    for f in range(self.FIELDS - 1):
                        evs.append(Instr.read(base + f))
                        evs.extend(Instr.nop() for _ in range(cpm))
                    evs.append(Instr.write(base + self.FIELDS - 1))
                    evs.extend(Instr.nop() for _ in range(cpm))
                phase.append(evs)
            b.phase(phase)
        preallocated = frozenset(
            loc
            for t in range(num_threads)
            for loc in range(data[t], data[t] + footprint)
        )
        return b.build(preallocated=preallocated)
