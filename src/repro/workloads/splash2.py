"""Synthetic Splash-2 benchmarks: BARNES, FFT, FMM, OCEAN, LU.

Each generator reproduces the stream statistics that matter to the
paper's evaluation (see the subpackage docstring).  The crucial knob is
the *handoff gap*: the number of same-thread events between an
allocation-state change and the first potentially-concurrent cross-
thread use.  A handoff is provably safe once the gap spans two epochs,
so gaps chosen between the two evaluated epoch sizes make false
positives appear only at the larger epoch -- the Figure 13 mechanism.

Startup allocations (the program's long-lived arrays) are modeled as
*pre-allocated* state: the paper measures billions of instructions where
the startup transient is negligible, whereas in a scaled trace an
initial malloc sits within an epoch or two of its first cross-thread
use and would drown the measurement in artifacts.  Only genuine
steady-state allocation churn (tree rebuilds, exchange buffers) remains
dynamic.

Default gaps assume the harness's scaled epoch sizes (512 / 4096
events; 1/16 of the paper's 8K / 64K instructions).
"""

from __future__ import annotations

import random
from typing import List

from repro.trace.events import Instr
from repro.trace.program import TraceProgram
from repro.workloads.base import (
    BenchmarkGenerator,
    PhasedTraceBuilder,
    StreamingWorkingSet,
    WorkloadSpec,
    thread_region,
)


def _skewed(base: int, tid: int, imbalance: float) -> int:
    """Deterministic per-thread load skew."""
    factor = 1.0 + imbalance * ((tid % 4) - 1.5) / 1.5
    return max(1, int(base * factor))


def _region_set(bases: List[int], size: int) -> frozenset:
    out = set()
    for base in bases:
        out.update(range(base, base + size))
    return frozenset(out)


class Barnes(BenchmarkGenerator):
    """N-body tree code: per-step tree rebuild (allocation churn), then
    a force phase reading other threads' tree cells with poor locality.
    The rebuild-to-force gap sits between the evaluated epoch sizes, so
    its false-positive rate jumps by orders of magnitude at the large
    epoch (Figure 13)."""

    spec = WorkloadSpec(
        name="BARNES",
        suite="Splash-2",
        input_desc="16384 bodies",
        mem_fraction=0.65,
        reuse=0.15,
        sharing=0.5,
        imbalance=0.08,
    )

    NODES = 48  #: tree cells allocated per thread per step
    BODIES = 24576  #: private body footprint per thread (streams past any filter)
    GAP = 1750  #: events between rebuild and cross-thread force reads
    CROSS = 2  #: cells sampled from each other thread per step

    def generate(
        self, num_threads: int, events_per_thread: int, seed: int = 0
    ) -> TraceProgram:
        rng = random.Random(seed)
        b = PhasedTraceBuilder(num_threads, rng)
        spec = self.spec
        cpm = round((1 - spec.mem_fraction) / spec.mem_fraction)

        bodies = [thread_region(t) for t in range(num_threads)]
        body_streams = [
            StreamingWorkingSet(rng, bodies[t], self.BODIES, spec.reuse, cpm)
            for t in range(num_threads)
        ]
        # Double-buffered tree cells: a buffer freed at step s was last
        # read at step s-2, a full step's worth of events earlier.
        cells = [
            [thread_region(t) + (1 << 19), thread_region(t) + (1 << 19) + 8192]
            for t in range(num_threads)
        ]

        step_cost = self.NODES * 2 + self.GAP + 600
        steps = max(1, events_per_thread // step_cost)
        for step in range(steps):
            cur = step % 2
            # Rebuild: retire the tree from two steps ago, build this one.
            rebuild: List[List[Instr]] = []
            for t in range(num_threads):
                evs: List[Instr] = []
                if step >= 2:
                    evs.append(Instr.free(cells[t][cur], self.NODES))
                evs.append(Instr.malloc(cells[t][cur], self.NODES))
                evs.extend(
                    Instr.write(cells[t][cur] + i) for i in range(self.NODES)
                )
                rebuild.append(evs)
            b.phase(rebuild)
            # Local body updates: the handoff gap.
            b.phase(
                [
                    body_streams[t].events(
                        _skewed(self.GAP, t, spec.imbalance)
                    )
                    for t in range(num_threads)
                ]
            )
            # Force computation: own cells heavily, others sampled.
            force: List[List[Instr]] = []
            for t in range(num_threads):
                evs = [
                    Instr.read(cells[t][cur] + rng.randrange(self.NODES))
                    for _ in range(200)
                ]
                for t2 in range(num_threads):
                    if t2 == t:
                        continue
                    evs.extend(
                        Instr.read(cells[t2][cur] + rng.randrange(self.NODES))
                        for _ in range(self.CROSS)
                    )
                evs.extend(
                    Instr.write(bodies[t] + rng.randrange(self.BODIES))
                    for _ in range(100)
                )
                rng.shuffle(evs)
                force.append(evs)
            b.phase(force)
        return b.build(preallocated=_region_set(bodies, self.BODIES))


class FFT(BenchmarkGenerator):
    """Radix-sqrt(n) FFT: long-lived partitions (no allocation churn),
    local butterflies with moderate reuse, and all-to-all transpose
    phases reading remote rows.  With no steady-state allocation churn,
    its false positives stay near zero at both epoch sizes."""

    spec = WorkloadSpec(
        name="FFT",
        suite="Splash-2",
        input_desc="m = 20 (2^20 sized matrix)",
        mem_fraction=0.55,
        reuse=0.50,
        sharing=0.2,
        imbalance=0.05,
    )

    ROWS = 16384  #: per-thread matrix partition (locations)

    def generate(
        self, num_threads: int, events_per_thread: int, seed: int = 0
    ) -> TraceProgram:
        rng = random.Random(seed)
        b = PhasedTraceBuilder(num_threads, rng)
        spec = self.spec
        cpm = round((1 - spec.mem_fraction) / spec.mem_fraction)
        part = [thread_region(t) for t in range(num_threads)]
        part_streams = [
            StreamingWorkingSet(rng, part[t], self.ROWS, spec.reuse, cpm)
            for t in range(num_threads)
        ]

        phase_cost = 1400
        iters = max(1, events_per_thread // (2 * phase_cost))
        for it in range(iters):
            # Local butterfly stage.
            b.phase(
                [
                    part_streams[t].events(
                        _skewed(phase_cost, t, spec.imbalance)
                    )
                    for t in range(num_threads)
                ]
            )
            # Transpose: strided remote reads, local writes.  The slice
            # is sampled so one transpose costs about one phase budget.
            transpose: List[List[Instr]] = []
            chunk = self.ROWS // max(1, num_threads)
            points_total = phase_cost // (2 + cpm)
            points_per_peer = max(1, points_total // max(1, num_threads))
            stride = max(2, chunk // points_per_peer)
            offset = (it * 3) % stride  # rotate the sampled slice so
            # successive transposes touch fresh locations
            for t in range(num_threads):
                evs: List[Instr] = []
                for t2 in range(num_threads):
                    base = part[t2] + t * chunk
                    for i in range(offset, chunk, stride):
                        evs.append(Instr.read(base + i))
                        evs.append(
                            Instr.write(part[t] + (t2 * chunk + i) % self.ROWS)
                        )
                        evs.extend(Instr.nop() for _ in range(cpm))
                transpose.append(evs)
            b.phase(transpose)
        return b.build(preallocated=_region_set(part, self.ROWS))


class FMM(BenchmarkGenerator):
    """Fast multipole: cell-list churn like BARNES but with handoff gaps
    wider than two large epochs, so its false positives stay low at both
    evaluated epoch sizes; load imbalance is the worst of the six."""

    spec = WorkloadSpec(
        name="FMM",
        suite="Splash-2",
        input_desc="32768 bodies",
        mem_fraction=0.65,
        reuse=0.15,
        sharing=0.3,
        imbalance=0.12,
    )

    CELLS = 48
    BODIES = 24576
    GAP = 8700  #: spans two epochs even at the large epoch size
    CROSS = 12

    def generate(
        self, num_threads: int, events_per_thread: int, seed: int = 0
    ) -> TraceProgram:
        rng = random.Random(seed)
        b = PhasedTraceBuilder(num_threads, rng)
        spec = self.spec
        cpm = round((1 - spec.mem_fraction) / spec.mem_fraction)
        bodies = [thread_region(t) for t in range(num_threads)]
        body_streams = [
            StreamingWorkingSet(rng, bodies[t], self.BODIES, spec.reuse, cpm)
            for t in range(num_threads)
        ]
        cells = [
            [thread_region(t) + (1 << 19), thread_region(t) + (1 << 19) + 8192]
            for t in range(num_threads)
        ]
        step_cost = self.CELLS * 2 + self.GAP + 400
        steps = max(1, events_per_thread // step_cost)
        for step in range(steps):
            cur = step % 2
            rebuild: List[List[Instr]] = []
            for t in range(num_threads):
                evs: List[Instr] = []
                if step >= 2:
                    evs.append(Instr.free(cells[t][cur], self.CELLS))
                evs.append(Instr.malloc(cells[t][cur], self.CELLS))
                evs.extend(
                    Instr.write(cells[t][cur] + i) for i in range(self.CELLS)
                )
                rebuild.append(evs)
            b.phase(rebuild)
            b.phase(
                [
                    body_streams[t].events(
                        _skewed(self.GAP, t, spec.imbalance)
                    )
                    for t in range(num_threads)
                ]
            )
            interact: List[List[Instr]] = []
            for t in range(num_threads):
                evs = [
                    Instr.read(cells[t][cur] + rng.randrange(self.CELLS))
                    for _ in range(150)
                ]
                for t2 in range(num_threads):
                    if t2 != t:
                        evs.extend(
                            Instr.read(
                                cells[t2][cur] + rng.randrange(self.CELLS)
                            )
                            for _ in range(self.CROSS)
                        )
                rng.shuffle(evs)
                interact.append(evs)
            b.phase(interact)
        return b.build(preallocated=_region_set(bodies, self.BODIES))


class Ocean(BenchmarkGenerator):
    """Grid solver with per-iteration boundary-exchange buffers: each
    iteration allocates fresh exchange rows, neighbours read them after
    one compute gap, and the owner frees them a gap later.  The gap
    jitters around the small-epoch safety threshold, so a few exchanges
    are flagged even at the small epoch and *every* exchange is flagged
    at the large one -- the paper's worst false-positive case, and the
    reason OCEAN's large-epoch configuration is slower (Figure 12):
    flag-handling costs offset the amortized barriers."""

    spec = WorkloadSpec(
        name="OCEAN",
        suite="Splash-2",
        input_desc="Grid size: 258 x 258",
        mem_fraction=0.55,
        reuse=0.15,
        sharing=0.9,
        imbalance=0.10,
    )

    GRID = 8192
    #: Boundary-buffer locations per neighbour handoff; shrinks with the
    #: thread count like a 2D decomposition's surface-to-volume ratio.
    EXCHANGE_BASE = 80
    GAP = 1450  #: nominal compute events separating alloc/read/free

    @staticmethod
    def exchange_size(num_threads: int) -> int:
        return max(8, int(Ocean.EXCHANGE_BASE / num_threads ** 0.5))

    def generate(
        self, num_threads: int, events_per_thread: int, seed: int = 0
    ) -> TraceProgram:
        rng = random.Random(seed)
        b = PhasedTraceBuilder(num_threads, rng)
        spec = self.spec
        cpm = round((1 - spec.mem_fraction) / spec.mem_fraction)
        grid = [thread_region(t) for t in range(num_threads)]
        grid_streams = [
            StreamingWorkingSet(rng, grid[t], self.GRID, spec.reuse, cpm)
            for t in range(num_threads)
        ]
        buf = [thread_region(t) + (1 << 19) for t in range(num_threads)]

        exchange = self.exchange_size(num_threads)
        iter_cost = 2 * self.GAP + 3 * exchange + 2
        iters = max(1, events_per_thread // iter_cost)
        for _ in range(iters):
            # Allocate and fill this iteration's exchange buffers.
            b.phase(
                [
                    [Instr.malloc(buf[t], exchange)]
                    + [Instr.write(buf[t] + i) for i in range(exchange)]
                    for t in range(num_threads)
                ]
            )
            # Interior stencil sweep (the handoff gap, jittered around
            # the small-epoch safety threshold).
            gap = int(self.GAP * rng.uniform(0.66, 1.28))
            b.phase(
                [
                    grid_streams[t].events(_skewed(gap, t, spec.imbalance))
                    for t in range(num_threads)
                ]
            )
            # Read both neighbours' boundary buffers.
            reads: List[List[Instr]] = []
            for t in range(num_threads):
                evs: List[Instr] = []
                for nb in ((t - 1) % num_threads, (t + 1) % num_threads):
                    if nb == t:
                        continue
                    evs.extend(
                        Instr.read(buf[nb] + i) for i in range(exchange)
                    )
                reads.append(evs)
            b.phase(reads)
            # Second sweep, then retire the buffers.
            gap = int(self.GAP * rng.uniform(0.66, 1.28))
            b.phase(
                [
                    grid_streams[t].events(_skewed(gap, t, spec.imbalance))
                    for t in range(num_threads)
                ]
            )
            b.phase(
                [
                    [Instr.free(buf[t], exchange)]
                    for t in range(num_threads)
                ]
            )
        return b.build(preallocated=_region_set(grid, self.GRID))


class LU(BenchmarkGenerator):
    """Blocked dense LU: long-lived blocks, very high reuse inside them
    (the unflushed timesliced filter eliminates nearly all checks,
    making the timesliced baseline fast), and pipeline-shaped imbalance.
    No allocation churn, so essentially no false positives at either
    epoch size."""

    spec = WorkloadSpec(
        name="LU",
        suite="Splash-2",
        input_desc="Matrix size: 1024 x 1024, b = 64",
        mem_fraction=0.50,
        reuse=0.90,
        sharing=0.3,
        imbalance=0.30,
    )

    BLOCK = 64
    BLOCKS_PER_THREAD = 4

    def generate(
        self, num_threads: int, events_per_thread: int, seed: int = 0
    ) -> TraceProgram:
        rng = random.Random(seed)
        b = PhasedTraceBuilder(num_threads, rng)
        spec = self.spec
        cpm = round((1 - spec.mem_fraction) / spec.mem_fraction)
        footprint = self.BLOCK * self.BLOCKS_PER_THREAD
        blocks = [thread_region(t) for t in range(num_threads)]
        block_streams = [
            StreamingWorkingSet(rng, blocks[t], footprint, spec.reuse, cpm)
            for t in range(num_threads)
        ]
        phase_cost = 1500
        steps = max(1, events_per_thread // phase_cost)
        for k in range(steps):
            owner = k % num_threads
            # Diagonal factorization: the owner works hardest; the
            # pipeline leaves other threads unevenly loaded.
            update: List[List[Instr]] = []
            for t in range(num_threads):
                if t == owner:
                    n = phase_cost // 2
                else:
                    n = _skewed(phase_cost // 3, t, spec.imbalance)
                evs = block_streams[t].events(n)
                if t != owner:
                    # Read the pivot block from the owner: high-reuse
                    # remote reads of a small, stable region.
                    pivot = (
                        blocks[owner]
                        + (k % self.BLOCKS_PER_THREAD) * self.BLOCK
                    )
                    evs.extend(
                        Instr.read(pivot + rng.randrange(self.BLOCK))
                        for _ in range(80)
                    )
                    rng.shuffle(evs)
                update.append(evs)
            b.phase(update)
        return b.build(preallocated=_region_set(blocks, footprint))
