"""Benchmark registry: the six programs of Table 1."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.base import BenchmarkGenerator
from repro.workloads.parsec import Blackscholes
from repro.workloads.splash2 import FFT, FMM, LU, Barnes, Ocean

#: Table 1's benchmark order.
BENCHMARKS: Dict[str, BenchmarkGenerator] = {
    "BARNES": Barnes(),
    "FFT": FFT(),
    "FMM": FMM(),
    "OCEAN": Ocean(),
    "BLACKSCHOLES": Blackscholes(),
    "LU": LU(),
}


def get_benchmark(name: str) -> BenchmarkGenerator:
    try:
        return BENCHMARKS[name.upper()]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}"
        ) from None


def benchmark_table_rows() -> List[Tuple[str, str, str]]:
    """Table 1's (Application, Suite, Input Data Set) rows."""
    return [
        (gen.spec.name, gen.spec.suite, gen.spec.input_desc)
        for gen in BENCHMARKS.values()
    ]
