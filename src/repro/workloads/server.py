"""A TaintCheck-oriented workload: a multi-threaded request server.

The Table 1 benchmarks exercise AddrCheck (the paper's evaluation);
this generator provides the equivalent stress for TaintCheck.  Thread 0
is the *receiver*: for every request it taints a per-worker request
slot (untrusted bytes arrive), validates, and untaints it.  Worker
threads then use their slot in a critical way (an indirect jump).  In
the recorded execution the sanitization always happens strictly before
the use, so the run is exploit-free -- unless ``attack_rate`` > 0, in
which case some requests skip validation and the use is a true
tainted-jump error under every ordering.

The taint-to-use distance is the same knob as the Splash-2 generators'
handoff gap: when it spans two epochs the sanitization is visible in
the SOS and butterfly TaintCheck stays silent; when the window is
wider than the gap, the receiver's taint sits in the wings of the
worker's jump and a false positive fires.
"""

from __future__ import annotations

import random
from typing import List

from repro.trace.events import Instr
from repro.trace.program import TraceProgram
from repro.workloads.base import (
    BenchmarkGenerator,
    PhasedTraceBuilder,
    StreamingWorkingSet,
    WorkloadSpec,
    thread_region,
)


class SecureServer(BenchmarkGenerator):
    """Receiver + workers with per-request taint/sanitize/use cycles."""

    spec = WorkloadSpec(
        name="SECURE-SERVER",
        suite="synthetic",
        input_desc="per-request taint/sanitize/use",
        mem_fraction=0.45,
        reuse=0.6,
        sharing=0.7,
        imbalance=0.05,
    )

    SLOT_FIELDS = 16  #: request-slot locations per worker
    GAP = 1400  #: events between sanitization and the worker's use

    def __init__(self, attack_rate: float = 0.0) -> None:
        self.attack_rate = attack_rate

    def generate(
        self, num_threads: int, events_per_thread: int, seed: int = 0
    ) -> TraceProgram:
        if num_threads < 2:
            raise ValueError("the server needs a receiver and >= 1 worker")
        rng = random.Random(seed)
        b = PhasedTraceBuilder(num_threads, rng)
        spec = self.spec
        cpm = round((1 - spec.mem_fraction) / spec.mem_fraction)
        workers = range(1, num_threads)
        slots = {w: thread_region(w) + (1 << 18) for w in workers}
        scratch = [
            StreamingWorkingSet(
                rng, thread_region(t), 4096, spec.reuse, cpm
            )
            for t in range(num_threads)
        ]

        iter_cost = 3 * self.GAP + 4 * self.SLOT_FIELDS
        iters = max(1, events_per_thread // iter_cost)
        attacks = []
        for _ in range(iters):
            attacked = {
                w for w in workers if rng.random() < self.attack_rate
            }
            attacks.append(attacked)
            # Requests arrive: receiver taints every worker's slot.
            receive: List[List[Instr]] = [[] for _ in range(num_threads)]
            for w in workers:
                receive[0].extend(
                    Instr.taint(slots[w] + f) for f in range(self.SLOT_FIELDS)
                )
            b.phase(receive)
            # Validation delay: everyone computes.
            b.phase(
                [scratch[t].events(self.GAP) for t in range(num_threads)]
            )
            # Sanitization (skipped for attacked requests).
            sanitize: List[List[Instr]] = [[] for _ in range(num_threads)]
            for w in workers:
                if w in attacked:
                    continue
                sanitize[0].extend(
                    Instr.untaint(slots[w] + f)
                    for f in range(self.SLOT_FIELDS)
                )
            b.phase(sanitize)
            # More compute: the sanitize-to-use gap.
            b.phase(
                [scratch[t].events(self.GAP) for t in range(num_threads)]
            )
            # Workers use their request in a critical way.
            use: List[List[Instr]] = [[] for _ in range(num_threads)]
            for w in workers:
                use[w].extend(
                    Instr.jump(slots[w] + f)
                    for f in range(0, self.SLOT_FIELDS, 4)
                )
            b.phase(use)
            # Response/cooldown: keeps the next request's taint from
            # landing adjacent to this request's use.
            b.phase(
                [scratch[t].events(self.GAP) for t in range(num_threads)]
            )
        program = b.build()
        return program
