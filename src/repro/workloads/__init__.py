"""Synthetic workload generators standing in for Splash-2 / Parsec 2.0.

The paper monitors six benchmarks (Table 1): BARNES, FFT, FMM, OCEAN,
LU from Splash-2 and BLACKSCHOLES from Parsec 2.0.  The binaries and
the Simics platform are unavailable here, so each benchmark is replaced
by a generator that emits a parallel event trace with that benchmark's
qualitative character -- memory-operation mix, data reuse (which drives
LBA's idempotent filter), cross-thread sharing and allocation churn
(which drive butterfly false positives), and load imbalance (which
drives parallel scaling).  DESIGN.md section 3 documents why these are
the statistics that matter.
"""

from repro.workloads.base import PhasedTraceBuilder, WorkloadSpec
from repro.workloads.registry import BENCHMARKS, get_benchmark

__all__ = [
    "PhasedTraceBuilder",
    "WorkloadSpec",
    "BENCHMARKS",
    "get_benchmark",
]
