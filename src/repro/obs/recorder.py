"""The observability recorder: typed counters/gauges, monotonic timing
spans, and a structured JSONL event log.

Design constraints (in priority order):

1. **Zero overhead when disabled.**  The default recorder everywhere is
   :data:`NULL_RECORDER`, whose methods are no-ops and whose ``enabled``
   flag is ``False``; instrumented hot paths branch on ``enabled`` once
   per epoch/batch so the disabled configuration executes the exact
   pre-observability code path (``benchmarks/test_observability_overhead.py``
   asserts the < 2% budget against the recorded baseline).
2. **Deterministic across execution backends.**  All recording happens
   on the engine's serial commit path, so analysis-level events arrive
   in the serial schedule's order regardless of backend.  Events whose
   very existence depends on the backend (fan-out batches, task
   submit/complete) are namespaced ``backend.*`` so consumers --
   including the determinism property tests -- can separate
   schedule-dependent telemetry from analysis-level facts.  Wall-clock
   readings only ever appear under the keys in
   :data:`WALL_CLOCK_FIELDS`; :func:`normalize_events` strips them.
3. **Zero dependencies.**  Standard library only; the JSONL sink is a
   thin wrapper over ``json.dumps`` + a text file handle.

Event schema (one JSON object per line)::

    {"seq": <int>, "ev": "<name>", ...fields..., ["dur_ns": <int>]}

``seq`` is a per-recorder monotonic sequence number; ``dur_ns`` is
present on span-close events only.  The full event vocabulary is
documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, IO, Iterable, List, Optional, Tuple

#: Keys holding wall-clock readings.  Everything else in an event is a
#: deterministic function of the trace and the analysis configuration.
WALL_CLOCK_FIELDS = ("dur_ns", "t_ns")


class JsonlSink:
    """Append events to a text stream as JSON lines.

    Crash-safe by construction: :meth:`open` uses line buffering and
    each record is emitted as one ``write`` of a complete line, so a
    killed run leaves a log that is readable up to (at worst) a single
    truncated final record -- which :func:`read_events` tolerates.

    Owns the handle when constructed via :meth:`open`; :meth:`close` is
    idempotent either way.
    """

    def __init__(self, stream: IO[str], owns_stream: bool = False) -> None:
        self._stream: Optional[IO[str]] = stream
        self._owns = owns_stream

    @classmethod
    def open(cls, path: str) -> "JsonlSink":
        """Open ``path`` for writing (raises ``OSError`` up front so
        callers fail before doing any work, not at flush time)."""
        return cls(open(path, "w", buffering=1), owns_stream=True)

    def write(self, event: Dict[str, Any]) -> None:
        if self._stream is not None:
            # One write call per record: with a line-buffered stream the
            # whole line reaches the OS before the next event starts.
            self._stream.write(
                json.dumps(event, separators=(",", ":")) + "\n"
            )

    def close(self) -> None:
        if self._stream is not None:
            try:
                self._stream.flush()
            except ValueError:  # caller closed the handle underneath us
                pass
            if self._owns:
                self._stream.close()
        self._stream = None


class _Span:
    """Reusable span context manager (one live span per ``with``)."""

    __slots__ = ("_recorder", "_name", "_fields", "_t0")

    def __init__(self, recorder: "Recorder", name: str, fields: Dict) -> None:
        self._recorder = recorder
        self._name = name
        self._fields = fields

    def __enter__(self) -> "_Span":
        self._t0 = self._recorder._clock()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._recorder._close_span(
            self._name, self._recorder._clock() - self._t0, self._fields
        )


class Recorder:
    """Collects counters, gauges, span aggregates, and an event log.

    Not thread-safe by design: every instrumented call site sits on the
    engine's serial commit path (see the module docstring), so a lock
    would only tax the common case.
    """

    enabled = True

    def __init__(
        self,
        sink: Optional[JsonlSink] = None,
        keep_events: bool = True,
        clock: Callable[[], int] = time.perf_counter_ns,
    ) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        #: Per-span aggregates: name -> [count, total_ns, max_ns].
        self.spans: Dict[str, List[int]] = {}
        self.events: List[Dict[str, Any]] = []
        self._sink = sink
        self._keep_events = keep_events
        self._clock = clock
        self._seq = 0

    # -- metrics --------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        self.gauges[name] = value

    def counters_update(self, items: Iterable[Tuple[str, int]]) -> None:
        """Bulk :meth:`count` (one call per batch, not per item)."""
        counters = self.counters
        for name, delta in items:
            counters[name] = counters.get(name, 0) + delta

    # -- events ---------------------------------------------------------

    @property
    def seq(self) -> int:
        """Sequence number of the most recently emitted event (0 when
        nothing has been emitted).  Checkpoints persist this so a
        resumed run's log continues the numbering instead of restarting
        at 1 and re-covering already-logged epochs."""
        return self._seq

    def resume_from(self, seq: int) -> None:
        """Continue an earlier log: the next event gets ``seq + 1``.

        Used by checkpoint resume so that truncating the interrupted
        run's log at the checkpoint boundary and concatenating the
        resumed log yields exactly the uninterrupted run's log.
        """
        if seq < 0:
            raise ValueError(f"cannot resume event log from seq {seq}")
        self._seq = seq

    def event(self, name: str, **fields: Any) -> None:
        """Append a structured event to the log (and the sink)."""
        self._seq += 1
        record = {"seq": self._seq, "ev": name}
        record.update(fields)
        if self._keep_events:
            self.events.append(record)
        if self._sink is not None:
            self._sink.write(record)

    # -- spans ----------------------------------------------------------

    def span(self, name: str, **fields: Any) -> _Span:
        """Context manager timing a region; emits a ``name`` event with
        ``dur_ns`` on exit and feeds the per-name aggregate."""
        return _Span(self, name, fields)

    def _close_span(self, name: str, dur_ns: int, fields: Dict) -> None:
        agg = self.spans.get(name)
        if agg is None:
            self.spans[name] = [1, dur_ns, dur_ns]
        else:
            agg[0] += 1
            agg[1] += dur_ns
            if dur_ns > agg[2]:
                agg[2] = dur_ns
        self.event(name, **fields, dur_ns=dur_ns)

    # -- output ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time metrics view (counters, gauges, span stats)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "spans": {
                name: {"count": c, "total_ns": t, "max_ns": m}
                for name, (c, t, m) in self.spans.items()
            },
        }

    def close(self) -> None:
        """Flush and release the sink (idempotent)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def dump_snapshot(self, path: str) -> None:
        """Write :meth:`snapshot` to ``path`` as JSON, atomically.

        Uses the write-temp-then-rename protocol so a reader never sees
        a partially written summary, even if this process is killed
        mid-dump.
        """
        tmp = f"{path}.tmp"
        with open(tmp, "w") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class NullRecorder(Recorder):
    """The disabled recorder: every operation is a no-op.

    A single shared instance (:data:`NULL_RECORDER`) is the default
    everywhere; instrumented code branches on :attr:`enabled` so hot
    loops never even reach these methods.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(keep_events=False)
        self._null_span = _NullSpan()

    def count(self, name: str, delta: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def counters_update(self, items: Iterable[Tuple[str, int]]) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def span(self, name: str, **fields: Any) -> "_NullSpan":
        return self._null_span


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


#: The process-wide disabled recorder (safe to share: it holds no state).
NULL_RECORDER = NullRecorder()


def normalize_events(
    events: Iterable[Dict[str, Any]],
    drop_prefixes: Tuple[str, ...] = ("backend.", "resilience."),
) -> List[Dict[str, Any]]:
    """Project an event log onto its deterministic content.

    Strips the wall-clock fields (:data:`WALL_CLOCK_FIELDS`) and drops
    event families that are schedule-dependent by nature (by default the
    ``backend.*`` telemetry, which only exists on concurrent backends,
    and ``resilience.*``, which depends on the fault schedule and the
    supervision configuration).  ``seq`` is recomputed after filtering
    so logs from different backends compare equal.
    """
    out: List[Dict[str, Any]] = []
    for ev in events:
        name = ev.get("ev", "")
        if any(name.startswith(p) for p in drop_prefixes):
            continue
        clean = {
            k: v
            for k, v in ev.items()
            if k not in WALL_CLOCK_FIELDS and k != "seq"
        }
        clean["seq"] = len(out) + 1
        out.append(clean)
    return out


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL event log written by :class:`JsonlSink`.

    Tolerates a truncated *final* record (the footprint a killed run
    leaves behind): the partial line is dropped, everything before it
    is returned.  A malformed record anywhere else still raises --
    that is corruption, not truncation.
    """
    out: List[Dict[str, Any]] = []
    with open(path) as fh:
        lines = fh.readlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except ValueError:
            if i == len(lines) - 1:
                break  # truncated-at-a-record tail from a killed run
            raise
    return out
