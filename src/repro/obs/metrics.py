"""Text exposition of a recorder's metrics, Prometheus style.

The serve daemon's ``--metrics`` listener answers every request with
:func:`render_metrics` over the daemon's live recorder: one
``# TYPE``-annotated family per counter/gauge, plus ``_count`` /
``_total_ns`` / ``_max_ns`` triples for span aggregates.  The format is
the Prometheus text exposition format (version 0.0.4) restricted to
what the recorder actually holds -- no labels, no timestamps -- which
any scraper, or ``curl`` + ``grep``, can consume.

Names are sanitized the standard way: every character outside
``[a-zA-Z0-9_]`` becomes ``_`` (so ``serve.pending_epochs`` scrapes as
``repro_serve_pending_epochs``), and everything is prefixed ``repro_``
to keep the daemon's metrics from colliding in a shared registry.

Sanitization is lossy, so two recorder names can land on the same
exposed name (``serve.shard-depth`` and ``serve.shard_depth`` both
scrape as ``repro_serve_shard_depth``).  Scrapers reject a page that
declares the same family twice, so colliding names are *merged* into
one family: counters sum (each raw counter is a disjoint event count),
span aggregates combine (counts and totals sum, ``max_ns`` takes the
max), and gauges take the value of the last colliding raw name in
sorted order (a documented tiebreak -- gauges are point-in-time
samples, so no arithmetic merge is faithful).  A collision *across*
kinds keeps the first kind encountered (counters, then gauges, then
span suffixes) and drops later samples rather than emit a second
``# TYPE`` line for the family.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Tuple

from repro.obs.recorder import Recorder

_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")

#: MIME type scrapers expect for this exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def metric_name(name: str) -> str:
    """``serve.shard_depth.0`` -> ``repro_serve_shard_depth_0``."""
    return "repro_" + _SANITIZE.sub("_", name)


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        # Prometheus spells non-finite values ``NaN``/``+Inf``/``-Inf``;
        # Python's repr (``nan``/``inf``) is rejected by scrapers.
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if not value.is_integer():
            return repr(value)
    return str(int(value))


def _merge_samples(
    family: Dict[str, Any], merge: str
) -> List[Tuple[str, Any]]:
    """Collapse raw names that sanitize identically into one sample per
    exposed name, in sorted raw-name order."""
    merged: Dict[str, Any] = {}
    for name in sorted(family):
        exposed = metric_name(name)
        if exposed in merged and merge == "sum":
            merged[exposed] += family[name]
        else:
            # Gauges: last sorted raw name wins (see module docstring).
            merged[exposed] = family[name]
    return list(merged.items())


def render_snapshot(snapshot: Dict[str, Any]) -> str:
    """Render a :meth:`Recorder.snapshot` dict as exposition text."""
    lines: List[str] = []
    emitted: Dict[str, str] = {}  # exposed family name -> kind

    def emit(exposed: str, kind: str, value: Any) -> None:
        if exposed in emitted:
            # A same-kind duplicate was merged upstream; what reaches
            # here is a cross-kind collision -- first kind wins.
            return
        emitted[exposed] = kind
        lines.append(f"# TYPE {exposed} {kind}")
        lines.append(f"{exposed} {_format_value(value)}")

    for exposed, value in _merge_samples(
        snapshot.get("counters", {}), merge="sum"
    ):
        emit(exposed, "counter", value)
    for exposed, value in _merge_samples(
        snapshot.get("gauges", {}), merge="last"
    ):
        emit(exposed, "gauge", value)
    spans: Dict[str, Dict[str, Any]] = {}
    for name in sorted(snapshot.get("spans", {})):
        stats = snapshot["spans"][name]
        agg = spans.setdefault(
            metric_name(name), {"count": 0, "total_ns": 0, "max_ns": 0}
        )
        agg["count"] += stats["count"]
        agg["total_ns"] += stats["total_ns"]
        agg["max_ns"] = max(agg["max_ns"], stats["max_ns"])
    for exposed, agg in spans.items():
        for suffix, kind in (
            ("count", "counter"),
            ("total_ns", "counter"),
            ("max_ns", "gauge"),
        ):
            emit(f"{exposed}_{suffix}", kind, agg[suffix])
    return "\n".join(lines) + "\n"


def render_metrics(recorder: Recorder) -> str:
    """Exposition text for a live recorder (empty-but-valid when the
    recorder is the null recorder or has recorded nothing yet)."""
    return render_snapshot(recorder.snapshot())
