"""Text exposition of a recorder's metrics, Prometheus style.

The serve daemon's ``--metrics`` listener answers every request with
:func:`render_metrics` over the daemon's live recorder: one
``# TYPE``-annotated family per counter/gauge, plus ``_count`` /
``_total_ns`` / ``_max_ns`` triples for span aggregates.  The format is
the Prometheus text exposition format (version 0.0.4) restricted to
what the recorder actually holds -- no labels, no timestamps -- which
any scraper, or ``curl`` + ``grep``, can consume.

Names are sanitized the standard way: every character outside
``[a-zA-Z0-9_]`` becomes ``_`` (so ``serve.pending_epochs`` scrapes as
``repro_serve_pending_epochs``), and everything is prefixed ``repro_``
to keep the daemon's metrics from colliding in a shared registry.
"""

from __future__ import annotations

import re
from typing import Any, Dict

from repro.obs.recorder import Recorder

_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")

#: MIME type scrapers expect for this exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def metric_name(name: str) -> str:
    """``serve.shard_depth.0`` -> ``repro_serve_shard_depth_0``."""
    return "repro_" + _SANITIZE.sub("_", name)


def _format_value(value: Any) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def render_snapshot(snapshot: Dict[str, Any]) -> str:
    """Render a :meth:`Recorder.snapshot` dict as exposition text."""
    lines = []
    for name in sorted(snapshot.get("counters", {})):
        exposed = metric_name(name)
        lines.append(f"# TYPE {exposed} counter")
        lines.append(
            f"{exposed} {_format_value(snapshot['counters'][name])}"
        )
    for name in sorted(snapshot.get("gauges", {})):
        exposed = metric_name(name)
        lines.append(f"# TYPE {exposed} gauge")
        lines.append(f"{exposed} {_format_value(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("spans", {})):
        stats = snapshot["spans"][name]
        exposed = metric_name(name)
        for suffix, kind in (
            ("count", "counter"),
            ("total_ns", "counter"),
            ("max_ns", "gauge"),
        ):
            lines.append(f"# TYPE {exposed}_{suffix} {kind}")
            lines.append(
                f"{exposed}_{suffix} {_format_value(stats[suffix])}"
            )
    return "\n".join(lines) + "\n"


def render_metrics(recorder: Recorder) -> str:
    """Exposition text for a live recorder (empty-but-valid when the
    recorder is the null recorder or has recorded nothing yet)."""
    return render_snapshot(recorder.snapshot())
