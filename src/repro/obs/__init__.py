"""Engine observability: metrics, spans, and a structured event log.

See :mod:`repro.obs.recorder` for the API and ``docs/observability.md``
for the event schema and overhead numbers.
"""

from repro.obs.metrics import render_metrics, render_snapshot
from repro.obs.recorder import (
    NULL_RECORDER,
    JsonlSink,
    NullRecorder,
    Recorder,
    normalize_events,
    read_events,
)

__all__ = [
    "NULL_RECORDER",
    "JsonlSink",
    "NullRecorder",
    "Recorder",
    "normalize_events",
    "read_events",
    "render_metrics",
    "render_snapshot",
]
