"""In-order cores executing event traces.

A :class:`Core` charges one cycle per instruction plus the data-path
cost of each touched location (addresses are abstract locations scaled
to bytes).  This is the application side of the paper's machine; the
lifeguard side's costs live in :mod:`repro.sim.lba`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.sim.config import MachineConfig
from repro.sim.memory import MemoryHierarchy, SharedL2, build_hierarchies
from repro.trace.events import Instr
from repro.trace.program import TraceProgram

#: Bytes per abstract location when mapped onto the cache hierarchy.
LOCATION_STRIDE = 8


@dataclass
class CoreResult:
    """One core's execution outcome."""

    instructions: int
    memory_accesses: int
    cycles: int


class Core:
    """An in-order scalar core (1 GHz, Table 1)."""

    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy

    def execute(self, instrs: Iterable[Instr]) -> CoreResult:
        cycles = 0
        count = 0
        mem = 0
        for instr in instrs:
            count += 1
            cycles += 1
            for loc in instr.accessed:
                mem += 1
                cycles += self.hierarchy.access(loc * LOCATION_STRIDE)
        return CoreResult(instructions=count, memory_accesses=mem, cycles=cycles)


@dataclass
class CMPResult:
    """Parallel execution outcome: per-thread results and the critical
    path (max thread time)."""

    per_thread: List[CoreResult]

    @property
    def cycles(self) -> int:
        return max((r.cycles for r in self.per_thread), default=0)

    @property
    def total_instructions(self) -> int:
        return sum(r.instructions for r in self.per_thread)

    @property
    def total_memory_accesses(self) -> int:
        return sum(r.memory_accesses for r in self.per_thread)


def run_parallel(program: TraceProgram, config: MachineConfig) -> CMPResult:
    """Execute each thread on its own core over a shared L2."""
    hierarchies = build_hierarchies(config, program.num_threads)
    results = [
        Core(h).execute(trace)
        for h, trace in zip(hierarchies, program.threads)
    ]
    return CMPResult(per_thread=results)


def run_serialized(
    program: TraceProgram,
    config: MachineConfig,
    order: Optional[list] = None,
) -> CoreResult:
    """Execute all threads' events on a single core: in the given
    order, else the recorded order, else round-robin."""
    hierarchy = build_hierarchies(config, 1)[0]
    core = Core(hierarchy)
    if order is None:
        order = program.true_order
    if order is not None:
        stream = (program.instr_at(ref) for ref in order)
    else:
        from repro.trace.interleave import round_robin

        stream = (
            program.instr_at(ref) for ref in round_robin(program, quantum=64)
        )
    return core.execute(stream)
