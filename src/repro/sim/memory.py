"""The L1D / shared-L2 / DRAM hierarchy of Table 1.

One :class:`MemoryHierarchy` instance models one core's data path; the
L2 is shared, so cores constructed via :class:`SharedL2` reference a
common second level (which is how cross-thread sharing shows up as L2
hits instead of memory accesses).
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.cache import SetAssocCache
from repro.sim.config import MachineConfig


class SharedL2:
    """The banked, shared L2.  Bank conflicts are not modeled; bank
    count only appears in the Table 1 rendering."""

    def __init__(self, config: MachineConfig) -> None:
        self.cache = SetAssocCache(config.l2, name="L2")
        self.latency = config.l2.latency_cycles
        self.memory_latency = config.memory_latency

    def access(self, addr: int) -> int:
        """Cycles beyond the L1 for an L1-missing access."""
        if self.cache.access(addr):
            return self.latency
        return self.latency + self.memory_latency


class MemoryHierarchy:
    """One core's L1D backed by the shared L2."""

    def __init__(self, config: MachineConfig, l2: SharedL2) -> None:
        self.l1d = SetAssocCache(config.l1d, name="L1D")
        self.l1_latency = config.l1d.latency_cycles
        self.l2 = l2
        self.cycles = 0

    def access(self, addr: int) -> int:
        """Cycle cost of one data access."""
        cost = self.l1_latency
        if not self.l1d.access(addr):
            cost += self.l2.access(addr)
        self.cycles += cost
        return cost


def build_hierarchies(
    config: MachineConfig, num_cores: Optional[int] = None
) -> List[MemoryHierarchy]:
    """Per-core hierarchies sharing one L2."""
    shared = SharedL2(config)
    n = num_cores if num_cores is not None else config.cores
    return [MemoryHierarchy(config, shared) for _ in range(n)]
