"""Set-associative LRU cache model."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.sim.config import CacheConfig


class SetAssocCache:
    """A set-associative, write-allocate, LRU cache.

    Tracks hits and misses; does not model dirty writebacks (the paper's
    performance story is read-latency dominated and the lifeguard logs
    flow through the L2 regardless).
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        config.validate()
        self.config = config
        self.name = name
        self._sets: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int) -> tuple:
        line = addr // self.config.line_bytes
        return line % self.config.num_sets, line

    def access(self, addr: int) -> bool:
        """Touch ``addr``; returns True on hit, False on miss (the line
        is installed either way)."""
        idx, line = self._locate(addr)
        ways = self._sets[idx]
        if line in ways:
            ways.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        ways[line] = None
        if len(ways) > self.config.associativity:
            ways.popitem(last=False)
        return False

    def contains(self, addr: int) -> bool:
        idx, line = self._locate(addr)
        return line in self._sets[idx]

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0
