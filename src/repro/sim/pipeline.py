"""Streaming LBA co-simulation: epoch-by-epoch, buffer-coupled.

:class:`~repro.sim.lba.LBASystem` prices a butterfly run analytically
(steady-state ``max(app, lifeguard)``).  This module instead *streams*
the execution the way the hardware does:

- each application core produces log records for its current block at
  its own pace (cycles per event from the cache-simulated CPI);
- records flow through the thread's bounded 8 KB log buffer; when the
  lifeguard falls behind, the buffer fills and the application stalls
  (the stall cycles are accounted per thread);
- the lifeguard core drains the buffer running the real
  :class:`~repro.lifeguards.addrcheck.ButterflyAddrCheck` first pass
  via the engine's streaming ``feed_epoch`` API;
- after every epoch the lifeguard threads synchronize (two barriers:
  one per pass) before the window slides.

The result carries the live lifeguard, so error reports and precision
accounting come from exactly the same run that produced the timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.epoch import EpochPartition, partition_by_global_order, partition_fixed
from repro.core.framework import ButterflyEngine
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.sim.cmp import LOCATION_STRIDE, Core
from repro.sim.config import LifeguardCostModel, MachineConfig
from repro.sim.logbuffer import LogBuffer
from repro.sim.memory import build_hierarchies
from repro.trace.program import TraceProgram


@dataclass
class StreamingResult:
    """Outcome of a streamed butterfly-monitored execution."""

    cycles: int
    epochs: int
    stall_cycles_by_thread: Dict[int, int]
    app_cycles_by_thread: Dict[int, int]
    lifeguard_cycles_by_thread: Dict[int, int]
    guard: ButterflyAddrCheck
    partition: EpochPartition

    @property
    def total_stall_cycles(self) -> int:
        return sum(self.stall_cycles_by_thread.values())


class StreamingLBASimulation:
    """Co-simulates the application/lifeguard pipeline of one LBA chip."""

    def __init__(
        self,
        program: TraceProgram,
        epoch_size: int,
        costs: Optional[LifeguardCostModel] = None,
        guard: Optional[ButterflyAddrCheck] = None,
        setop_cycles: int = 1,
    ) -> None:
        self.program = program
        self.epoch_size = epoch_size
        self.costs = costs or LifeguardCostModel()
        self.setop_cycles = setop_cycles
        self.guard = guard or ButterflyAddrCheck(
            initially_allocated=program.preallocated
        )
        if program.true_order is not None:
            self.partition = partition_by_global_order(program, epoch_size)
        else:
            self.partition = partition_fixed(program, epoch_size)

    def run(self) -> StreamingResult:
        program = self.program
        partition = self.partition
        costs = self.costs
        config = MachineConfig.for_app_threads(program.num_threads)
        hierarchies = build_hierarchies(config, program.num_threads)
        cores = [Core(h) for h in hierarchies]
        buffers = [
            LogBuffer(config.log_buffer_entries)
            for _ in range(program.num_threads)
        ]
        engine = ButterflyEngine(self.guard)
        engine.attach(partition)

        stall: Dict[int, int] = {t: 0 for t in range(program.num_threads)}
        app_cycles: Dict[int, int] = {t: 0 for t in range(program.num_threads)}
        lg_cycles: Dict[int, int] = {t: 0 for t in range(program.num_threads)}
        total = 0
        pending_second: Optional[int] = None

        for lid in range(partition.num_epochs):
            # --- first pass: produce and consume this epoch's blocks ---
            engine.feed_epoch(lid)  # the real analysis (records counters)
            epoch_first = 0
            for tid in range(program.num_threads):
                block = partition.block(lid, tid)
                if not len(block):
                    continue
                produce_cycles = cores[tid].execute(block.instrs).cycles
                consume_cycles = self._first_pass_cycles(lid, tid)
                records = len(block)
                produce_rate = records / max(1, produce_cycles)
                consume_rate = records / max(1, consume_cycles)
                stats = buffers[tid].simulate(
                    records, produce_rate, consume_rate
                )
                stall[tid] += stats.stall_cycles
                app_cycles[tid] += produce_cycles
                lg_cycles[tid] += consume_cycles
                epoch_first = max(
                    epoch_first, max(produce_cycles, consume_cycles)
                )
            # --- second pass of the previous epoch (wings now complete)
            epoch_second = 0
            if pending_second is not None:
                for tid in range(program.num_threads):
                    epoch_second = max(
                        epoch_second,
                        self._second_pass_cycles(pending_second, tid),
                    )
            pending_second = lid
            total += epoch_first + epoch_second
            total += 2 * costs.epoch_barrier_cycles
        engine.finish()
        if pending_second is not None:
            final_second = max(
                (
                    self._second_pass_cycles(pending_second, tid)
                    for tid in range(program.num_threads)
                ),
                default=0,
            )
            total += final_second + 2 * costs.epoch_barrier_cycles

        return StreamingResult(
            cycles=total,
            epochs=partition.num_epochs,
            stall_cycles_by_thread=stall,
            app_cycles_by_thread=app_cycles,
            lifeguard_cycles_by_thread=lg_cycles,
            guard=self.guard,
            partition=partition,
        )

    # -- cost helpers -----------------------------------------------------

    def _work(self, lid: int, tid: int) -> Dict[str, int]:
        return self.guard.block_work.get((lid, tid), {})

    def _first_pass_cycles(self, lid: int, tid: int) -> int:
        w = self._work(lid, tid)
        if not w:
            return 0
        costs = self.costs
        return (
            w["accesses"] * (costs.dispatch_cycles + costs.record_cycles)
            + w["checks"] * (costs.check_cycles + 2)
            + w["allocs"] * (costs.dispatch_cycles + costs.check_cycles + 2)
        )

    def _second_pass_cycles(self, lid: int, tid: int) -> int:
        w = self._work(lid, tid)
        if not w:
            return 0
        costs = self.costs
        return (
            w["checks"] * costs.second_pass_cycles
            + (w["meet"] + w["iso"]) * self.setop_cycles
            + w["flags"] * costs.error_handling_cycles
        )
