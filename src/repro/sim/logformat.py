"""The LBA log-record wire format.

The paper's hardware ships an execution log through the L2 to the
lifeguard core; Table 1 gives the buffer 8 KB, which our machine model
divides into 16-byte records.  This module pins that format down:

    struct record {        // 16 bytes, little-endian
        uint8  opcode;     // Op enum ordinal
        uint8  size;       // malloc/free extent (else 1)
        uint16 nsrcs;      // number of sources present
        uint32 dst;        // destination location + 1 (0 = none)
        uint32 src0;       // first source (0 if absent)
        uint32 src1;       // second source (0 if absent)
    };

Encoding/decoding is exercised by round-trip property tests; the
``encode_block`` helper is what the streaming co-simulation conceptually
pushes through the :class:`~repro.sim.logbuffer.LogBuffer`.
"""

from __future__ import annotations

import struct
from typing import Iterable, List

from repro.errors import SimulationError
from repro.trace.events import Instr, Op

RECORD_BYTES = 16
_STRUCT = struct.Struct("<BBHIII")

_OP_TO_CODE = {op: i for i, op in enumerate(Op)}
_CODE_TO_OP = {i: op for op, i in _OP_TO_CODE.items()}

#: Locations must fit the wire field (dst is stored +1).
MAX_LOCATION = 2**32 - 2


def encode(instr: Instr) -> bytes:
    """One instruction -> one 16-byte record."""
    for loc in instr.locations:
        if not 0 <= loc <= MAX_LOCATION:
            raise SimulationError(
                f"location {loc} does not fit the log record format"
            )
    if instr.size > 255:
        raise SimulationError("extent larger than 255 locations")
    srcs = list(instr.srcs) + [0, 0]
    return _STRUCT.pack(
        _OP_TO_CODE[instr.op],
        instr.size,
        len(instr.srcs),
        0 if instr.dst is None else instr.dst + 1,
        srcs[0],
        srcs[1],
    )


def decode(record: bytes) -> Instr:
    """One 16-byte record -> the instruction."""
    if len(record) != RECORD_BYTES:
        raise SimulationError(
            f"log records are {RECORD_BYTES} bytes, got {len(record)}"
        )
    code, size, nsrcs, dst, src0, src1 = _STRUCT.unpack(record)
    try:
        op = _CODE_TO_OP[code]
    except KeyError:
        raise SimulationError(f"unknown opcode {code}") from None
    srcs = tuple((src0, src1)[:nsrcs])
    return Instr(op, dst=None if dst == 0 else dst - 1, srcs=srcs, size=size)


def encode_block(instrs: Iterable[Instr]) -> bytes:
    """A block of instructions -> its log segment."""
    return b"".join(encode(i) for i in instrs)


def decode_block(data: bytes) -> List[Instr]:
    """A log segment -> instructions."""
    if len(data) % RECORD_BYTES:
        raise SimulationError("log segment is not record-aligned")
    return [
        decode(data[i : i + RECORD_BYTES])
        for i in range(0, len(data), RECORD_BYTES)
    ]
