"""Machine and cost-model parameters (paper Table 1).

``MachineConfig`` defaults reproduce Table 1's simulation parameters;
``LifeguardCostModel`` captures the per-event lifeguard work the paper
describes (LBA dispatch, metadata checks, and butterfly's first-pass
recording overhead of "roughly 7-10 instructions for each monitored
load and store").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class CacheConfig:
    """One cache level's geometry and latency."""

    size_bytes: int
    line_bytes: int
    associativity: int
    latency_cycles: int

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    def validate(self) -> None:
        if self.line_bytes < 1:
            raise SimulationError(
                f"line size must be >= 1 byte, got {self.line_bytes}"
            )
        if self.associativity < 1:
            raise SimulationError(
                f"associativity must be >= 1, got {self.associativity}"
            )
        if self.size_bytes % self.line_bytes:
            raise SimulationError("cache size must be a multiple of line size")
        if self.num_lines % self.associativity:
            raise SimulationError(
                "line count must be a multiple of associativity"
            )
        if self.num_sets < 1:
            # A geometry whose lines don't fill one set (e.g. size 0, or
            # fewer lines than ways) would crash set indexing with
            # ``line % 0``; a one-set (fully associative) cache is the
            # legal minimum.
            raise SimulationError(
                f"cache geometry yields {self.num_sets} sets "
                f"({self.num_lines} lines / {self.associativity} ways); "
                "need at least one"
            )


@dataclass(frozen=True)
class MachineConfig:
    """Table 1's machine model.

    1 GHz in-order scalar cores; 64 B lines; 64 KB 4-way L1s (1-cycle I,
    2-cycle D); shared 8-way L2 in 4 banks at 6 cycles ({2,4,8} MB for
    {4,8,16} cores); 512 MB memory at 90 cycles; 8 KB per-thread log
    buffer.  LBA pairs each application core with a lifeguard core, so
    ``cores`` is twice the application thread count.
    """

    cores: int = 4
    clock_ghz: float = 1.0
    line_bytes: int = 64
    l1i: CacheConfig = field(
        default=CacheConfig(64 * 1024, 64, 4, 1)
    )
    l1d: CacheConfig = field(
        default=CacheConfig(64 * 1024, 64, 4, 2)
    )
    l2_mb_per_4_cores: int = 2
    l2_assoc: int = 8
    l2_banks: int = 4
    l2_latency: int = 6
    memory_mb: int = 512
    memory_latency: int = 90
    log_buffer_bytes: int = 8 * 1024
    log_record_bytes: int = 16

    @property
    def l2(self) -> CacheConfig:
        """The shared L2 scales with core count: {2,4,8} MB for
        {4,8,16} cores."""
        size_mb = self.l2_mb_per_4_cores * max(1, self.cores // 4)
        return CacheConfig(
            size_mb * 1024 * 1024, self.line_bytes, self.l2_assoc,
            self.l2_latency,
        )

    @property
    def log_buffer_entries(self) -> int:
        return self.log_buffer_bytes // self.log_record_bytes

    @staticmethod
    def for_app_threads(app_threads: int) -> "MachineConfig":
        """LBA runs k application threads on 2k cores."""
        if app_threads < 1:
            raise SimulationError("need at least one application thread")
        return MachineConfig(cores=2 * app_threads)

    def table_rows(self) -> List[Tuple[str, str]]:
        """Render Table 1's simulation-parameter rows."""
        l2 = self.l2
        return [
            ("Cores", f"{self.cores} cores"),
            ("Pipeline", f"{self.clock_ghz:.0f} GHz, in-order scalar, 65nm"),
            ("Line size", f"{self.line_bytes}B"),
            (
                "L1-I",
                f"{self.l1i.size_bytes // 1024}KB, "
                f"{self.l1i.associativity}-way set-assoc, "
                f"{self.l1i.latency_cycles} cycle latency",
            ),
            (
                "L1-D",
                f"{self.l1d.size_bytes // 1024}KB, "
                f"{self.l1d.associativity}-way set-assoc, "
                f"{self.l1d.latency_cycles} cycle latency",
            ),
            (
                "L2",
                f"{l2.size_bytes // (1024 * 1024)}MB, "
                f"{l2.associativity}-way set-assoc, {self.l2_banks} banks, "
                f"{l2.latency_cycles} cycle latency",
            ),
            ("Memory", f"{self.memory_mb}MB, {self.memory_latency} cycle latency"),
            ("Log buffer", f"{self.log_buffer_bytes // 1024}KB"),
        ]


@dataclass(frozen=True)
class LifeguardCostModel:
    """Per-event lifeguard work, in lifeguard-core instructions/cycles.

    The butterfly prototype's extra work is the paper's observation that
    the first pass "executes roughly 7-10 instructions for each
    monitored load and store simply to record it for the second pass".
    False positives are "expensive to process in AddrCheck" -- the knob
    that makes OCEAN's large-epoch configuration slower (Figure 12).
    """

    #: LBA event dispatch (decode + handler jump) per log record.
    dispatch_cycles: int = 3
    #: AddrCheck metadata check per location (beyond the metadata-TLB
    #: lookup, which is charged separately).
    check_cycles: int = 25
    #: Extra first-pass instructions per monitored load/store to record
    #: the access for the second pass (paper: 7-10, plus the software
    #: filter probe).
    record_cycles: int = 8
    #: Second-pass work per recorded access (summary set operations).
    second_pass_cycles: int = 2
    #: One barrier synchronization (two per epoch: after each pass),
    #: including the master's SOS update.  Scaled 1/16 with the traces.
    epoch_barrier_cycles: int = 800
    #: Handling one flagged (false or true) positive: logging, metadata
    #: re-verification, rate limiting.  Scaled 1/16 with the traces.
    error_handling_cycles: int = 400
    #: OS context-switch cost charged per timeslice quantum in the
    #: timesliced baseline.
    timeslice_switch_cycles: int = 300
    #: Timeslice quantum in events (scaled 1/16 with the traces).
    timeslice_quantum: int = 6250
