"""The Log-Based Architectures (LBA) chip-multiprocessor substrate.

The paper evaluates butterfly analysis on a Simics-simulated CMP with
LBA hardware: each application core captures an instruction log that a
paired lifeguard core consumes via the shared L2; the application stalls
when its 8 KB log buffer fills (Section 7.1, Table 1).  This subpackage
reproduces that machine in Python:

- :mod:`repro.sim.config` -- Table 1's machine parameters and the
  lifeguard cost model;
- :mod:`repro.sim.cache` / :mod:`repro.sim.memory` -- set-associative
  caches and the L1/L2/DRAM hierarchy;
- :mod:`repro.sim.cmp` -- in-order cores executing event traces;
- :mod:`repro.sim.logbuffer` -- the bounded log buffer with
  producer/consumer stall accounting;
- :mod:`repro.sim.accelerators` -- LBA's idempotent event filter;
- :mod:`repro.sim.lba` -- the full system model producing execution
  times for unmonitored, timesliced, and butterfly configurations;
- :mod:`repro.sim.pipeline` -- the streaming co-simulation (epoch-by-
  epoch arrival through the bounded log buffers).
"""

from repro.sim.config import MachineConfig, LifeguardCostModel
from repro.sim.lba import LBASystem, SimResult
from repro.sim.pipeline import StreamingLBASimulation, StreamingResult

__all__ = [
    "MachineConfig",
    "LifeguardCostModel",
    "LBASystem",
    "SimResult",
    "StreamingLBASimulation",
    "StreamingResult",
]
