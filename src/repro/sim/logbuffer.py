"""The 8 KB per-thread log buffer coupling application and lifeguard.

LBA captures an instruction log at the application core and ships it
through the L2 to the lifeguard core; when the lifeguard is slower, the
application stalls on a full buffer (paper Section 7.1), which is why
the measured execution time equals lifeguard processing time in the
paper's experiments.

Two views are provided:

- :meth:`LogBuffer.simulate` -- an explicit producer/consumer rate walk
  over time chunks, used by unit tests to show the stall mechanics;
- :func:`coupled_time` -- the steady-state consequence (execution time
  is the max of producer and consumer time plus a drain transient),
  used by the system model where event streams are long enough that the
  transient is negligible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass
class BufferStats:
    produced: int = 0
    consumed: int = 0
    stall_cycles: int = 0
    high_watermark: int = 0


class LogBuffer:
    """A bounded queue of log records with stall accounting."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("log buffer capacity must be >= 1")
        self.capacity = capacity
        self.occupancy = 0
        self.stats = BufferStats()

    def produce(self, records: int) -> int:
        """Try to enqueue ``records``; returns how many fit."""
        space = self.capacity - self.occupancy
        accepted = min(space, records)
        self.occupancy += accepted
        self.stats.produced += accepted
        self.stats.high_watermark = max(
            self.stats.high_watermark, self.occupancy
        )
        return accepted

    def consume(self, records: int) -> int:
        """Dequeue up to ``records``; returns how many were available."""
        taken = min(self.occupancy, records)
        self.occupancy -= taken
        self.stats.consumed += taken
        return taken

    def simulate(
        self,
        total_records: int,
        produce_rate: float,
        consume_rate: float,
        chunk_cycles: int = 1000,
    ) -> BufferStats:
        """Walk producer/consumer in fixed time chunks until all records
        are produced and consumed; accumulates application stall time.

        Rates are records per cycle.  The producer stalls (accumulating
        ``stall_cycles``) whenever the buffer cannot accept its chunk.
        """
        if produce_rate <= 0 or consume_rate <= 0:
            raise SimulationError("rates must be positive")
        # Keep per-chunk production at or below half the buffer so the
        # stepping itself never manufactures stalls.
        chunk = max(1, min(chunk_cycles, int(self.capacity / (2 * produce_rate))))
        remaining_to_produce = total_records
        produce_credit = 0.0
        consume_credit = 0.0
        while remaining_to_produce > 0 or self.occupancy > 0:
            consume_credit += consume_rate * chunk
            taken = self.consume(int(consume_credit))
            consume_credit -= taken if consume_credit >= 1 else 0
            produce_credit += produce_rate * chunk
            want = min(remaining_to_produce, int(produce_credit))
            accepted = self.produce(want) if want else 0
            produce_credit -= accepted
            if want and accepted < want:
                # Producer blocked for the fraction of the chunk it
                # could not make progress in.
                self.stats.stall_cycles += int(
                    chunk * (1 - accepted / want)
                )
            remaining_to_produce -= accepted
        return self.stats


def coupled_time(app_cycles: int, lifeguard_cycles: int) -> int:
    """Steady-state execution time of an application whose log buffer
    back-pressures it: the slower side dictates the pace."""
    return max(app_cycles, lifeguard_cycles)
