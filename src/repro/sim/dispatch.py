"""LBA event dispatch: type masks and handler tables.

The LBA hardware decodes each log record and vectors to a lifeguard
handler selected by event type; event types the lifeguard has not
registered for are dropped in hardware at zero software cost (the
"event selection" the timesliced model relies on to skip compute
instructions).  This module provides that dispatcher as a reusable
piece: lifeguards register handlers per :class:`~repro.trace.events.Op`,
and the dispatcher tracks how many events were delivered vs. masked.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.errors import SimulationError
from repro.trace.events import Instr, Op
from repro.trace.program import GlobalRef

Handler = Callable[[Optional[GlobalRef], Instr], None]


class EventDispatcher:
    """Per-event-type handler table with hardware-mask accounting."""

    def __init__(self) -> None:
        self._handlers: Dict[Op, Handler] = {}
        self.delivered = 0
        self.masked = 0

    def register(self, op: Op, handler: Handler) -> None:
        """Install ``handler`` for ``op`` (one handler per type)."""
        if op in self._handlers:
            raise SimulationError(f"handler already registered for {op}")
        self._handlers[op] = handler

    def register_many(self, ops: Iterable[Op], handler: Handler) -> None:
        for op in ops:
            self.register(op, handler)

    @property
    def mask(self) -> frozenset:
        """Event types that reach software."""
        return frozenset(self._handlers)

    def dispatch(self, ref: Optional[GlobalRef], instr: Instr) -> bool:
        """Deliver one event; returns False when hardware masked it."""
        handler = self._handlers.get(instr.op)
        if handler is None:
            self.masked += 1
            return False
        self.delivered += 1
        handler(ref, instr)
        return True

    def dispatch_stream(
        self, stream: Iterable[Tuple[Optional[GlobalRef], Instr]]
    ) -> int:
        """Deliver a whole stream; returns the delivered count."""
        before = self.delivered
        for ref, instr in stream:
            self.dispatch(ref, instr)
        return self.delivered - before


def addrcheck_dispatcher(guard) -> EventDispatcher:
    """Wire a sequential AddrCheck to the event types it cares about."""
    dispatcher = EventDispatcher()
    dispatcher.register_many(
        (Op.READ, Op.WRITE, Op.ASSIGN, Op.JUMP, Op.MALLOC, Op.FREE),
        guard.process,
    )
    return dispatcher


def taintcheck_dispatcher(guard) -> EventDispatcher:
    """Wire a sequential TaintCheck to the event types it cares about."""
    dispatcher = EventDispatcher()
    dispatcher.register_many(
        (Op.TAINT, Op.UNTAINT, Op.ASSIGN, Op.WRITE, Op.JUMP),
        guard.process,
    )
    return dispatcher
