"""LBA lifeguard accelerators (paper Section 7.1).

The evaluation uses two LBA accelerators:

- the *metadata TLB* (see :mod:`repro.shadow.metadata_tlb`), charged in
  the lifeguard cost model; and
- *idempotent filtering*: repeated events that cannot change the
  lifeguard's conclusion (e.g. a second read of the same address with
  unchanged metadata) are dropped in hardware before dispatch.  The
  paper flushes the filters at every epoch boundary "so that events are
  only filtered within (and never across) epochs" -- crossing an epoch
  boundary changes what is potentially concurrent, so a stale filter
  entry could hide a required re-check.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Set, Tuple

from repro.trace.events import Instr, Op


class IdempotentFilter:
    """Hardware filter of redundant monitored events.

    For AddrCheck, a load/store of a location already checked with no
    intervening allocation-state change is idempotent.  The filter is a
    finite hardware table (``capacity`` entries, LRU), so streaming
    workloads with working sets larger than the table defeat it while
    tight-reuse workloads (LU's blocks, BLACKSCHOLES' options) are
    almost fully filtered.  Butterfly analysis additionally flushes at
    every epoch boundary; the timesliced baseline has no epochs and
    flushes only on capacity.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._checked: "OrderedDict[int, None]" = OrderedDict()
        self.passed = 0
        self.filtered = 0

    def _touch(self, loc: int) -> None:
        if loc in self._checked:
            self._checked.move_to_end(loc)
        else:
            self._checked[loc] = None
            if len(self._checked) > self.capacity:
                self._checked.popitem(last=False)

    def admit(self, instr: Instr) -> bool:
        """True when the event must reach the lifeguard."""
        if instr.op in (Op.MALLOC, Op.FREE):
            # Allocation-state changes invalidate prior checks of the
            # covered locations and always dispatch.
            for loc in instr.extent:
                self._checked.pop(loc, None)
            self.passed += 1
            return True
        accessed = instr.accessed
        if not accessed:
            self.passed += 1
            return True
        if all(loc in self._checked for loc in accessed):
            for loc in accessed:
                self._checked.move_to_end(loc)
            self.filtered += 1
            return False
        for loc in accessed:
            self._touch(loc)
        self.passed += 1
        return True

    def flush(self) -> None:
        """Epoch boundary: filtering never crosses epochs."""
        self._checked.clear()

    @property
    def filter_rate(self) -> float:
        total = self.passed + self.filtered
        return self.filtered / total if total else 0.0


def filtered_event_counts(
    instrs, epoch_size: int
) -> Tuple[int, int]:
    """Events dispatched vs. filtered for one thread's trace with the
    filter flushed every ``epoch_size`` instructions."""
    filt = IdempotentFilter()
    dispatched = 0
    for i, instr in enumerate(instrs):
        if i and i % epoch_size == 0:
            filt.flush()
        if filt.admit(instr):
            dispatched += 1
    return dispatched, filt.filtered
