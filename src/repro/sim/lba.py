"""The full LBA system model: execution times for the three Figure 11
configurations.

For each benchmark the paper reports execution time normalized to the
application running *sequentially, unmonitored*:

- **Timesliced Monitoring** -- all application threads interleaved on
  one core, monitored by one sequential lifeguard on a separate core;
- **Parallel, Monitoring** -- butterfly analysis: each application
  thread on its own core, paired with its own lifeguard core;
- **Parallel, No Monitoring** -- plain parallel execution.

Because lifeguard processing is slower than the application, the
monitored application stalls on a full log buffer and measured time
equals lifeguard processing time (Section 7.1); :func:`coupled_time`
encodes that.  Lifeguard work is charged from the cost model of
:class:`~repro.sim.config.LifeguardCostModel` using counters measured
while *actually running* the butterfly AddrCheck over the trace -- the
analysis itself is executed faithfully, only the hardware is modeled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.epoch import EpochPartition, partition_auto
from repro.core.framework import ButterflyEngine, EngineStats
from repro.core.stream import PartitionSource
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.sequential import SequentialAddrCheck
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.shadow.metadata_tlb import MetadataTLB
from repro.sim.accelerators import IdempotentFilter
from repro.sim.cmp import LOCATION_STRIDE, run_parallel, run_serialized
from repro.sim.config import LifeguardCostModel, MachineConfig
from repro.sim.logbuffer import coupled_time
from repro.trace.events import Op
from repro.trace.program import TraceProgram


@dataclass
class SimResult:
    """One configuration's simulated outcome."""

    label: str
    cycles: int
    app_cycles: int
    lifeguard_cycles: int
    extras: Dict[str, float] = field(default_factory=dict)


@dataclass
class ButterflyRun:
    """A butterfly-monitored execution: timing plus the live lifeguard
    (whose error log feeds the Figure 13 accounting)."""

    result: SimResult
    guard: ButterflyAddrCheck
    partition: EpochPartition
    engine_stats: EngineStats


class LBASystem:
    """Builds and times the three system configurations for one trace."""

    def __init__(
        self,
        costs: Optional[LifeguardCostModel] = None,
        setop_cycles: int = 1,
        filter_capacity: int = 16384,
    ) -> None:
        self.costs = costs or LifeguardCostModel()
        self.setop_cycles = setop_cycles
        self.filter_capacity = filter_capacity
        #: Shadow locations per metadata page.  Small enough that the
        #: *merged* timesliced stream overflows the 64-entry metadata
        #: TLB on large-footprint benchmarks while each butterfly
        #: lifeguard's single-thread working set stays resident.
        self.mtlb_page_size = 512

    # -- baselines -----------------------------------------------------

    def unmonitored_sequential(self, program: TraceProgram) -> SimResult:
        """The normalizer: the whole workload on one core, no lifeguard."""
        config = MachineConfig(cores=4)
        core = run_serialized(program, config)
        return SimResult(
            label="sequential-unmonitored",
            cycles=core.cycles,
            app_cycles=core.cycles,
            lifeguard_cycles=0,
            extras={"instructions": core.instructions},
        )

    def unmonitored_parallel(self, program: TraceProgram) -> SimResult:
        """Parallel, No Monitoring."""
        config = MachineConfig.for_app_threads(program.num_threads)
        cmp_result = run_parallel(program, config)
        return SimResult(
            label="parallel-no-monitoring",
            cycles=cmp_result.cycles,
            app_cycles=cmp_result.cycles,
            lifeguard_cycles=0,
            extras={"threads": program.num_threads},
        )

    # -- timesliced baseline --------------------------------------------

    def timesliced(self, program: TraceProgram) -> SimResult:
        """Timesliced Monitoring: serialized app + sequential lifeguard.

        The application's threads run on one core in OS-quantum slices
        (the generator's recorded timesliced schedule when available).
        The sequential lifeguard keeps LBA's accelerators: an idempotent
        filter (with no epoch boundaries, it flushes only on capacity)
        and a metadata TLB.
        """
        config = MachineConfig(cores=4)
        costs = self.costs
        if program.timesliced_order is not None:
            order = program.timesliced_order
        elif program.true_order is not None:
            order = program.true_order
        else:
            from repro.trace.interleave import round_robin

            order = round_robin(program, quantum=costs.timeslice_quantum)
        app = run_serialized(program, config, order=order)
        switches = sum(
            1 for a, b in zip(order, order[1:]) if a[0] != b[0]
        )
        app_cycles = app.cycles + switches * costs.timeslice_switch_cycles

        mtlb = MetadataTLB(page_size=self.mtlb_page_size)
        filt = IdempotentFilter(capacity=self.filter_capacity)
        lifeguard_cycles = 0
        errors = 0
        guard = SequentialAddrCheck(program.preallocated)
        stream = ((ref, program.instr_at(ref)) for ref in order)
        for ref, instr in stream:
            if instr.op in (Op.MALLOC, Op.FREE):
                locs = instr.extent
            else:
                locs = instr.accessed
                if not locs:
                    # Compute instructions are masked out by LBA's event
                    # selection and never dispatch.
                    continue
            if not filt.admit(instr):
                continue
            lifeguard_cycles += costs.dispatch_cycles
            flags_before = len(guard.errors)
            guard.process(ref, instr)
            for loc in locs:
                lifeguard_cycles += (
                    mtlb.lookup(loc * LOCATION_STRIDE) + costs.check_cycles
                )
            errors += len(guard.errors) - flags_before
        lifeguard_cycles += errors * costs.error_handling_cycles

        return SimResult(
            label="timesliced-monitoring",
            cycles=coupled_time(app_cycles, lifeguard_cycles),
            app_cycles=app_cycles,
            lifeguard_cycles=lifeguard_cycles,
            extras={
                "filter_rate": filt.filter_rate,
                "mtlb_hit_rate": mtlb.hit_rate,
                "errors": errors,
            },
        )

    # -- butterfly ---------------------------------------------------------

    def butterfly(
        self,
        program: TraceProgram,
        epoch_size: int,
        partition: Optional[EpochPartition] = None,
        guard: Optional[ButterflyAddrCheck] = None,
        backend: str = "serial",
        recorder: Optional["Recorder"] = None,
        stream: bool = False,
    ) -> ButterflyRun:
        """Parallel, Monitoring: butterfly AddrCheck on 2k cores.

        Runs the real lifeguard over the partitioned trace (on the given
        execution backend; results are backend-independent), then prices
        its measured work with the cost model.  ``recorder`` threads an
        observability recorder through to the engine (default: off).
        ``stream`` feeds the engine through the bounded-memory
        :class:`~repro.core.stream.PartitionSource` path instead of
        ``run(partition)``; results are identical, only the engine's
        resident state differs.
        """
        config = MachineConfig.for_app_threads(program.num_threads)
        costs = self.costs
        if partition is None:
            # Heartbeats fire in execution time (paper footnote 4), so
            # cut by the recorded global order when one exists.
            partition = partition_auto(program, epoch_size)
        if guard is None:
            guard = ButterflyAddrCheck(
                initially_allocated=program.preallocated
            )
        with ButterflyEngine(
            guard,
            backend=backend,
            recorder=NULL_RECORDER if recorder is None else recorder,
        ) as engine:
            if stream:
                stats = engine.run_source(PartitionSource(partition))
            else:
                stats = engine.run(partition)

        app = run_parallel(program, config)
        mtlb_cycles = self._mtlb_cycles_by_thread(program, epoch_size)

        # Average metadata-TLB cost per check, per lifeguard thread.
        total_checks = {
            tid: sum(
                guard.block_work.get((lid, tid), {}).get("checks", 0)
                for lid in range(partition.num_epochs)
            )
            for tid in range(program.num_threads)
        }
        avg_mtlb = {
            tid: mtlb_cycles.get(tid, 0) / total_checks[tid]
            if total_checks[tid]
            else 0.0
            for tid in range(program.num_threads)
        }

        # The lifeguard threads synchronize twice per epoch (once after
        # each pass), so each epoch costs the *slowest* thread's pass
        # time -- this is where load imbalance hurts butterfly analysis.
        lifeguard_cycles = 0
        barrier = 2 * costs.epoch_barrier_cycles
        empty: Dict[str, int] = {}
        for lid in range(partition.num_epochs):
            first_max = 0
            second_max = 0
            for tid in range(program.num_threads):
                w = guard.block_work.get((lid, tid), empty)
                if not w:
                    continue
                check_cost = costs.check_cycles + avg_mtlb[tid]
                # First pass: every load/store is dispatched and
                # recorded for the second pass (the paper's 7-10 extra
                # instructions); only filter-admitted unique accesses
                # and allocation events pay the metadata check.
                first = int(
                    w["accesses"] * (costs.dispatch_cycles + costs.record_cycles)
                    + w["checks"] * check_cost
                    + w["allocs"] * (costs.dispatch_cycles + check_cost)
                )
                second = int(
                    w["checks"] * costs.second_pass_cycles
                    + (w["meet"] + w["iso"]) * self.setop_cycles
                    + w["flags"] * costs.error_handling_cycles
                )
                first_max = max(first_max, first)
                second_max = max(second_max, second)
            lifeguard_cycles += first_max + second_max + barrier

        result = SimResult(
            label="parallel-monitoring",
            cycles=coupled_time(app.cycles, lifeguard_cycles),
            app_cycles=app.cycles,
            lifeguard_cycles=lifeguard_cycles,
            extras={
                "epochs": partition.num_epochs,
                "flags": float(len(guard.errors)),
                "barrier_cycles": partition.num_epochs * barrier,
            },
        )
        return ButterflyRun(
            result=result, guard=guard, partition=partition,
            engine_stats=stats,
        )

    # -- helpers --------------------------------------------------------------

    def _mtlb_cycles_by_thread(
        self, program: TraceProgram, epoch_size: int
    ) -> Dict[int, int]:
        """Per-lifeguard-thread metadata-TLB cost over its thread's
        checked locations (filter-aligned: duplicates within an epoch
        are skipped just as the lifeguard skips them)."""
        out: Dict[int, int] = {}
        for tid, trace in enumerate(program.threads):
            mtlb = MetadataTLB(page_size=self.mtlb_page_size)
            seen: set = set()
            cycles = 0
            for i, instr in enumerate(trace):
                if i and i % epoch_size == 0:
                    seen.clear()
                if instr.op in (Op.MALLOC, Op.FREE):
                    for loc in instr.extent:
                        seen.discard(loc)
                        cycles += mtlb.lookup(loc * LOCATION_STRIDE)
                else:
                    for loc in instr.accessed:
                        if loc in seen:
                            continue
                        seen.add(loc)
                        cycles += mtlb.lookup(loc * LOCATION_STRIDE)
            out[tid] = cycles
        return out


def _round_robin_stream(program: TraceProgram):
    from repro.trace.interleave import round_robin

    for ref in round_robin(program, quantum=64):
        yield ref, program.instr_at(ref)
