"""Deterministic fault injection for the execution backends.

A :class:`FaultPlan` is a seeded, pure decision function: given a work
unit's identity ``(batch, index)`` and its retry ``attempt``, it decides
whether that execution raises (*crash*), stalls (*hang*), dies taking
its worker process with it (*kill*), or returns a detectably corrupted
summary (*corrupt*).  The decision depends only on the plan's seed and
the task identity -- never on wall clock, scheduling, or process
identity -- so a fault schedule is reproducible run to run and the
fault-injection property tests can pin exact recovery behaviour.

Plans are frozen dataclasses of primitives, so they pickle across the
process-pool boundary; the worker-side wrapper
(:func:`faulted_apply`) re-evaluates the same pure decision inside the
worker.

Since the serve daemon landed, a plan also carries *transport-level*
fault rates -- the ways a live trace stream goes wrong between a
producer and the lifeguard, which ``repro serve`` treats as first-class
inputs rather than assuming away:

``disconnect``
    The producer's connection drops cleanly between epoch frames
    (client crash, network partition) -- mid-stream, mid-epoch-window.
``trunc_frame``
    The connection dies *inside* a frame: the length prefix promises
    more bytes than ever arrive.
``corrupt_bytes``
    A frame arrives whole but its payload bytes are damaged.
``stall``
    The producer stops sending for ``stall_s`` seconds -- long enough
    to trip a consumer's idle timeout.

Transport decisions (:meth:`FaultPlan.decide_transport`) are keyed and
salted independently of the compute-fault decisions, so mixing both
families in one plan never correlates their dice.  The fault-injecting
stream client (:mod:`repro.serve.client`) evaluates transport faults on
the producer side; the daemon must isolate and survive them.

The CLI surfaces plans as ``--inject-faults SPEC`` where ``SPEC`` is a
comma-separated list of ``key=value`` pairs::

    crash=0.05,hang=0.02,corrupt=0.05,seed=7
    kill=0.01,seed=3,hang_s=0.25
    disconnect=0.1,stall=0.05,stall_s=1.5,seed=11

Keys: per-kind rates (``crash``, ``hang``, ``kill``, ``corrupt`` for
compute faults; ``disconnect``, ``trunc_frame``, ``corrupt_bytes``,
``stall`` for transport faults; each a probability in ``[0, 1]``, and
each family's sum must stay ``<= 1``), ``seed`` (default 0),
``hang_s`` (compute stall duration in seconds, default 0.25) and
``stall_s`` (producer stall duration in seconds, default 0.75).
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro.errors import ResilienceError

#: Compute fault kinds a plan can inject, in cumulative-probability
#: order (decided per work unit by :meth:`FaultPlan.decide`).
FAULT_KINDS = ("crash", "hang", "kill", "corrupt")

#: Transport fault kinds, in cumulative-probability order (decided per
#: stream frame by :meth:`FaultPlan.decide_transport`).
TRANSPORT_FAULT_KINDS = ("disconnect", "trunc_frame", "corrupt_bytes", "stall")

_MASK64 = (1 << 64) - 1

#: Salt separating the transport dice from the compute dice: one seed
#: drives both families without correlating their decisions.
_TRANSPORT_SALT = 0xA5C3D1E87B29F04D


def _mix(*values: int) -> int:
    """SplitMix64-style avalanche over the packed inputs.

    Used instead of ``hash()`` (salted per process) and ``random``
    (stateful) so decisions agree between the coordinator and any
    worker process.
    """
    h = 0x9E3779B97F4A7C15
    for v in values:
        h = (h ^ (v & _MASK64)) * 0xBF58476D1CE4E5B9 & _MASK64
        h ^= h >> 27
        h = h * 0x94D049BB133111EB & _MASK64
        h ^= h >> 31
    return h


class InjectedFault(RuntimeError):
    """Raised by a work unit the fault plan chose to crash."""

    def __init__(self, key: Tuple[int, int], attempt: int) -> None:
        super().__init__(
            f"injected crash in task {key} (attempt {attempt})"
        )
        self.key = key
        self.attempt = attempt


class CorruptedResult:
    """A detectably corrupted work-unit result.

    Models a summary whose integrity check fails: the supervisor's
    result validation rejects it and schedules a retry, exactly as a
    checksum mismatch would in a real monitor.
    """

    __slots__ = ("key", "attempt")

    def __init__(self, key: Tuple[int, int], attempt: int) -> None:
        self.key = key
        self.attempt = attempt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CorruptedResult(key={self.key}, attempt={self.attempt})"


def result_is_valid(result: Any) -> bool:
    """The supervisor's result validation hook."""
    return not isinstance(result, CorruptedResult)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic fault schedule (see module docstring)."""

    crash: float = 0.0
    hang: float = 0.0
    kill: float = 0.0
    corrupt: float = 0.0
    disconnect: float = 0.0
    trunc_frame: float = 0.0
    corrupt_bytes: float = 0.0
    stall: float = 0.0
    seed: int = 0
    hang_s: float = 0.25
    stall_s: float = 0.75

    def __post_init__(self) -> None:
        for family, kinds in (
            ("fault", FAULT_KINDS),
            ("transport fault", TRANSPORT_FAULT_KINDS),
        ):
            for kind in kinds:
                rate = getattr(self, kind)
                if not 0.0 <= rate <= 1.0:
                    raise ResilienceError(
                        f"{family} rate {kind}={rate!r} must be in [0, 1]"
                    )
            if sum(getattr(self, k) for k in kinds) > 1.0:
                raise ResilienceError(
                    f"{family} rates must sum to at most 1"
                )

    @property
    def total_rate(self) -> float:
        return sum(getattr(self, k) for k in FAULT_KINDS)

    @property
    def total_transport_rate(self) -> float:
        return sum(getattr(self, k) for k in TRANSPORT_FAULT_KINDS)

    def decide(self, key: Tuple[int, int], attempt: int) -> Optional[str]:
        """The compute fault (or ``None``) for one execution of one task.

        Pure: depends only on ``(seed, key, attempt)``.
        """
        u = _mix(self.seed, key[0], key[1], attempt) / float(1 << 64)
        edge = 0.0
        for kind in FAULT_KINDS:
            edge += getattr(self, kind)
            if u < edge:
                return kind
        return None

    def decide_transport(
        self, key: Tuple[int, int], attempt: int
    ) -> Optional[str]:
        """The transport fault (or ``None``) for one frame of one stream.

        ``key`` is conventionally ``(stream digest, epoch)`` and
        ``attempt`` the stream's reconnect count, so a retried delivery
        of the same epoch rolls fresh dice -- a producer that resumes
        after a disconnect is not doomed to disconnect there forever.
        Pure and salted independently of :meth:`decide`.
        """
        u = _mix(
            self.seed ^ _TRANSPORT_SALT, key[0], key[1], attempt
        ) / float(1 << 64)
        edge = 0.0
        for kind in TRANSPORT_FAULT_KINDS:
            edge += getattr(self, kind)
            if u < edge:
                return kind
        return None

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from an ``--inject-faults`` spec string."""
        all_kinds = FAULT_KINDS + TRANSPORT_FAULT_KINDS
        fields: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ResilienceError(
                    f"bad fault spec part {part!r}: expected key=value"
                )
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key in all_kinds or key in ("hang_s", "stall_s"):
                    fields[key] = float(value)
                elif key == "seed":
                    fields[key] = int(value)
                else:
                    raise ResilienceError(
                        f"unknown fault spec key {key!r} (choose from "
                        f"{', '.join(all_kinds + ('seed', 'hang_s', 'stall_s'))})"
                    )
            except ValueError as exc:
                raise ResilienceError(
                    f"bad fault spec value {part!r}: {exc}"
                ) from None
        if not any(k in fields for k in all_kinds):
            raise ResilienceError(
                f"fault spec {spec!r} names no fault kind "
                f"({', '.join(all_kinds)})"
            )
        return cls(**fields)


def faulted_apply(
    payload: Tuple[
        Callable[..., Any], Tuple, FaultPlan, Tuple[int, int], int, bool
    ]
) -> Any:
    """Worker-side wrapper executing one possibly-faulted work unit.

    ``payload`` is ``(fn, args, plan, key, attempt, allow_kill)``.
    Module-level (and all-primitive-carrying) so it crosses the
    process-pool boundary.  ``allow_kill`` is set by the supervisor only
    when the unit runs in a sacrificial worker process; elsewhere a
    ``kill`` decision downgrades to ``crash`` so injection never takes
    the coordinating process down.
    """
    fn, args, plan, key, attempt, allow_kill = payload
    fault = plan.decide(key, attempt)
    if fault == "crash" or (fault == "kill" and not allow_kill):
        raise InjectedFault(key, attempt)
    if fault == "kill":
        os._exit(113)  # simulate a worker crash: breaks the pool
    if fault == "corrupt":
        # The unit's work is lost, not merely mislabeled: fn must NOT
        # run, because on shares-memory backends work units may consume
        # their context argument (e.g. the AddrCheck scanner's running
        # LSOS), and the retry needs it pristine.
        return CorruptedResult(key, attempt)
    if fault == "hang":
        time.sleep(plan.hang_s)
        # A hung unit can outlive its timeout and race the retry that
        # replaced it, so it may only touch a private copy of its args.
        return fn(*copy.deepcopy(args))
    return fn(*args)
