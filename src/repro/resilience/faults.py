"""Deterministic fault injection for the execution backends.

A :class:`FaultPlan` is a seeded, pure decision function: given a work
unit's identity ``(batch, index)`` and its retry ``attempt``, it decides
whether that execution raises (*crash*), stalls (*hang*), dies taking
its worker process with it (*kill*), or returns a detectably corrupted
summary (*corrupt*).  The decision depends only on the plan's seed and
the task identity -- never on wall clock, scheduling, or process
identity -- so a fault schedule is reproducible run to run and the
fault-injection property tests can pin exact recovery behaviour.

Plans are frozen dataclasses of primitives, so they pickle across the
process-pool boundary; the worker-side wrapper
(:func:`faulted_apply`) re-evaluates the same pure decision inside the
worker.

The CLI surfaces plans as ``--inject-faults SPEC`` where ``SPEC`` is a
comma-separated list of ``key=value`` pairs::

    crash=0.05,hang=0.02,corrupt=0.05,seed=7
    kill=0.01,seed=3,hang_s=0.25

Keys: per-kind rates (``crash``, ``hang``, ``kill``, ``corrupt``, each
a probability in ``[0, 1]``; their sum must stay ``<= 1``), ``seed``
(default 0), and ``hang_s`` (stall duration in seconds, default 0.25).
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro.errors import ResilienceError

#: Fault kinds a plan can inject, in cumulative-probability order.
FAULT_KINDS = ("crash", "hang", "kill", "corrupt")

_MASK64 = (1 << 64) - 1


def _mix(*values: int) -> int:
    """SplitMix64-style avalanche over the packed inputs.

    Used instead of ``hash()`` (salted per process) and ``random``
    (stateful) so decisions agree between the coordinator and any
    worker process.
    """
    h = 0x9E3779B97F4A7C15
    for v in values:
        h = (h ^ (v & _MASK64)) * 0xBF58476D1CE4E5B9 & _MASK64
        h ^= h >> 27
        h = h * 0x94D049BB133111EB & _MASK64
        h ^= h >> 31
    return h


class InjectedFault(RuntimeError):
    """Raised by a work unit the fault plan chose to crash."""

    def __init__(self, key: Tuple[int, int], attempt: int) -> None:
        super().__init__(
            f"injected crash in task {key} (attempt {attempt})"
        )
        self.key = key
        self.attempt = attempt


class CorruptedResult:
    """A detectably corrupted work-unit result.

    Models a summary whose integrity check fails: the supervisor's
    result validation rejects it and schedules a retry, exactly as a
    checksum mismatch would in a real monitor.
    """

    __slots__ = ("key", "attempt")

    def __init__(self, key: Tuple[int, int], attempt: int) -> None:
        self.key = key
        self.attempt = attempt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CorruptedResult(key={self.key}, attempt={self.attempt})"


def result_is_valid(result: Any) -> bool:
    """The supervisor's result validation hook."""
    return not isinstance(result, CorruptedResult)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic fault schedule (see module docstring)."""

    crash: float = 0.0
    hang: float = 0.0
    kill: float = 0.0
    corrupt: float = 0.0
    seed: int = 0
    hang_s: float = 0.25

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ResilienceError(
                    f"fault rate {kind}={rate!r} must be in [0, 1]"
                )
        if sum(getattr(self, k) for k in FAULT_KINDS) > 1.0:
            raise ResilienceError("fault rates must sum to at most 1")

    @property
    def total_rate(self) -> float:
        return sum(getattr(self, k) for k in FAULT_KINDS)

    def decide(self, key: Tuple[int, int], attempt: int) -> Optional[str]:
        """The fault (or ``None``) for one execution of one task.

        Pure: depends only on ``(seed, key, attempt)``.
        """
        u = _mix(self.seed, key[0], key[1], attempt) / float(1 << 64)
        edge = 0.0
        for kind in FAULT_KINDS:
            edge += getattr(self, kind)
            if u < edge:
                return kind
        return None

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from an ``--inject-faults`` spec string."""
        fields: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ResilienceError(
                    f"bad fault spec part {part!r}: expected key=value"
                )
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key in FAULT_KINDS or key == "hang_s":
                    fields[key] = float(value)
                elif key == "seed":
                    fields[key] = int(value)
                else:
                    raise ResilienceError(
                        f"unknown fault spec key {key!r} (choose from "
                        f"{', '.join(FAULT_KINDS + ('seed', 'hang_s'))})"
                    )
            except ValueError as exc:
                raise ResilienceError(
                    f"bad fault spec value {part!r}: {exc}"
                ) from None
        if not any(k in fields for k in FAULT_KINDS):
            raise ResilienceError(
                f"fault spec {spec!r} names no fault kind "
                f"({', '.join(FAULT_KINDS)})"
            )
        return cls(**fields)


def faulted_apply(
    payload: Tuple[
        Callable[..., Any], Tuple, FaultPlan, Tuple[int, int], int, bool
    ]
) -> Any:
    """Worker-side wrapper executing one possibly-faulted work unit.

    ``payload`` is ``(fn, args, plan, key, attempt, allow_kill)``.
    Module-level (and all-primitive-carrying) so it crosses the
    process-pool boundary.  ``allow_kill`` is set by the supervisor only
    when the unit runs in a sacrificial worker process; elsewhere a
    ``kill`` decision downgrades to ``crash`` so injection never takes
    the coordinating process down.
    """
    fn, args, plan, key, attempt, allow_kill = payload
    fault = plan.decide(key, attempt)
    if fault == "crash" or (fault == "kill" and not allow_kill):
        raise InjectedFault(key, attempt)
    if fault == "kill":
        os._exit(113)  # simulate a worker crash: breaks the pool
    if fault == "corrupt":
        # The unit's work is lost, not merely mislabeled: fn must NOT
        # run, because on shares-memory backends work units may consume
        # their context argument (e.g. the AddrCheck scanner's running
        # LSOS), and the retry needs it pristine.
        return CorruptedResult(key, attempt)
    if fault == "hang":
        time.sleep(plan.hang_s)
        # A hung unit can outlive its timeout and race the retry that
        # replaced it, so it may only touch a private copy of its args.
        return fn(*copy.deepcopy(args))
    return fn(*args)
