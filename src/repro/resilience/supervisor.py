"""Supervised execution: retries, timeouts, pool healing, degradation.

:class:`SupervisedBackend` wraps any
:class:`~repro.core.parallel.ExecutionBackend` and makes its fan-out
survive faults without changing results:

- **per-task timeout** -- a work unit that hangs past
  ``policy.task_timeout`` is abandoned (the pool is recycled so the
  stuck worker cannot starve later batches) and retried;
- **bounded retry** -- a unit that raises, or returns a corrupted
  summary (see :func:`~repro.resilience.faults.result_is_valid`), is
  re-executed up to ``policy.max_retries`` times with exponential
  backoff and deterministic jitter;
- **pool healing** -- ``BrokenProcessPool``/``BrokenThreadPool`` tears
  the executor down and lazily builds a fresh one; in-flight units are
  resubmitted;
- **graceful degradation** -- after ``policy.degrade_after``
  *consecutive* pool-level failures the backend steps down the ladder
  ``processes -> threads -> serial`` mid-run.

Work units on the fan-out path are *pure* by the engine's contract
(the scan/commit split in :mod:`repro.core.framework`), so re-executing
one is always safe, and because the supervisor still returns results in
item order the engine's ordered commits -- and therefore error logs,
``EngineStats``, and summaries -- stay bit-identical to a fault-free
serial run.  The resilience property tests assert exactly that under
injected crashes, hangs, kills, and corruptions.

Every detected fault, retry, recycle, and degradation is logged through
the attached :class:`~repro.obs.recorder.Recorder` as ``resilience.*``
counters and events, with epoch/thread provenance recovered from the
work unit itself when it carries a block.  Like ``backend.*``, the
``resilience.*`` family is schedule/fault-dependent and is stripped by
:func:`~repro.obs.recorder.normalize_events`.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.core.parallel import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    _PooledBackend,
    _apply,
    get_backend,
)
from repro.errors import ResilienceError
from repro.obs.recorder import NULL_RECORDER
from repro.resilience.faults import (
    FaultPlan,
    _mix,
    faulted_apply,
    result_is_valid,
)

#: The degradation ladder, most to least capable.
DEGRADATION_LADDER = ("processes", "threads", "serial")


@dataclass(frozen=True)
class RetryPolicy:
    """Supervision knobs (defaults documented in docs/robustness.md)."""

    #: Retries per task beyond its first execution.
    max_retries: int = 3
    #: Seconds to wait on one task's result before declaring it hung
    #: (``None`` disables timeouts; serial execution never times out).
    task_timeout: Optional[float] = 30.0
    #: First retry delay in seconds; doubles (``backoff_factor``) per
    #: further retry of the same task, capped at ``backoff_max``.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: Deterministic jitter: the delay is scaled by a per-(task, attempt)
    #: factor in ``[1, 1 + jitter]`` derived from ``seed``.
    jitter: float = 0.25
    #: Consecutive pool-level failures (broken pool or timeout) before
    #: stepping down the degradation ladder.
    degrade_after: int = 2
    seed: int = 0

    def delay_for(self, batch: int, index: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` of one task (seconds)."""
        delay = self.backoff_base * self.backoff_factor ** max(
            0, attempt - 1
        )
        delay = min(delay, self.backoff_max)
        u = _mix(self.seed, batch, index, attempt) / float(1 << 64)
        return delay * (1.0 + self.jitter * u)


class SupervisedBackend(ExecutionBackend):
    """Fault-tolerant wrapper around any execution backend.

    Parameters
    ----------
    inner:
        The supervised backend: a name from
        :data:`~repro.core.parallel.BACKEND_CHOICES` or an instance.
        The supervisor *owns* its inner backend (it must be able to
        tear it down and replace it), so do not share it.
    policy:
        Retry/timeout/degradation knobs.
    plan:
        Optional deterministic :class:`~repro.resilience.faults.FaultPlan`
        injected into every work unit (testing/chaos mode).
    """

    def __init__(
        self,
        inner: Union[str, ExecutionBackend],
        policy: Optional[RetryPolicy] = None,
        plan: Optional[FaultPlan] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.inner = get_backend(inner, max_workers=max_workers)
        self.policy = policy or RetryPolicy()
        self.plan = plan
        self.recorder = NULL_RECORDER
        #: Fan-out capability is fixed at construction: the engine may
        #: cache its scheduling decision, and degradation must never
        #: widen the contract mid-run.
        self.concurrent = self.inner.concurrent
        self._batches = 0
        self._consecutive_pool_failures = 0

    # -- backend surface -------------------------------------------------

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"supervised:{self.inner.name}"

    @property
    def shares_memory(self) -> bool:  # type: ignore[override]
        # Tracks the *current* rung: after processes -> threads the
        # second pass may start fanning out (results are identical
        # either way by the ordered-commit contract).
        return self.inner.shares_memory

    def close(self) -> None:
        self.inner.close()

    def map_ordered(
        self, fn: Callable[..., Any], items: Sequence[Tuple]
    ) -> List[Any]:
        self._batches += 1
        batch = self._batches
        rec = self.recorder
        if rec.enabled:
            rec.count("resilience.batches")
            with rec.span(
                "resilience.map", backend=self.name, tasks=len(items)
            ):
                return self._map(fn, items, batch)
        return self._map(fn, items, batch)

    # -- internals --------------------------------------------------------

    def _map(
        self, fn: Callable[..., Any], items: Sequence[Tuple], batch: int
    ) -> List[Any]:
        if isinstance(self.inner, _PooledBackend):
            return self._map_pooled(fn, items, batch)
        return [
            self._run_inline(fn, item, batch, idx)
            for idx, item in enumerate(items)
        ]

    def _submit(
        self,
        executor: Any,
        fn: Callable[..., Any],
        item: Tuple,
        batch: int,
        index: int,
        attempt: int,
    ) -> Future:
        if self.plan is None:
            return executor.submit(_apply, (fn, item))
        allow_kill = isinstance(self.inner, ProcessPoolBackend)
        return executor.submit(
            faulted_apply,
            (fn, item, self.plan, (batch, index), attempt, allow_kill),
        )

    def _submit_healthy(
        self,
        fn: Callable[..., Any],
        item: Tuple,
        batch: int,
        index: int,
        attempt: int,
    ) -> Optional[Future]:
        """Submit one task, healing the pool if submission itself hits a
        broken executor.

        A worker killed by a racing task can break the pool *between* a
        collect and the next submit, so ``executor.submit`` may raise
        ``BrokenExecutor`` at any submission site.  Each such incident
        recycles the pool (and counts toward degradation); returns
        ``None`` once the backend has degraded off the pooled ladder,
        in which case the caller falls back to inline execution."""
        while True:
            inner = self.inner
            if not isinstance(inner, _PooledBackend):
                return None
            try:
                return self._submit(
                    inner.executor, fn, item, batch, index, attempt
                )
            except BrokenExecutor:
                self._pool_incident("broken")

    def _map_pooled(
        self, fn: Callable[..., Any], items: Sequence[Tuple], batch: int
    ) -> List[Any]:
        n = len(items)
        results: List[Any] = [None] * n
        attempts = [0] * n
        futures: List[Optional[Future]] = [None] * n
        self._resubmit(fn, items, batch, attempts, futures, 0)
        idx = 0
        while idx < n:
            inner = self.inner
            if not isinstance(inner, _PooledBackend):
                # Degraded to serial mid-batch: finish the rest inline.
                for j in range(idx, n):
                    results[j] = self._run_inline(
                        fn, items[j], batch, j, start_attempt=attempts[j]
                    )
                return results
            future = futures[idx]
            assert future is not None
            item = items[idx]
            try:
                result = future.result(timeout=self.policy.task_timeout)
            except FuturesTimeoutError:
                self._note_fault("timeout", batch, idx, attempts[idx], item)
                self._pool_incident("timeout")
                attempts[idx] += 1
                self._check_retries(batch, idx, attempts[idx], futures)
                self._backoff(batch, idx, attempts[idx])
                self._resubmit(fn, items, batch, attempts, futures, idx)
                continue
            except BrokenExecutor:
                self._note_fault("pool", batch, idx, attempts[idx], item)
                self._pool_incident("broken")
                attempts[idx] += 1
                self._check_retries(batch, idx, attempts[idx], futures)
                self._backoff(batch, idx, attempts[idx])
                self._resubmit(fn, items, batch, attempts, futures, idx)
                continue
            except Exception:
                # Task-level failure: the pool is healthy, retry just
                # this unit.
                self._note_fault("crash", batch, idx, attempts[idx], item)
                self._consecutive_pool_failures = 0
                attempts[idx] += 1
                self._check_retries(batch, idx, attempts[idx], futures)
                self._backoff(batch, idx, attempts[idx])
                futures[idx] = self._submit_healthy(
                    fn, item, batch, idx, attempts[idx]
                )
                continue
            if not result_is_valid(result):
                self._note_fault("corrupt", batch, idx, attempts[idx], item)
                self._consecutive_pool_failures = 0
                attempts[idx] += 1
                self._check_retries(batch, idx, attempts[idx], futures)
                self._backoff(batch, idx, attempts[idx])
                futures[idx] = self._submit_healthy(
                    fn, item, batch, idx, attempts[idx]
                )
                continue
            self._consecutive_pool_failures = 0
            results[idx] = result
            idx += 1
        return results

    def _resubmit(
        self,
        fn: Callable[..., Any],
        items: Sequence[Tuple],
        batch: int,
        attempts: List[int],
        futures: List[Optional[Future]],
        start: int,
    ) -> None:
        """(Re)submit every uncollected task from ``start`` on.

        Completed, healthy futures are kept (their results are still
        valid -- work units are pure and nothing has been committed),
        so a pool recycle only re-runs what was actually lost.
        """
        for j in range(start, len(items)):
            old = futures[j]
            if (
                old is not None
                and old.done()
                and not old.cancelled()
                and old.exception() is None
            ):
                continue
            future = self._submit_healthy(
                fn, items[j], batch, j, attempts[j]
            )
            if future is None:
                return  # degraded off the ladder; finished inline later
            futures[j] = future

    def _run_inline(
        self,
        fn: Callable[..., Any],
        item: Tuple,
        batch: int,
        index: int,
        start_attempt: int = 0,
    ) -> Any:
        """Serial execution with the same retry/validation contract.

        No timeout is possible in the calling thread, so an injected
        hang degrades to a stall of ``plan.hang_s`` -- the unit still
        returns the correct result.
        """
        attempt = start_attempt
        while True:
            try:
                if self.plan is None:
                    result = fn(*item)
                else:
                    result = faulted_apply(
                        (fn, item, self.plan, (batch, index), attempt, False)
                    )
            except Exception:
                self._note_fault("crash", batch, index, attempt, item)
            else:
                if result_is_valid(result):
                    return result
                self._note_fault("corrupt", batch, index, attempt, item)
            attempt += 1
            self._check_retries(batch, index, attempt, None)
            self._backoff(batch, index, attempt)

    # -- fault bookkeeping -------------------------------------------------

    def _pool_incident(self, reason: str) -> None:
        """A pool-level failure: recycle the executor, maybe degrade."""
        inner = self.inner
        if isinstance(inner, _PooledBackend):
            inner.discard()
        rec = self.recorder
        if rec.enabled:
            rec.count("resilience.pool_recycles")
            rec.event(
                "resilience.pool.recycle",
                backend=self.name,
                reason=reason,
            )
        self._consecutive_pool_failures += 1
        if self._consecutive_pool_failures >= self.policy.degrade_after:
            self._degrade()

    def _degrade(self) -> bool:
        """Step down the ladder ``processes -> threads -> serial``."""
        inner = self.inner
        if isinstance(inner, ProcessPoolBackend):
            replacement: ExecutionBackend = ThreadPoolBackend(
                max_workers=inner.max_workers
            )
        elif isinstance(inner, ThreadPoolBackend):
            replacement = SerialBackend()
        else:
            return False
        if isinstance(inner, _PooledBackend):
            inner.discard()
        rec = self.recorder
        if rec.enabled:
            rec.count("resilience.degradations")
            rec.event(
                "resilience.degrade",
                from_backend=inner.name,
                to_backend=replacement.name,
                after_failures=self._consecutive_pool_failures,
            )
        self.inner = replacement
        self._consecutive_pool_failures = 0
        return True

    def _note_fault(
        self,
        kind: str,
        batch: int,
        index: int,
        attempt: int,
        item: Tuple,
    ) -> None:
        rec = self.recorder
        if not rec.enabled:
            return
        rec.count("resilience.faults")
        rec.count(f"resilience.faults.{kind}")
        block_id = _block_provenance(item)
        rec.event(
            "resilience.fault",
            kind=kind,
            backend=self.name,
            batch=batch,
            task=index,
            attempt=attempt,
            epoch=block_id[0] if block_id else None,
            thread=block_id[1] if block_id else None,
        )

    def _check_retries(
        self,
        batch: int,
        index: int,
        attempt: int,
        futures: Optional[List[Optional[Future]]],
    ) -> None:
        if attempt <= self.policy.max_retries:
            return
        if futures is not None:
            self._abort_batch(futures)
        rec = self.recorder
        if rec.enabled:
            rec.event(
                "resilience.giveup",
                backend=self.name,
                batch=batch,
                task=index,
                attempts=attempt,
            )
        raise ResilienceError(
            f"task {index} of batch {batch} failed "
            f"{attempt} times (max_retries={self.policy.max_retries})"
        )

    def _abort_batch(self, futures: List[Optional[Future]]) -> None:
        """Cancel what we can and drop the pool so nothing leaks."""
        for future in futures:
            if future is not None:
                future.cancel()
        inner = self.inner
        if isinstance(inner, _PooledBackend):
            inner.discard()

    def _backoff(self, batch: int, index: int, attempt: int) -> None:
        delay = self.policy.delay_for(batch, index, attempt)
        rec = self.recorder
        if rec.enabled:
            rec.count("resilience.retries")
            rec.event(
                "resilience.retry",
                backend=self.name,
                batch=batch,
                task=index,
                attempt=attempt,
                delay_ms=round(delay * 1e3, 3),
            )
        if delay > 0:
            time.sleep(delay)


def _block_provenance(item: Tuple) -> Optional[Tuple[int, int]]:
    """Best-effort ``(epoch, thread)`` of a work unit.

    First-pass units are ``(block, context)``; second-pass units are
    ``(butterfly, wings)``.  Anything else yields ``None``.
    """
    if not item:
        return None
    head = item[0]
    block_id = getattr(head, "block_id", None)
    if block_id is None:
        body = getattr(head, "body", None)
        block_id = getattr(body, "block_id", None)
    return block_id
