"""Epoch-boundary checkpoint/resume for the butterfly engine.

The engine's ordered-commit discipline gives a natural safe point: the
instant epoch ``l``'s bodies have committed and ``SOS_{l+2}`` is
published, the entire analysis state is a deterministic function of the
trace prefix.  A :class:`Checkpointer` snapshots exactly that state --
the analysis object (SOS/LSOS history, interner tables, shadow memory,
error log), the engine's window of block summaries, and its
``EngineStats``/progress counters -- after each committed epoch.

Snapshots are written with the classic atomic-rename protocol (write to
a sibling temp file, flush, fsync, ``os.replace``), so a checkpoint
file on disk is always a complete, loadable snapshot no matter when the
writer was killed.

A checkpoint embeds a ``meta`` fingerprint of the run configuration
(workload, seed, epoch size, lifeguard, trace digest).  Resume refuses
a checkpoint whose fingerprint disagrees with the resuming command --
continuing an analysis over a different trace would silently produce
garbage -- and otherwise restores the engine mid-stream so the
continued run's error log, stats, and summaries are bit-identical to an
uninterrupted one (``repro resume``, and the equivalence tests in
``tests/resilience/test_checkpoint.py``).
"""

from __future__ import annotations

import os
import pickle
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.errors import CheckpointError
from repro.obs.recorder import NULL_RECORDER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.framework import ButterflyEngine

FORMAT = "repro-checkpoint"
VERSION = 1


def _engine_state(engine: "ButterflyEngine") -> Dict[str, Any]:
    """The engine's resumable state (see the module docstring)."""
    return {
        "stats": engine.stats,
        "summaries": engine._summaries,
        # The resident block window (<= 2 epochs at a checkpoint
        # boundary).  Materialized resumes could rebuild it from the
        # partition, but a streamed resume has no partition -- the
        # window is what lets resume seek the reader forward instead of
        # re-reading the whole prefix.
        "window": engine._window,
        "window_high_water": engine.window_high_water,
        "first_pass_errors": engine._first_pass_errors,
        "next_to_receive": engine._next_to_receive,
        "next_to_process": engine._next_to_process,
        # How many observability events the run had emitted when this
        # snapshot was taken.  Resume continues the log's numbering from
        # here instead of re-emitting events for already-covered epochs,
        # so truncate-at-boundary(interrupted log) + resumed log equals
        # the uninterrupted log.
        "events_emitted": engine.recorder.seq,
        "analysis": engine.analysis,
    }


def save_checkpoint(
    path: str,
    engine: "ButterflyEngine",
    meta: Dict[str, Any],
    extra: Optional[Dict[str, Any]] = None,
) -> None:
    """Atomically snapshot ``engine`` (and its analysis) to ``path``.

    The analysis's recorder is detached during pickling (a live sink
    holds an open file handle); resume re-attaches whatever recorder
    the resuming run configures.

    ``extra`` carries caller-owned resumable state that is *not* part
    of the configuration fingerprint (``meta`` is compared key-for-key
    by :meth:`Checkpoint.verify`; extra state is merely restored) --
    the adaptive serve path stores its producer-row progress and
    recorded boundaries here.
    """
    analysis = engine.analysis
    had_recorder = "recorder" in analysis.__dict__
    saved_recorder = analysis.__dict__.pop("recorder", None)
    try:
        payload = pickle.dumps(
            {
                "format": FORMAT,
                "version": VERSION,
                "meta": dict(meta),
                "engine": _engine_state(engine),
                "extra": dict(extra) if extra is not None else None,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    finally:
        if had_recorder:
            analysis.recorder = saved_recorder
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class Checkpoint:
    """A loaded checkpoint: config fingerprint plus engine state."""

    def __init__(
        self,
        meta: Dict[str, Any],
        state: Dict[str, Any],
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.meta = meta
        self._state = state
        #: Caller-owned resumable state (``None`` when the writer passed
        #: nothing) -- outside the fingerprint, see :func:`save_checkpoint`.
        self.extra = extra

    @property
    def analysis(self) -> Any:
        return self._state["analysis"]

    @property
    def next_epoch(self) -> int:
        """The first epoch the resumed run still has to receive."""
        return self._state["next_to_receive"]

    @property
    def events_emitted(self) -> int:
        """Event-log position at the snapshot (the dedup boundary).

        Older checkpoints (written before the field existed) report 0,
        which degrades to the historical restart-at-1 numbering.
        """
        return self._state.get("events_emitted", 0)

    def verify(self, expected_meta: Dict[str, Any]) -> None:
        """Refuse to resume under a different configuration."""
        mismatches = [
            f"{key}: checkpoint={self.meta.get(key)!r} "
            f"run={expected_meta.get(key)!r}"
            for key in sorted(set(self.meta) | set(expected_meta))
            if self.meta.get(key) != expected_meta.get(key)
        ]
        if mismatches:
            raise CheckpointError(
                "checkpoint was taken under a different configuration "
                "(" + "; ".join(mismatches) + ")"
            )

    def restore_into(self, engine: "ButterflyEngine") -> None:
        """Fast-forward an attached engine to the checkpointed state.

        The engine must have been constructed around this checkpoint's
        ``analysis`` object and attached to the (identically
        partitioned) trace; this rewrites its progress counters and
        summary window so the next :meth:`feed_epoch` continues the
        run.
        """
        state = self._state
        if engine.analysis is not state["analysis"]:
            raise CheckpointError(
                "engine must be constructed around the checkpoint's "
                "analysis object (engine.analysis is not it)"
            )
        engine.stats = state["stats"]
        engine._summaries = state["summaries"]
        engine._first_pass_errors = state["first_pass_errors"]
        engine._next_to_receive = state["next_to_receive"]
        engine._next_to_process = state["next_to_process"]
        window = state.get("window")
        if window is None:
            # Checkpoint written before the engine kept an explicit
            # block window: rebuild it from the attached partition
            # (streamed resumes always have the field).
            window = self._rebuild_window(engine)
        engine._window = window
        engine.window_high_water = state.get(
            "window_high_water", len(engine._summaries)
        )
        if engine.recorder.enabled:
            engine.recorder.resume_from(self.events_emitted)

    @staticmethod
    def _rebuild_window(engine: "ButterflyEngine") -> Dict[Any, Any]:
        partition = engine._partition
        if partition is None:
            raise CheckpointError(
                "checkpoint predates block-window snapshots and the "
                "engine is attached to a stream; resume it with a "
                "materialized partition instead"
            )
        window: Dict[Any, Any] = {}
        start = max(0, engine._next_to_process - 1)
        for lid in range(start, engine._next_to_receive):
            for tid in range(partition.num_threads):
                window[(lid, tid)] = partition.block(lid, tid)
        return window


def load_checkpoint(path: str) -> Checkpoint:
    """Read and structurally validate a checkpoint file."""
    try:
        with open(path, "rb") as fh:
            raw = pickle.load(fh)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    except (pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise CheckpointError(
            f"{path} is not a readable checkpoint: {exc}"
        ) from exc
    if not isinstance(raw, dict) or raw.get("format") != FORMAT:
        raise CheckpointError(f"{path} is not a repro checkpoint file")
    if raw.get("version") != VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {raw.get('version')!r} "
            f"(this build reads version {VERSION})"
        )
    return Checkpoint(raw["meta"], raw["engine"], raw.get("extra"))


class Checkpointer:
    """Engine hook writing a snapshot after committed epochs.

    Attach with :meth:`ButterflyEngine.enable_checkpoints`; the engine
    calls :meth:`after_epoch` each time an epoch's bodies have
    committed and its SOS advance has been published.
    """

    def __init__(
        self,
        path: str,
        meta: Optional[Dict[str, Any]] = None,
        every: int = 1,
        extra_state: Optional[Any] = None,
    ) -> None:
        if every < 1:
            raise CheckpointError(f"checkpoint interval must be >= 1: {every}")
        self.path = path
        self.meta = dict(meta or {})
        self.every = every
        self.written = 0
        #: Zero-arg callable sampled at every save; its dict rides the
        #: snapshot as :attr:`Checkpoint.extra`.
        self.extra_state = extra_state

    def save_now(self, engine: "ButterflyEngine") -> None:
        """Write one snapshot immediately (the forced-save entry point
        shard backends use on session failure)."""
        extra = (
            self.extra_state() if self.extra_state is not None else None
        )
        save_checkpoint(self.path, engine, self.meta, extra=extra)

    def after_epoch(self, engine: "ButterflyEngine", lid: int) -> None:
        if (lid + 1) % self.every:
            return
        rec = engine.recorder
        if rec.enabled:
            with rec.span("resilience.checkpoint", epoch=lid):
                self.save_now(engine)
            rec.count("resilience.checkpoints")
        else:
            self.save_now(engine)
        self.written += 1
