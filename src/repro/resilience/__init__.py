"""Resilient execution: fault injection, supervised backends, and
epoch-boundary checkpoint/resume.

See ``docs/robustness.md`` for the fault model, retry/backoff defaults,
the degradation ladder, and the checkpoint format.
"""

from repro.resilience.checkpoint import (
    Checkpoint,
    Checkpointer,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    TRANSPORT_FAULT_KINDS,
    CorruptedResult,
    FaultPlan,
    InjectedFault,
    result_is_valid,
)
from repro.resilience.supervisor import (
    DEGRADATION_LADDER,
    RetryPolicy,
    SupervisedBackend,
)

__all__ = [
    "Checkpoint",
    "Checkpointer",
    "CorruptedResult",
    "DEGRADATION_LADDER",
    "FAULT_KINDS",
    "FaultPlan",
    "InjectedFault",
    "RetryPolicy",
    "SupervisedBackend",
    "TRANSPORT_FAULT_KINDS",
    "load_checkpoint",
    "result_is_valid",
    "save_checkpoint",
]
