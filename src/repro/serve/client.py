"""The producer side of the serve protocol: ``repro push``.

A deliberately small, *synchronous* client: it reads a version-2 trace
file and ships its epoch records to a running ``repro serve`` daemon as
``EPOCH`` frames -- the payload is the file's own JSON line, so pushing
never re-encodes the trace.  Blocking sockets are the point: when the
daemon stops reading (a stream's bounded queue filled), the producer's
``send`` blocks on the kernel's TCP window -- backpressure reaches the
producer with no protocol machinery at all.

The client is also the project's transport fault *injector*.  Given a
:class:`~repro.resilience.faults.FaultPlan` with transport rates, each
epoch frame rolls the plan's deterministic dice
(:meth:`~repro.resilience.faults.FaultPlan.decide_transport`, keyed by
``(crc32(stream id), epoch)`` and the reconnect attempt) and delivers
the chosen failure: a clean disconnect between frames, a truncated
frame, corrupted payload bytes, or a producer stall.  Because the dice
are keyed by attempt, a resumed delivery re-rolls -- injection
exercises the recovery path instead of dooming one epoch forever.

Recovery is resume, not replay: on any retryable failure the client
backs off deterministically
(:meth:`~repro.resilience.supervisor.RetryPolicy.delay_for`),
reconnects with the stream's resume token, and the daemon's ``ACK``
says which epoch to continue from -- everything before it survived in
the daemon's checkpoint, and completed epochs are never re-sent.
"""

from __future__ import annotations

import json
import socket
import time
import zlib
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError, TraceError
from repro.resilience.faults import FaultPlan
from repro.resilience.supervisor import RetryPolicy
from repro.serve.protocol import (
    FRAME_ACK,
    FRAME_END,
    FRAME_EPOCH,
    FRAME_ERROR,
    FRAME_HELLO,
    FRAME_REPORT,
    HEADER_SIZE,
    ProtocolError,
    decode_header,
    decode_json_payload,
    encode_frame,
    encode_json_frame,
    make_hello,
    resume_token,
)
from repro.trace.serialize import stream_header

#: ``ERROR`` codes worth a reconnect: transient overload and transport
#: damage.  ``token`` and ``internal`` are permanent for this stream.
RETRYABLE_CODES = frozenset(
    {"busy", "shed", "timeout", "protocol", "drain"}
)

Address = Tuple[str, Any]  # ("tcp", (host, port)) | ("unix", path)


class ServeErrorFrame(ReproError):
    """The daemon refused or aborted the stream with an ``ERROR`` frame."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        super().__init__(
            f"serve error [{payload.get('code')}]: {payload.get('error')}"
        )
        self.code = payload.get("code")
        self.payload = payload


class _Retryable(Exception):
    """Internal marker: this delivery failed but a reconnect may finish
    the stream (wraps the causal exception for the final report)."""


def parse_address(spec: str) -> Address:
    """``HOST:PORT`` -> a tcp address (the CLI's ``--connect`` form)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ReproError(f"bad address {spec!r}: expected HOST:PORT")
    try:
        return ("tcp", (host, int(port)))
    except ValueError:
        raise ReproError(f"bad port in address {spec!r}") from None


def _connect(address: Address, timeout: float) -> socket.socket:
    kind, where = address
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(where)
    return sock


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sync(sock: socket.socket) -> Tuple[int, bytes]:
    ftype, length = decode_header(_recv_exactly(sock, HEADER_SIZE))
    return ftype, _recv_exactly(sock, length)


class StreamClient:
    """One stream's delivery loop: connect, resume, inject, retry."""

    def __init__(
        self,
        address: Address,
        trace_path: str,
        stream_id: str,
        lifeguard: str = "addrcheck",
        plan: Optional[FaultPlan] = None,
        policy: Optional[RetryPolicy] = None,
        retries: int = 3,
        timeout: float = 30.0,
    ) -> None:
        self.address = address
        self.trace_path = trace_path
        self.stream_id = stream_id
        self.lifeguard = lifeguard
        self.plan = plan
        self.policy = policy or RetryPolicy(max_retries=retries)
        self.retries = retries
        self.timeout = timeout
        with open(trace_path) as fp:
            self.header = stream_header(fp, trace_path)
        self.hello = make_hello(
            stream_id,
            self.header["threads"],
            self.header["epochs"],
            self.header["preallocated"],
            lifeguard,
        )
        self.token = resume_token(self.hello)
        self._digest = zlib.crc32(stream_id.encode("utf-8"))
        #: The last ``ACK`` received, for callers that care where the
        #: daemon resumed this stream from.
        self.last_ack: Optional[Dict[str, Any]] = None

    # -- fault injection --------------------------------------------------

    def _deliver_epoch(
        self, sock: socket.socket, lid: int, line: str, attempt: int
    ) -> None:
        """Send one epoch frame, injecting this delivery's planned
        transport fault (if any)."""
        payload = line.encode("utf-8")
        fault = (
            self.plan.decide_transport((self._digest, lid), attempt)
            if self.plan is not None and self.plan.total_transport_rate > 0
            else None
        )
        if fault == "disconnect":
            sock.close()
            raise _Retryable(f"injected disconnect before epoch {lid}")
        if fault == "trunc_frame":
            frame = encode_frame(FRAME_EPOCH, payload)
            sock.sendall(frame[: max(1, len(frame) // 2)])
            sock.close()
            raise _Retryable(f"injected truncated frame at epoch {lid}")
        if fault == "corrupt_bytes":
            damaged = bytearray(payload)
            damaged[len(damaged) // 2] ^= 0x5A
            sock.sendall(encode_frame(FRAME_EPOCH, bytes(damaged)))
            # The daemon answers ERROR protocol; surface it as this
            # frame's failure so the retry path re-rolls the dice.
            ftype, answer = read_frame_sync(sock)
            sock.close()
            if ftype == FRAME_ERROR:
                raise _Retryable(
                    ServeErrorFrame(decode_json_payload(ftype, answer))
                )
            raise _Retryable(f"injected corrupt frame at epoch {lid}")
        if fault == "stall":
            time.sleep(self.plan.stall_s)
        sock.sendall(encode_frame(FRAME_EPOCH, payload))

    # -- one delivery attempt ---------------------------------------------

    def _attempt(self, attempt: int) -> Dict[str, Any]:
        try:
            sock = _connect(self.address, self.timeout)
        except OSError as exc:
            raise _Retryable(f"connect failed: {exc}") from exc
        try:
            return self._run_stream(sock, attempt)
        except (socket.timeout, ConnectionError, BrokenPipeError) as exc:
            raise _Retryable(f"transport failed: {exc}") from exc
        except ProtocolError as exc:
            raise _Retryable(f"bad frame from daemon: {exc}") from exc
        except ServeErrorFrame as exc:
            if exc.code in RETRYABLE_CODES:
                raise _Retryable(exc) from exc
            raise
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _run_stream(
        self, sock: socket.socket, attempt: int
    ) -> Dict[str, Any]:
        hello = dict(self.hello)
        hello["token"] = self.token if attempt else None
        sock.sendall(encode_json_frame(FRAME_HELLO, hello))
        ftype, payload = read_frame_sync(sock)
        if ftype == FRAME_ERROR:
            raise ServeErrorFrame(decode_json_payload(ftype, payload))
        if ftype != FRAME_ACK:
            raise ProtocolError(f"expected ACK, got frame 0x{ftype:02x}")
        ack = decode_json_payload(ftype, payload)
        self.last_ack = ack
        start = ack.get("resume_epoch", 0)
        num_epochs = self.header["epochs"]
        with open(self.trace_path) as fp:
            fp.readline()  # header, validated at construction
            for _ in range(start):  # epochs the daemon already holds
                fp.readline()
            for lid in range(start, num_epochs):
                line = fp.readline()
                if not line.strip():
                    raise TraceError(
                        f"{self.trace_path}: truncated at epoch {lid}"
                    )
                self._deliver_epoch(sock, lid, line.strip(), attempt)
            footer = fp.readline().strip()
        sock.sendall(
            encode_frame(FRAME_END, footer.encode("utf-8"))
            if footer
            else encode_json_frame(
                FRAME_END, {"epochs_written": num_epochs}
            )
        )
        ftype, payload = read_frame_sync(sock)
        record = decode_json_payload(ftype, payload)
        if ftype == FRAME_ERROR:
            raise ServeErrorFrame(record)
        if ftype != FRAME_REPORT:
            raise ProtocolError(f"expected REPORT, got frame 0x{ftype:02x}")
        return record

    # -- the delivery loop ------------------------------------------------

    def push(self) -> Dict[str, Any]:
        """Deliver the stream, resuming across failures; the REPORT."""
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(
                    self.policy.delay_for(self._digest, 0, attempt)
                )
            try:
                return self._attempt(attempt)
            except _Retryable as exc:
                cause = exc.args[0]
                last = cause if isinstance(cause, Exception) else exc
        message = (
            f"stream {self.stream_id!r} failed after "
            f"{self.retries + 1} attempts: {last}"
        )
        if isinstance(last, ServeErrorFrame):
            raise ServeErrorFrame(last.payload) from last
        raise ReproError(message) from last


def push_trace(
    address: Address,
    trace_path: str,
    stream_id: str,
    lifeguard: str = "addrcheck",
    plan: Optional[FaultPlan] = None,
    retries: int = 3,
    timeout: float = 30.0,
    policy: Optional[RetryPolicy] = None,
) -> Dict[str, Any]:
    """Push one version-2 trace file; return the daemon's REPORT."""
    return StreamClient(
        address,
        trace_path,
        stream_id,
        lifeguard=lifeguard,
        plan=plan,
        policy=policy,
        retries=retries,
        timeout=timeout,
    ).push()
