"""The butterfly-as-a-service daemon: ``repro serve``.

A long-running asyncio process that accepts many concurrent version-2
trace streams over TCP or Unix sockets (the framed protocol in
:mod:`repro.serve.protocol`) and folds each one through its own
:class:`~repro.core.framework.ButterflyEngine`, holding only the
three-epoch butterfly window per stream.

Architecture
------------

One event loop owns all sockets, the accept path, every per-stream
queue, and the daemon's :class:`~repro.obs.recorder.Recorder` (which is
not thread-safe -- ``serve.*`` counters are only ever touched from the
loop thread).  Analysis work never runs on the loop: each stream is
routed by a stable hash of its id to one of ``workers`` *shards* --
single-thread executors by default, long-lived worker *processes* with
``shard_backend="process"`` (:mod:`repro.serve.shards`) -- and every
``feed``/``finish``/checkpoint call runs there.  Streams on the same
shard serialize; streams on different shards fold epochs genuinely in
parallel (across real cores under process shards); and a lifeguard
crash surfaces as a failed call on the one session that caused it,
never as a dead daemon.

Backpressure is the queue, not a protocol message: each session's epoch
queue is bounded at ``queue_depth``, the socket reader ``await``\\ s the
put, and a full queue therefore stops the read loop -- the kernel's TCP
window fills and the producer's sends block.  End to end, a producer
can run at most ``queue_depth + 1`` epochs ahead of the lifeguard, and
the per-stream window invariant (at most 3 epochs x threads resident
summaries) holds no matter how fast producers push.

When backpressure is not enough the daemon degrades in documented
rungs (``docs/serving.md``): per-stream queues fill first; if the
daemon-wide queued-epoch total exceeds ``max_pending_epochs`` the
*newest* accepted stream is shed (final checkpoint, ``ERROR shed``,
resumable by token); at ``max_streams`` active sessions new connects
are refused outright (``ERROR busy``).  Oldest streams -- closest to
completing, with the most sunk work -- are never the victims.

Every stream checkpoints at epoch boundaries
(:class:`~repro.resilience.checkpoint.Checkpointer` under
``checkpoint_dir``, filename = resume token), so a SIGKILLed daemon
restarted on the same directory resumes every in-flight stream from
its last committed epoch: the ``ACK`` tells the reconnecting producer
which epoch to resend from, and the resumed report is bit-identical to
an uninterrupted run's.  SIGTERM/SIGINT triggers the graceful variant:
stop accepting, stop reading, fold what is queued, checkpoint, notify
producers with ``ERROR drain``, flush the event sink, exit 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CheckpointError, ReproError, TraceError
from repro.obs.metrics import CONTENT_TYPE, render_metrics
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.serve.protocol import (
    FRAME_ACK,
    FRAME_END,
    FRAME_EPOCH,
    FRAME_ERROR,
    FRAME_HELLO,
    FRAME_REPORT,
    HEADER_SIZE,
    ProtocolError,
    decode_header,
    decode_json_payload,
    encode_json_frame,
    error_payload,
    resume_token,
    validate_hello,
)
from repro.serve.shards import (
    SHARD_BACKEND_CHOICES,
    StreamEngineHandle,
    make_guard,
    make_shards,
    stream_checkpoint_path,
)
from repro.trace.serialize import decode_epoch_row

__all__ = [
    "ReproServer",
    "ServeConfig",
    "ServerThread",
    "StreamSession",
    "make_guard",
    "read_frame",
]


@dataclass
class ServeConfig:
    """Daemon knobs (CLI flags map onto these one to one)."""

    host: str = "127.0.0.1"
    port: int = 0
    unix_path: Optional[str] = None
    #: Engine shards.  Streams hash onto shards, so concurrency scales
    #: with workers while any one stream's epochs stay strictly ordered.
    workers: int = 2
    #: Where a shard's engines live: ``"thread"`` (single-thread
    #: executors in the daemon process) or ``"process"`` (one long-lived
    #: worker process per shard; see :mod:`repro.serve.shards`).
    shard_backend: str = "thread"
    #: Per-stream bounded epoch queue -- the backpressure depth.
    queue_depth: int = 4
    #: Active-session cap: the refuse-connects rung.
    max_streams: int = 64
    #: Daemon-wide queued-epoch cap: the shed-newest rung.
    max_pending_epochs: int = 256
    #: Seconds of producer silence before a session is timed out.
    idle_timeout: float = 30.0
    #: Directory for per-stream checkpoints (None disables resume).
    checkpoint_dir: Optional[str] = None
    #: Checkpoint every N committed epochs.
    checkpoint_every: int = 1
    #: Engine backend per stream ("serial" is right for a daemon:
    #: cross-stream parallelism comes from the shards).
    backend: str = "serial"
    #: TCP port for the ``/metrics``-style text snapshot listener
    #: (``None`` disables it; ``0`` binds an ephemeral port).
    metrics_port: Optional[int] = None
    #: Adaptive epoch sizing: coalesce producer epochs into larger
    #: analysis epochs under an online controller
    #: (:mod:`repro.core.tune`) instead of analyzing every producer cut
    #: as its own epoch.  Resume coordinates stay in producer rows, and
    #: the boundaries actually analyzed ride the REPORT for offline
    #: replay.
    adaptive_epoch: bool = False
    #: Latency SLO: one fold must complete within this many ms.
    slo_target_ms: float = 50.0
    #: Queue depth at/above which the controller doubles the fold.
    slo_queue_high: int = 3
    #: Queue depth at/below which the controller shrinks toward
    #: ``slo_min_fold``.
    slo_queue_low: int = 1
    #: Fold-factor floor (1 = producer-sized epochs when idle).
    slo_min_fold: int = 1
    #: Fold-factor ceiling.
    slo_max_fold: int = 64


class _SessionError(Exception):
    """Terminate a session with a protocol ``ERROR`` frame."""

    def __init__(self, code: str, message: str, **fields: Any) -> None:
        super().__init__(message)
        self.code = code
        self.fields = fields


async def read_frame(
    reader: asyncio.StreamReader, timeout: Optional[float] = None
) -> Optional[Tuple[int, bytes]]:
    """One frame, or ``None`` on clean EOF at a frame boundary.

    A connection that dies *inside* a frame (header or payload cut
    short) raises :class:`ProtocolError` -- that is the truncated-frame
    transport fault, distinct from a clean disconnect.  ``timeout`` is
    an *idle* deadline, applied per read: every chunk of progress
    resets it, so a live producer trickling a large frame slower than
    the deadline is never killed mid-frame, while a stalled one times
    out after ``timeout`` seconds without a single byte.
    """

    async def _read_exactly(
        count: int, where: str, total: int, clean_eof: bool
    ) -> Optional[bytes]:
        chunks: List[bytes] = []
        got = 0
        while got < count:
            read = reader.read(count - got)
            chunk = (
                await read if timeout is None
                else await asyncio.wait_for(read, timeout)
            )
            if not chunk:  # EOF
                if clean_eof and got == 0:
                    return None
                raise ProtocolError(
                    f"connection closed inside a frame {where} "
                    f"({got}/{total} bytes)"
                ) from None
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    header = await _read_exactly(
        HEADER_SIZE, "header", HEADER_SIZE, clean_eof=True
    )
    if header is None:
        return None  # clean EOF between frames
    ftype, length = decode_header(header)
    payload = await _read_exactly(length, "payload", length, clean_eof=False)
    return ftype, payload or b""


class StreamSession:
    """One connected trace stream: reader, bounded queue, shard feed."""

    def __init__(
        self,
        server: "ReproServer",
        hello: Dict[str, Any],
        token: str,
        writer: asyncio.StreamWriter,
        seq: int,
    ) -> None:
        self.server = server
        self.hello = hello
        self.stream_id: str = hello["stream"]
        self.token = token
        self.writer = writer
        #: Accept order -- the shed rung evicts the largest.
        self.seq = seq
        self.queue: "asyncio.Queue[Any]" = asyncio.Queue(
            maxsize=server.config.queue_depth
        )
        self.engine: Optional[StreamEngineHandle] = None
        self.shard_index = server.shard_index_for(self.stream_id)
        self.resume_epoch = 0
        self.next_epoch = 0
        self.ended = False
        #: Set by the shed rung / drain to stop the read loop at the
        #: next frame boundary.
        self.stopped: Optional[str] = None
        #: Wakes the read loop immediately when ``stopped`` is set, so
        #: a drain never waits out the idle timeout on a quiet stream.
        self.stop_event = asyncio.Event()
        self.consumer: Optional["asyncio.Task[None]"] = None

    def request_stop(self, reason: str) -> None:
        if self.stopped is None:
            self.stopped = reason
            self.stop_event.set()

    # -- engine setup ---------------------------------------------------

    @property
    def checkpoint_path(self) -> Optional[str]:
        return stream_checkpoint_path(
            self.server.config.checkpoint_dir, self.token
        )

    async def open_engine(self) -> None:
        """Fresh engine, or one restored from this stream's checkpoint,
        living wherever this stream's shard keeps its engines."""
        shard = self.server.shard_for(self.stream_id)
        self.engine = await shard.open_stream(
            self.hello, self.token, self.server.config
        )
        self.resume_epoch = self.engine.resume_epoch
        self.next_epoch = self.resume_epoch

    # -- frame handling (loop thread) -----------------------------------

    async def send(self, ftype: int, record: Dict[str, Any]) -> None:
        self.writer.write(encode_json_frame(ftype, record))
        await self.writer.drain()

    def handle_epoch(self, payload: bytes) -> List[Any]:
        """Validate one EPOCH payload into a block row (or raise)."""
        lid = self.next_epoch
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _SessionError(
                "protocol",
                f"epoch frame {lid} is not valid JSON: {exc}",
                epoch=lid,
            ) from None
        try:
            row = decode_epoch_row(
                record, lid, self.hello["threads"], self.stream_id, lid + 2
            )
        except TraceError as exc:
            raise _SessionError("protocol", str(exc), epoch=lid) from None
        self.next_epoch += 1
        return row

    def handle_end(self, payload: bytes) -> None:
        footer = decode_json_payload(FRAME_END, payload)
        if footer.get("epochs_written") != self.hello["epochs"]:
            raise _SessionError(
                "protocol",
                f"bad footer {footer!r} (expected epochs_written="
                f"{self.hello['epochs']})",
            )
        if self.next_epoch != self.hello["epochs"]:
            raise _SessionError(
                "protocol",
                f"stream ended at epoch {self.next_epoch} of "
                f"{self.hello['epochs']}",
            )
        self.ended = True

    # -- the shard-side consumer ----------------------------------------

    async def consume(self) -> None:
        """Fold queued epochs on this stream's shard, in order."""
        server = self.server
        while True:
            item = await self.queue.get()
            if item is None:  # end-of-stream sentinel
                await self.engine.finish()
                return
            lid, row = item
            ok = False
            try:
                # The queue depth behind this row is the adaptive
                # controller's backpressure signal (ignored by fixed
                # engines).
                await self.engine.feed(lid, row, self.queue.qsize())
                ok = True
            finally:
                # Balance the pending-epoch gauge even when the feed
                # (or a cancellation) failed -- a leak here would
                # ratchet the shed rung's trigger over daemon lifetime.
                server.note_folded(self, ok)

    async def drain_queue(self) -> None:
        """Fold what is already queued (shed/drain/timeout paths).

        Per-item containment: a feed failure (e.g. the engine refusing
        an epoch dropped by a cancelled consumer) must not leave later
        items uncounted in the daemon's pending gauge -- resume covers
        whatever could not be folded here.
        """
        while not self.queue.empty():
            item = self.queue.get_nowait()
            if item is None:
                continue
            lid, row = item
            ok = False
            try:
                await self.engine.feed(lid, row)
                ok = True
            except Exception:
                pass
            finally:
                self.server.note_folded(self, ok)

    async def save_checkpoint_now(self) -> None:
        """Force a snapshot regardless of ``checkpoint_every``."""
        if self.engine is None:
            return
        await self.engine.save_checkpoint()


class ReproServer:
    """The daemon: accept loop, sessions, shards, overload ladder."""

    def __init__(
        self, config: ServeConfig, recorder: Recorder = NULL_RECORDER
    ) -> None:
        if config.workers < 1:
            raise ReproError(f"workers must be >= 1: {config.workers}")
        if config.queue_depth < 1:
            raise ReproError(f"queue depth must be >= 1: {config.queue_depth}")
        if config.shard_backend not in SHARD_BACKEND_CHOICES:
            raise ReproError(
                f"unknown shard backend {config.shard_backend!r} (choose "
                f"from {', '.join(SHARD_BACKEND_CHOICES)})"
            )
        self.config = config
        self.recorder = recorder
        self.sessions: Dict[str, StreamSession] = {}
        self.address: Optional[Tuple[str, Any]] = None
        self.metrics_address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._shards: List[Any] = []
        self._shard_depth = [0] * config.workers
        self._pending_epochs = 0
        self._accept_seq = 0
        self._draining = False
        self._done = asyncio.Event()
        self._conn_tasks: "set[asyncio.Task[None]]" = set()

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        config = self.config
        if config.checkpoint_dir is not None:
            os.makedirs(config.checkpoint_dir, exist_ok=True)
        self._shards = make_shards(config.shard_backend, config.workers)
        if self.recorder.enabled:
            self.recorder.gauge("serve.workers", config.workers)
            for i in range(config.workers):
                self.recorder.gauge(f"serve.shard_depth.{i}", 0)
        if config.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connect, path=config.unix_path
            )
            self.address = ("unix", config.unix_path)
        else:
            self._server = await asyncio.start_server(
                self._on_connect, host=config.host, port=config.port
            )
            sock = self._server.sockets[0]
            host, port = sock.getsockname()[:2]
            self.address = ("tcp", (host, port))
        if config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._on_metrics_connect,
                host=config.host,
                port=config.metrics_port,
            )
            sock = self._metrics_server.sockets[0]
            host, port = sock.getsockname()[:2]
            self.metrics_address = (host, port)

    async def wait_done(self) -> None:
        """Block until a drain completes."""
        await self._done.wait()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish queued epochs,
        checkpoint every in-flight stream, notify producers, stop."""
        if self._draining:
            await self._done.wait()
            return
        self._draining = True
        self.emit("drain", inflight=len(self.sessions))
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        for session in list(self.sessions.values()):
            session.request_stop("drain")
        # Stopped sessions unwind through their connection tasks (drain
        # queued epochs -> final checkpoint -> ERROR drain frame).
        while self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks))
        for shard in self._shards:
            shard.shutdown(wait=True)
        if (
            self.config.unix_path is not None
            and os.path.exists(self.config.unix_path)
        ):
            os.unlink(self.config.unix_path)
        self._done.set()

    # -- shards ---------------------------------------------------------

    def shard_index_for(self, stream_id: str) -> int:
        return zlib.crc32(stream_id.encode("utf-8")) % self.config.workers

    def shard_for(self, stream_id: str):
        return self._shards[self.shard_index_for(stream_id)]

    # -- counters (loop thread only; the recorder is not thread-safe) ---

    def count(self, name: str, delta: int = 1) -> None:
        if self.recorder.enabled:
            self.recorder.count(f"serve.{name}", delta)

    def emit(self, name: str, **fields: Any) -> None:
        """A stream lifecycle event, for the JSONL sink / audit trail."""
        if self.recorder.enabled:
            self.recorder.event(f"serve.{name}", **fields)

    def _gauge_active(self) -> None:
        if self.recorder.enabled:
            self.recorder.gauge("serve.streams_active", len(self.sessions))

    def note_queued(self, session: StreamSession) -> None:
        self._pending_epochs += 1
        self._shard_depth[session.shard_index] += 1
        self.count("epochs_received")
        if self.recorder.enabled:
            self.recorder.gauge("serve.pending_epochs", self._pending_epochs)
            self.recorder.gauge(
                f"serve.shard_depth.{session.shard_index}",
                self._shard_depth[session.shard_index],
            )
        if self._pending_epochs > self.config.max_pending_epochs:
            self._shed_newest()

    def note_folded(self, session: StreamSession, ok: bool = True) -> None:
        self._pending_epochs -= 1
        self._shard_depth[session.shard_index] -= 1
        if ok:
            self.count("epochs_folded")
        if self.recorder.enabled:
            self.recorder.gauge("serve.pending_epochs", self._pending_epochs)
            self.recorder.gauge(
                f"serve.shard_depth.{session.shard_index}",
                self._shard_depth[session.shard_index],
            )

    # -- overload ladder -------------------------------------------------

    def _shed_newest(self) -> None:
        """Second rung: evict the newest accepted stream (most progress
        still ahead of it, least sunk work).  It keeps its checkpoint
        and resume token, so shedding costs a reconnect, not the run."""
        victims = [
            s for s in self.sessions.values() if s.stopped is None
        ]
        if not victims:
            return
        victim = max(victims, key=lambda s: s.seq)
        victim.request_stop("shed")
        self.count("streams_shed")
        self.emit("shed", stream=victim.stream_id)

    # -- the metrics listener --------------------------------------------

    async def _on_metrics_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer any request with the current metrics snapshot.

        Deliberately not a web server: the request head is read (and
        discarded) only so well-behaved HTTP clients see a response to
        *their* bytes, then one snapshot is rendered -- on the loop
        thread, so the recorder needs no lock -- and the connection
        closes.  ``curl`` and Prometheus both cope.
        """
        try:
            try:
                await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=1.0
                )
            except Exception:
                pass  # a bare `nc` probe gets the snapshot too
            body = render_metrics(self.recorder).encode("utf-8")
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                + f"Content-Type: {CONTENT_TYPE}\r\n".encode("ascii")
                + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
                + body
            )
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    # -- connections -----------------------------------------------------

    def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.get_running_loop().create_task(
            self._serve_connection(reader, writer)
        )
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection end to end.  Every failure mode lands here and
        is contained here: the daemon survives anything a single
        connection does."""
        session: Optional[StreamSession] = None
        try:
            session = await self._handshake(reader, writer)
            if session is None:
                return
            await self._pump(session, reader)
            await self._complete(session)
        except _SessionError as exc:
            await self._fail_session(
                session, writer, exc.code, str(exc), **exc.fields
            )
        except (ProtocolError, asyncio.TimeoutError) as exc:
            code = (
                "timeout" if isinstance(exc, asyncio.TimeoutError)
                else "protocol"
            )
            message = (
                f"no frame within {self.config.idle_timeout}s"
                if isinstance(exc, asyncio.TimeoutError) else str(exc)
            )
            await self._fail_session(session, writer, code, message)
        except (ConnectionError, BrokenPipeError):
            # Clean-ish transport death (disconnect fault): checkpoint
            # what we have; the producer will be back with the token.
            await self._fail_session(session, writer, None, "disconnect")
        except CheckpointError as exc:
            await self._fail_session(session, writer, "token", str(exc))
        except Exception as exc:  # fault isolation: never unwind the loop
            await self._fail_session(
                session, writer, "internal",
                f"{type(exc).__name__}: {exc}",
            )
        finally:
            if session is not None:
                self.sessions.pop(session.stream_id, None)
                self._gauge_active()
                if session.engine is not None:
                    await session.engine.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[StreamSession]:
        frame = await read_frame(reader, self.config.idle_timeout)
        if frame is None:
            return None
        ftype, payload = frame
        if ftype != FRAME_HELLO:
            raise _SessionError(
                "protocol", "expected a HELLO frame first"
            )
        hello = validate_hello(decode_json_payload(ftype, payload))
        stream_id = hello["stream"]
        if self._draining:
            raise _SessionError(
                "drain", "daemon is draining; try another instance"
            )
        if len(self.sessions) >= self.config.max_streams:
            # Top rung: refuse outright, before any state is built.
            self.count("connects_refused")
            writer.write(encode_json_frame(FRAME_ERROR, error_payload(
                "busy",
                f"at the {self.config.max_streams}-stream cap; retry later",
            )))
            await writer.drain()
            return None
        if stream_id in self.sessions:
            raise _SessionError(
                "busy", f"stream {stream_id!r} is already connected"
            )
        token = resume_token(hello)
        if hello["token"] is not None and hello["token"] != token:
            raise _SessionError(
                "token",
                f"resume token {hello['token']!r} does not match this "
                f"stream's identity",
            )
        self._accept_seq += 1
        session = StreamSession(
            self, hello, token, writer, self._accept_seq
        )
        try:
            await session.open_engine()
        except CheckpointError as exc:
            raise _SessionError("token", str(exc)) from None
        self.sessions[stream_id] = session
        self.count("streams_accepted")
        self.emit(
            "accepted",
            stream=stream_id,
            resume_epoch=session.resume_epoch,
            epochs=hello["epochs"],
            lifeguard=hello["lifeguard"],
        )
        self._gauge_active()
        session.consumer = asyncio.get_running_loop().create_task(
            session.consume()
        )
        await session.send(FRAME_ACK, {
            "stream": stream_id,
            "resume_epoch": session.resume_epoch,
            "token": token,
        })
        return session

    async def _pump(
        self, session: StreamSession, reader: asyncio.StreamReader
    ) -> None:
        """The read loop: frames in, bounded queue out."""
        config = self.config
        loop = asyncio.get_running_loop()
        stop = loop.create_task(session.stop_event.wait())
        try:
            while not session.ended:
                if session.stopped is None:
                    read = loop.create_task(
                        read_frame(reader, config.idle_timeout)
                    )
                    await asyncio.wait(
                        {read, stop}, return_when=asyncio.FIRST_COMPLETED
                    )
                    if not read.done():
                        read.cancel()
                        try:
                            await read
                        except (asyncio.CancelledError, Exception):
                            pass
                        frame = None
                    else:
                        frame = read.result()  # re-raises read errors
                if session.stopped is not None:
                    raise _SessionError(
                        session.stopped,
                        "stream shed under overload; reconnect to resume"
                        if session.stopped == "shed"
                        else "daemon is draining; reconnect to resume",
                    )
                if frame is None:
                    raise ConnectionResetError("producer disconnected")
                ftype, payload = frame
                self.count("bytes_ingested", HEADER_SIZE + len(payload))
                if ftype == FRAME_EPOCH:
                    lid = session.next_epoch
                    row = session.handle_epoch(payload)
                    if session.queue.full():
                        # The await below blocks the read loop -- that
                        # *is* the backpressure; count the stall.
                        self.count("backpressure_stalls")
                    await session.queue.put((lid, row))
                    self.note_queued(session)
                elif ftype == FRAME_END:
                    session.handle_end(payload)
                else:
                    raise _SessionError(
                        "protocol",
                        f"unexpected frame type 0x{ftype:02x} mid-stream",
                    )
        finally:
            stop.cancel()

    async def _complete(self, session: StreamSession) -> None:
        """END received: finish the engine, send the REPORT."""
        await session.queue.put(None)
        try:
            await session.consumer
        except Exception as exc:
            raise _SessionError(
                "internal", f"analysis failed: {exc}"
            ) from exc
        report = await session.engine.report(
            session.stream_id, session.hello
        )
        await session.send(FRAME_REPORT, report)
        path = session.checkpoint_path
        if path is not None and os.path.exists(path):
            os.unlink(path)  # the run is complete; nothing to resume
        self.count("streams_completed")
        self.emit(
            "completed",
            stream=session.stream_id,
            epochs=session.next_epoch,
            flags=len(report.get("errors", report.get("races", []))),
        )

    async def _fail_session(
        self,
        session: Optional[StreamSession],
        writer: asyncio.StreamWriter,
        code: Optional[str],
        message: str,
        **fields: Any,
    ) -> None:
        """Contain one session's failure: stop its consumer, fold what
        is queued, checkpoint at the epoch boundary, tell the producer
        (when the socket still works), and count it."""
        if session is not None:
            self.count("streams_failed")
            self.emit(
                "failed",
                stream=session.stream_id,
                code=code or "disconnect",
                epoch=session.next_epoch,
            )
            if session.consumer is not None:
                session.consumer.cancel()
                try:
                    await session.consumer
                except (asyncio.CancelledError, Exception):
                    pass
            try:
                await session.drain_queue()
                await session.save_checkpoint_now()
            except Exception:
                # A failed final checkpoint degrades resume to the last
                # periodic snapshot; it must not mask the error path.
                pass
        if code is not None:
            payload = error_payload(code, message, **fields)
            if session is not None:
                payload.setdefault("token", session.token)
                payload.setdefault(
                    "resume_epoch",
                    session.engine.next_to_receive
                    if session.engine is not None else 0,
                )
            try:
                writer.write(encode_json_frame(FRAME_ERROR, payload))
                await writer.drain()
            except (ConnectionError, BrokenPipeError):
                pass


class ServerThread:
    """A daemon on a background thread, for tests and in-process use.

    The event loop (sockets, sessions, recorder) runs entirely on the
    background thread; :meth:`stop` requests a drain from the caller's
    thread and joins.  Context-manager form guarantees the join.
    """

    def __init__(
        self, config: ServeConfig, recorder: Recorder = NULL_RECORDER
    ) -> None:
        self.server = ReproServer(config, recorder)
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    @property
    def address(self) -> Tuple[str, Any]:
        return self.server.address

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.server.wait_done()

    def stop(self) -> None:
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(), self._loop
        )
        future.result(timeout=60)
        self._thread.join(timeout=60)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
