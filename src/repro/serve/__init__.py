"""Butterfly analysis as a service: the ``repro serve`` daemon, the
``repro push`` producer client, and the framed wire protocol between
them.

See ``docs/serving.md`` for the protocol, the backpressure model, the
overload degradation ladder, and the crash/drain recovery story.
"""

from repro.serve.client import (
    RETRYABLE_CODES,
    ServeErrorFrame,
    StreamClient,
    parse_address,
    push_trace,
)
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME,
    ProtocolError,
    build_report,
    format_report,
    make_hello,
    resume_token,
)
from repro.serve.server import (
    ReproServer,
    ServeConfig,
    ServerThread,
    StreamSession,
    make_guard,
)
from repro.serve.shards import SHARD_BACKEND_CHOICES

__all__ = [
    "ERROR_CODES",
    "MAX_FRAME",
    "SHARD_BACKEND_CHOICES",
    "ProtocolError",
    "RETRYABLE_CODES",
    "ReproServer",
    "ServeConfig",
    "ServeErrorFrame",
    "ServerThread",
    "StreamClient",
    "StreamSession",
    "build_report",
    "format_report",
    "make_guard",
    "make_hello",
    "parse_address",
    "push_trace",
    "resume_token",
]
