"""The serve wire protocol: length-prefixed frames over a byte stream.

``repro serve`` accepts many concurrent version-2 trace streams over
TCP or Unix sockets.  Each connection carries one stream session:

1. client sends ``HELLO`` (stream identity + shape + optional resume
   token);
2. server answers ``ACK`` (the epoch to start/resume from, plus the
   stream's deterministic resume token);
3. client sends one ``EPOCH`` frame per epoch, in order, starting at
   the acknowledged epoch -- each payload is exactly one version-2
   epoch record (the same JSON line ``dump_stream`` writes), so a
   stream file can be pushed without re-encoding;
4. client closes with ``END`` (the version-2 footer);
5. server answers ``REPORT`` (the stream's error report, work
   counters, and window peak -- bit-identical to what offline ``repro
   check`` computes over the same trace) or ``ERROR``.

Framing is deliberately dumb: a 1-byte frame type, a 4-byte big-endian
payload length, then the payload (UTF-8 JSON).  Dumb framing is what
makes the transport an explicit *error source*: a frame whose length
prefix promises bytes that never arrive is a truncation, a payload
that fails JSON/shape validation is corruption, and both must be
contained to the one stream that sent them (see
``docs/serving.md``).  Payloads above :data:`MAX_FRAME` are rejected
before buffering, so a corrupt length prefix cannot balloon daemon
memory.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError

# -- frame types ------------------------------------------------------------

FRAME_HELLO = 0x01
FRAME_EPOCH = 0x02
FRAME_END = 0x03
FRAME_ACK = 0x81
FRAME_REPORT = 0x82
FRAME_ERROR = 0x83

FRAME_NAMES = {
    FRAME_HELLO: "HELLO",
    FRAME_EPOCH: "EPOCH",
    FRAME_END: "END",
    FRAME_ACK: "ACK",
    FRAME_REPORT: "REPORT",
    FRAME_ERROR: "ERROR",
}

#: Hard per-frame payload cap: one epoch record for every thread.  A
#: length prefix above this is treated as corruption, not a request to
#: allocate.
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">BI")

PROTOCOL_FORMAT = "repro-serve"
PROTOCOL_VERSION = 1

#: Machine-readable ``ERROR`` frame codes (``docs/serving.md``).
ERROR_CODES = (
    "busy",       # refuse-connects rung of the overload ladder
    "shed",       # shed-newest rung: reconnect later and resume
    "timeout",    # producer stalled past the idle timeout
    "protocol",   # malformed frame, bad epoch record, bad footer
    "token",      # resume token does not match the stream identity
    "drain",      # daemon is draining; reconnect to a new instance
    "internal",   # analysis failure; the stream cannot continue
)


class ProtocolError(ReproError):
    """A violation of the framing or session contract."""


def encode_frame(ftype: int, payload: bytes) -> bytes:
    """One frame as bytes (header + payload)."""
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte cap"
        )
    return _HEADER.pack(ftype, len(payload)) + payload


def encode_json_frame(ftype: int, record: Dict[str, Any]) -> bytes:
    return encode_frame(
        ftype, json.dumps(record, separators=(",", ":")).encode("utf-8")
    )


def decode_header(header: bytes) -> Tuple[int, int]:
    """``(frame type, payload length)`` from the 5 header bytes."""
    ftype, length = _HEADER.unpack(header)
    if ftype not in FRAME_NAMES:
        raise ProtocolError(f"unknown frame type 0x{ftype:02x}")
    if length > MAX_FRAME:
        raise ProtocolError(
            f"{FRAME_NAMES[ftype]} frame claims {length} bytes "
            f"(cap {MAX_FRAME}); treating as corruption"
        )
    return ftype, length


HEADER_SIZE = _HEADER.size


def decode_json_payload(ftype: int, payload: bytes) -> Dict[str, Any]:
    """Parse a frame payload as a JSON object, or raise ProtocolError."""
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(
            f"{FRAME_NAMES.get(ftype, hex(ftype))} frame payload is not "
            f"valid JSON: {exc}"
        ) from None
    if not isinstance(record, dict):
        raise ProtocolError(
            f"{FRAME_NAMES.get(ftype, hex(ftype))} frame payload must be "
            f"a JSON object, got {type(record).__name__}"
        )
    return record


# -- HELLO ------------------------------------------------------------------

LIFEGUARD_CHOICES = ("addrcheck", "race", "taintcheck")


def make_hello(
    stream_id: str,
    threads: int,
    epochs: int,
    preallocated,
    lifeguard: str = "addrcheck",
    token: Optional[str] = None,
) -> Dict[str, Any]:
    return {
        "format": PROTOCOL_FORMAT,
        "version": PROTOCOL_VERSION,
        "stream": stream_id,
        "threads": threads,
        "epochs": epochs,
        "preallocated": sorted(preallocated),
        "lifeguard": lifeguard,
        "token": token,
    }


def validate_hello(record: Dict[str, Any]) -> Dict[str, Any]:
    """Structural validation of a ``HELLO`` payload (server side)."""
    if record.get("format") != PROTOCOL_FORMAT:
        raise ProtocolError(
            f"HELLO is not a {PROTOCOL_FORMAT} greeting: "
            f"{record.get('format')!r}"
        )
    if record.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {record.get('version')!r} "
            f"(this daemon speaks {PROTOCOL_VERSION})"
        )
    stream = record.get("stream")
    if not isinstance(stream, str) or not stream or len(stream) > 256:
        raise ProtocolError(f"bad stream id {stream!r}")
    threads = record.get("threads")
    if not isinstance(threads, int) or threads < 1:
        raise ProtocolError(f"bad thread count {threads!r}")
    epochs = record.get("epochs")
    if not isinstance(epochs, int) or epochs < 0:
        raise ProtocolError(f"bad epoch count {epochs!r}")
    prealloc = record.get("preallocated")
    if not isinstance(prealloc, list) or not all(
        isinstance(loc, int) for loc in prealloc
    ):
        raise ProtocolError(f"bad preallocated set {prealloc!r}")
    lifeguard = record.get("lifeguard")
    if lifeguard not in LIFEGUARD_CHOICES:
        raise ProtocolError(
            f"unknown lifeguard {lifeguard!r} (choose from "
            f"{', '.join(LIFEGUARD_CHOICES)})"
        )
    token = record.get("token")
    if token is not None and not isinstance(token, str):
        raise ProtocolError(f"bad resume token {token!r}")
    return record


def resume_token(hello: Dict[str, Any]) -> str:
    """The stream's deterministic resume token.

    A pure function of the stream's *identity* (id, shape, lifeguard,
    preallocated set), so the client and the server -- and a client
    reconnecting to a restarted daemon -- all derive the same token
    independently.  Doubles as the checkpoint's filename stem: hex, so
    it is filesystem-safe regardless of what the stream id contains.
    """
    identity = {
        "stream": hello["stream"],
        "threads": hello["threads"],
        "epochs": hello["epochs"],
        "lifeguard": hello["lifeguard"],
        "preallocated": sorted(hello["preallocated"]),
    }
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def checkpoint_meta(hello: Dict[str, Any], token: str) -> Dict[str, Any]:
    """The per-stream checkpoint fingerprint (``Checkpoint.verify``)."""
    return {
        "serve_stream": hello["stream"],
        "threads": hello["threads"],
        "epochs": hello["epochs"],
        "lifeguard": hello["lifeguard"],
        "token": token,
    }


# -- REPORT -----------------------------------------------------------------


def build_report(stream_id: str, hello: Dict[str, Any], engine, guard,
                 boundaries: Optional[List[List[int]]] = None
                 ) -> Dict[str, Any]:
    """The end-of-stream report: everything ``repro check`` would print.

    Built from a finished engine/guard pair -- by the daemon after the
    last epoch folds, and by offline runs (``repro check`` on a
    version-2 trace goes through this same function), so the
    serve-vs-offline differential mode and the CI smoke job compare
    like with like.

    ``boundaries`` is the per-thread heartbeat cut stream the run
    *actually* analyzed with.  Adaptive sessions record it so an
    offline re-check can replay the identical partition
    (``ExplicitHeartbeat``) and must reproduce this report bit for bit;
    when the caller passes nothing, an engine that carries
    ``recorded_boundaries`` (the adaptive wrapper) still gets them into
    the report automatically.
    """
    if boundaries is None:
        boundaries = getattr(engine, "recorded_boundaries", None)
    report: Dict[str, Any] = {
        "stream": stream_id,
        "lifeguard": hello["lifeguard"],
        "threads": hello["threads"],
        "epochs": hello["epochs"],
        "stats": asdict(engine.stats),
        "window_high_water": engine.window_high_water,
        "window_bound": 3 * hello["threads"],
    }
    if boundaries is not None:
        report["boundaries"] = [list(cuts) for cuts in boundaries]
    if hello["lifeguard"] == "race":
        report["races"] = [
            {
                "kind": race.kind,
                "location": race.location,
                "body_ref": list(race.body_ref),
            }
            for race in guard.races
        ]
    else:
        report["errors"] = [
            {
                "kind": r.kind.value,
                "location": r.location,
                "ref": list(r.ref) if r.ref is not None else None,
                "block": list(r.block) if r.block is not None else None,
                "detail": r.detail,
            }
            for r in guard.errors.reports
        ]
    return report


def format_report(
    report: Dict[str, Any], label: str, limit: int = 10
) -> List[str]:
    """Render a report as the ``repro check`` streamed-result block.

    Both ``repro check --trace v2.jsonl`` and ``repro push`` print
    through here, so the two commands' outputs over the same trace can
    be diffed byte for byte -- the serve-smoke job's acceptance check.
    """
    threads = report["threads"]
    epochs = "?" if report["epochs"] is None else report["epochs"]
    lines = [f"trace: {label}, {threads} threads, {epochs} epochs (streamed)"]
    if report["lifeguard"] == "race":
        races = report["races"]
        lines.append(f"potential conflicts: {len(races)}")
        for race in races[:limit]:
            ref = tuple(race["body_ref"])
            lines.append(
                f"  {race['kind']:12s} loc=0x{race['location']:x} at {ref}"
            )
    else:
        errors = report["errors"]
        lines.append(f"flags: {len(errors)}")
        for err in errors[:limit]:
            ref = tuple(err["ref"]) if err["ref"] is not None else None
            lines.append(
                f"  {err['kind']:18s} loc=0x{err['location']:x} at {ref}"
            )
    lines.append(
        f"stream: peak resident summaries {report['window_high_water']} "
        f"(bound {report['window_bound']})"
    )
    return lines


def error_payload(code: str, message: str, **fields: Any) -> Dict[str, Any]:
    assert code in ERROR_CODES, code
    payload = {"code": code, "error": message}
    payload.update(fields)
    return payload
