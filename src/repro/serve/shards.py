"""Shard backends for the serve daemon: thread shards and process shards.

A *shard* is the unit of analysis concurrency in ``repro serve``:
streams hash onto shards, every ``feed``/``finish``/checkpoint call for
a stream runs on its shard, and streams on different shards make
progress independently.  This module provides two interchangeable shard
implementations behind one async interface:

``thread`` (the default)
    One single-thread executor per shard, exactly PR 8's architecture.
    Engines live in the daemon process; concurrency is bounded by the
    GIL, which is fine when streams are I/O-bound or few.

``process``
    One long-lived worker *process* per shard, owning its streams'
    :class:`~repro.core.framework.ButterflyEngine` objects.  The event
    loop ships each validated epoch row over a ``multiprocessing`` pipe
    -- columnar blocks pickle as raw little-endian column bytes (the
    PR-6 zero-object pickle graph), so nothing heavier than ``bytes``
    and ints crosses the boundary -- and gets back folded-epoch acks,
    end-of-stream reports, and checkpoint confirmations.  Analysis then
    runs on real cores while the loop process keeps owning sockets,
    queues, backpressure, and the recorder.

Both implementations expose per-stream :class:`StreamEngineHandle`
objects with identical semantics: engines are built (or restored from
the same on-disk checkpoints) by :func:`build_stream_engine`, feeds are
atomic at epoch boundaries, and the end-of-stream report is produced by
the same :func:`~repro.serve.protocol.build_report` either way -- which
is what lets the serve fuzz mode and the SIGKILL-resume drills assert
bit-identical reports across shard backends.

Worker lifetime is tied to the pipe: a worker blocks in ``recv`` and
exits on ``EOFError``, so a SIGKILLed daemon leaves no orphaned
analysis processes -- the dying parent's pipe end closes and every
worker unwinds.  A worker that dies on its own (or is killed) is
respawned on the next call; engines it held are rebuilt from their
checkpoints when the producers reconnect with their resume tokens.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from repro.core.framework import ButterflyEngine
from repro.core.stream import ShapeSource
from repro.core.tune import AdaptiveEngine, EpochController, SloConfig
from repro.errors import (
    AnalysisError,
    CheckpointError,
    ReproError,
    TraceError,
)
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.racecheck import ButterflyRaceCheck
from repro.lifeguards.taintcheck import ButterflyTaintCheck
from repro.resilience.checkpoint import Checkpointer, load_checkpoint
from repro.serve.protocol import build_report, checkpoint_meta

#: Shard backends accepted by ``ServeConfig.shard_backend`` / the CLI.
SHARD_BACKEND_CHOICES = ("thread", "process")


def make_guard(lifeguard: str, preallocated) -> Any:
    """Lifeguard factory shared by the daemon, workers, and offline CLI."""
    if lifeguard == "addrcheck":
        return ButterflyAddrCheck(initially_allocated=preallocated)
    if lifeguard == "taintcheck":
        return ButterflyTaintCheck()
    return ButterflyRaceCheck()


def stream_checkpoint_path(
    checkpoint_dir: Optional[str], token: str
) -> Optional[str]:
    """Where a stream's checkpoint lives (``None`` disables resume)."""
    if checkpoint_dir is None:
        return None
    return os.path.join(checkpoint_dir, f"{token}.ckpt")


def adaptive_params(config) -> Optional[Dict[str, Any]]:
    """The SLO knobs an adaptive session folds under, as a plain dict.

    A dict (not an :class:`~repro.core.tune.SloConfig`) so process
    shards can ship it over the worker pipe next to the hello;
    ``None`` means fixed producer-sized epochs (the default).
    """
    if not getattr(config, "adaptive_epoch", False):
        return None
    return {
        "target_fold_ms": config.slo_target_ms,
        "queue_high": config.slo_queue_high,
        "queue_low": config.slo_queue_low,
        "min_fold": config.slo_min_fold,
        "max_fold": config.slo_max_fold,
    }


def resume_position(engine) -> int:
    """The resume coordinate an ``ACK``/``ERROR`` frame advertises.

    Producer rows for an adaptive engine (its analysis-epoch counter
    runs on a different clock), the engine's own epoch counter -- the
    same thing -- otherwise.
    """
    position = getattr(engine, "resume_position", None)
    if position is not None:
        return position
    return engine._next_to_receive


def _feed_row(engine, lid: int, row, queue_depth: int) -> int:
    """One feed on the shard side; returns the post-feed resume
    position (the loop-side mirror tracks rollbacks exactly)."""
    note = getattr(engine, "note_queue_depth", None)
    if note is not None:
        note(queue_depth)
    engine.feed_blocks(lid, row)
    return resume_position(engine)


def _checkpoint_now(engine) -> None:
    """Force a snapshot through the engine's own checkpointer (no-op
    when checkpointing is off) -- the one forced-save path, so extra
    state (adaptive progress) always rides along."""
    checkpointer = engine._checkpointer
    if checkpointer is not None:
        checkpointer.save_now(engine)


def build_stream_engine(
    hello: Dict[str, Any],
    token: str,
    checkpoint_dir: Optional[str],
    checkpoint_every: int,
    backend: str,
    adaptive: Optional[Dict[str, Any]] = None,
) -> Tuple[Any, int]:
    """``(engine, resume_epoch)``: fresh, or restored from checkpoint.

    The one engine-construction path for both shard backends -- thread
    shards call it in the daemon process, process shards call it inside
    the worker -- so resume semantics (fingerprint verification,
    window restore, event-log numbering) cannot drift between them.

    ``adaptive`` (see :func:`adaptive_params`) wraps the engine in an
    :class:`~repro.core.tune.AdaptiveEngine`: the source drops its
    epoch count (the engine's completeness check runs on analysis
    epochs, whose count the controller decides; the *session* still
    enforces the producer-row count against the hello), checkpoints
    carry the adaptive progress as extra state, and the returned resume
    epoch is in producer rows.  A checkpoint written by the other mode
    is refused -- the two runs do not share a coordinate system.
    """
    path = stream_checkpoint_path(checkpoint_dir, token)
    meta = checkpoint_meta(hello, token)
    checkpoint = None
    if path is not None and os.path.exists(path):
        checkpoint = load_checkpoint(path)
        checkpoint.verify(meta)
        was_adaptive = (
            checkpoint.extra is not None
            and "rows_folded" in checkpoint.extra
        )
        if was_adaptive != (adaptive is not None):
            raise CheckpointError(
                f"checkpoint for stream {hello['stream']!r} was written "
                f"by an {'adaptive' if was_adaptive else 'fixed'}-epoch "
                f"daemon but this one is "
                f"{'adaptive' if adaptive is not None else 'fixed'}; "
                f"restart the daemon in the matching mode or delete the "
                f"checkpoint"
            )
    if checkpoint is not None:
        guard = checkpoint.analysis
    else:
        guard = make_guard(
            hello["lifeguard"], frozenset(hello["preallocated"])
        )
    engine = ButterflyEngine(guard, backend=backend)
    source = ShapeSource(
        hello["threads"],
        num_epochs=None if adaptive is not None else hello["epochs"],
        preallocated=frozenset(hello["preallocated"]),
    )
    engine.attach_source(source, resumed=checkpoint is not None)
    if checkpoint is not None:
        checkpoint.restore_into(engine)
    extra_state = None
    if adaptive is not None:
        controller = EpochController(SloConfig(**adaptive))
        engine = AdaptiveEngine(engine, controller, hello["threads"])
        if checkpoint is not None:
            engine.restore_extra(checkpoint.extra)
        extra_state = engine.extra_state
    resume_epoch = resume_position(engine) if checkpoint is not None else 0
    if path is not None:
        engine.enable_checkpoints(
            Checkpointer(
                path, meta, every=checkpoint_every, extra_state=extra_state
            )
        )
    return engine, resume_epoch


class StreamEngineHandle:
    """One stream's engine as seen from the event loop.

    The server never touches a :class:`ButterflyEngine` directly; it
    drives this handle, and the shard decides where the engine actually
    lives (same process for thread shards, a worker for process
    shards).  All coroutines run their work off the loop -- on the
    shard's single dispatch thread -- so per-stream epoch order and
    per-shard serialization hold identically across backends.
    """

    #: The epoch the engine resumed from (0 for a fresh run).
    resume_epoch: int = 0
    #: Mirror of the engine's resume position (producer rows; see
    #: :func:`resume_position`) -- the coordinate ``ERROR`` frames
    #: advertise.
    next_to_receive: int = 0

    async def feed(self, lid: int, row, queue_depth: int = 0) -> None:
        """Fold one epoch row.  ``queue_depth`` is the number of rows
        still queued behind this one -- the adaptive controller's
        backpressure signal; fixed engines ignore it."""
        raise NotImplementedError

    async def finish(self) -> None:
        raise NotImplementedError

    async def report(self, stream_id: str, hello: Dict[str, Any]) -> Dict:
        raise NotImplementedError

    async def save_checkpoint(self) -> None:
        """Force a snapshot now (no-op when checkpointing is off)."""
        raise NotImplementedError

    async def close(self) -> None:
        """Release the engine's resources (never raises)."""
        raise NotImplementedError


# -- thread shards -----------------------------------------------------------


class ThreadShard:
    """PR 8's shard: a single-thread executor in the daemon process."""

    backend = "thread"

    def __init__(self, index: int) -> None:
        self.index = index
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-shard-{index}"
        )

    async def _run(self, fn, *args: Any) -> Any:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    async def open_stream(
        self, hello: Dict[str, Any], token: str, config
    ) -> "_ThreadStreamEngine":
        # Engine construction (including checkpoint load) stays on the
        # loop thread, as in PR 8: it happens once per handshake and
        # must finish before the ACK names the resume epoch.
        engine, resume_epoch = build_stream_engine(
            hello,
            token,
            config.checkpoint_dir,
            config.checkpoint_every,
            config.backend,
            adaptive=adaptive_params(config),
        )
        return _ThreadStreamEngine(self, engine, hello, token, resume_epoch)

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)


class _ThreadStreamEngine(StreamEngineHandle):
    def __init__(
        self,
        shard: ThreadShard,
        engine: ButterflyEngine,
        hello: Dict[str, Any],
        token: str,
        resume_epoch: int,
    ) -> None:
        self._shard = shard
        self._engine = engine
        self._hello = hello
        self._token = token
        self.resume_epoch = resume_epoch

    @property
    def next_to_receive(self) -> int:
        return resume_position(self._engine)

    async def feed(self, lid: int, row, queue_depth: int = 0) -> None:
        await self._shard._run(
            _feed_row, self._engine, lid, row, queue_depth
        )

    async def finish(self) -> None:
        await self._shard._run(self._engine.finish)

    async def report(self, stream_id: str, hello: Dict[str, Any]) -> Dict:
        return build_report(
            stream_id, hello, self._engine, self._engine.analysis
        )

    async def save_checkpoint(self) -> None:
        if self._engine._checkpointer is None:
            return
        await self._shard._run(_checkpoint_now, self._engine)

    async def close(self) -> None:
        self._engine.close()


# -- process shards ----------------------------------------------------------

#: Error kinds a worker reply may carry, mapped back onto the exception
#: types the server's session error paths dispatch on.
_ERROR_KINDS = {
    "checkpoint": CheckpointError,
    "trace": TraceError,
    "analysis": AnalysisError,
    "repro": ReproError,
}


def _error_kind(exc: BaseException) -> str:
    if isinstance(exc, CheckpointError):
        return "checkpoint"
    if isinstance(exc, TraceError):
        return "trace"
    if isinstance(exc, AnalysisError):
        return "analysis"
    if isinstance(exc, ReproError):
        return "repro"
    return "other"


def _worker_dispatch(
    engines: Dict[str, Tuple[Any, Optional[str], Dict]],
    command: str,
    *args: Any,
) -> Any:
    """Execute one command against the worker's engine table."""
    if command == "open":
        (token, hello, checkpoint_dir, checkpoint_every, backend,
         adaptive) = args
        stale = engines.pop(token, None)
        if stale is not None:
            stale[0].close()
        engine, resume_epoch = build_stream_engine(
            hello, token, checkpoint_dir, checkpoint_every, backend,
            adaptive=adaptive,
        )
        engines[token] = (
            engine,
            stream_checkpoint_path(checkpoint_dir, token),
            checkpoint_meta(hello, token),
        )
        return resume_epoch
    token = args[0]
    entry = engines.get(token)
    if entry is None:
        # The worker was respawned after a crash and lost this engine;
        # the session fails (resumably -- the checkpoint is on disk).
        raise AnalysisError(
            f"shard worker holds no engine for token {token!r} "
            f"(worker restarted?); reconnect to resume"
        )
    engine, path, meta = entry
    if command == "feed":
        _token, lid, row, queue_depth = args
        return _feed_row(engine, lid, row, queue_depth)
    if command == "finish":
        engine.finish()
        return None
    if command == "report":
        _token, stream_id, hello = args
        return build_report(stream_id, hello, engine, engine.analysis)
    if command == "checkpoint":
        _checkpoint_now(engine)
        return None
    if command == "close":
        engine.close()
        del engines[token]
        return None
    raise ReproError(f"unknown shard command {command!r}")


def _shard_worker_main(conn) -> None:
    """The worker process: serve pipe commands until EOF or ``stop``.

    EOF is the parent-death signal: when the daemon dies -- SIGKILL
    included -- its pipe end closes and the blocking ``recv`` raises
    ``EOFError``, so workers can never outlive the daemon.
    """
    engines: Dict[str, Tuple[Any, Optional[str], Dict]] = {}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                break
            command = message[0]
            if command == "stop":
                break
            try:
                result = _worker_dispatch(engines, *message)
            except BaseException as exc:  # contained: reply, keep serving
                reply = ("err", _error_kind(exc), f"{exc}")
            else:
                reply = ("ok", None, result)
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        for engine, _path, _meta in engines.values():
            engine.close()
        try:
            conn.close()
        except OSError:
            pass


class ProcessShard:
    """A shard whose engines live in a long-lived worker process.

    One dispatch thread per shard serializes pipe access (send a
    command, block for the reply), preserving exactly the ordering the
    thread shard's single executor gives.  The worker is spawned
    lazily on first use -- a daemon with many shards but few streams
    pays only for the workers it routes to -- and respawned if found
    dead, with lost engines rebuilt from checkpoints on reconnect.
    """

    backend = "process"

    #: Seconds to wait for a worker to exit on shutdown before
    #: escalating to terminate().
    JOIN_TIMEOUT = 10.0

    def __init__(self, index: int) -> None:
        self.index = index
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-shard-{index}"
        )
        self._ctx = multiprocessing.get_context("spawn")
        self._proc = None
        self._conn = None

    # -- dispatch-thread side ------------------------------------------

    def _ensure_worker(self) -> None:
        if self._proc is not None and self._proc.is_alive():
            return
        self._discard_worker()
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn,),
            name=f"repro-shard-worker-{self.index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the worker owns its end now
        self._proc, self._conn = proc, parent_conn

    def _discard_worker(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
        if self._proc is not None and self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(self.JOIN_TIMEOUT)
        self._proc = None
        self._conn = None

    def _call(self, command: str, *args: Any) -> Any:
        self._ensure_worker()
        try:
            self._conn.send((command, *args))
            status, kind, value = self._conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            # The worker died mid-call.  Drop it so the next call gets
            # a fresh one; this stream's session fails resumably.
            self._discard_worker()
            raise ReproError(
                f"shard {self.index} worker died during {command!r}: "
                f"{type(exc).__name__}"
            ) from None
        if status == "ok":
            return value
        raise _ERROR_KINDS.get(kind, ReproError)(value)

    def _stop_worker(self) -> None:
        if self._conn is not None:
            try:
                self._conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        if self._proc is not None:
            self._proc.join(self.JOIN_TIMEOUT)
            if self._proc.is_alive():  # pragma: no cover - stuck worker
                self._proc.terminate()
                self._proc.join(self.JOIN_TIMEOUT)
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
        self._proc = None
        self._conn = None

    # -- loop side ------------------------------------------------------

    async def call(self, command: str, *args: Any) -> Any:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, lambda: self._call(command, *args)
        )

    async def open_stream(
        self, hello: Dict[str, Any], token: str, config
    ) -> "_ProcessStreamEngine":
        resume_epoch = await self.call(
            "open",
            token,
            hello,
            config.checkpoint_dir,
            config.checkpoint_every,
            config.backend,
            adaptive_params(config),
        )
        return _ProcessStreamEngine(self, token, resume_epoch)

    def shutdown(self, wait: bool = True) -> None:
        if wait:
            self._executor.submit(self._stop_worker).result()
            self._executor.shutdown(wait=True)
        else:  # pragma: no cover - only the wait path is exercised
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._discard_worker()


class _ProcessStreamEngine(StreamEngineHandle):
    def __init__(
        self, shard: ProcessShard, token: str, resume_epoch: int
    ) -> None:
        self._shard = shard
        self._token = token
        self.resume_epoch = resume_epoch
        self.next_to_receive = resume_epoch
        self._closed = False

    async def feed(self, lid: int, row, queue_depth: int = 0) -> None:
        # The reply carries the worker engine's post-feed progress, so
        # the loop-side mirror tracks rollbacks exactly: a failed feed
        # raises and leaves next_to_receive at the epoch boundary.
        self.next_to_receive = await self._shard.call(
            "feed", self._token, lid, row, queue_depth
        )

    async def finish(self) -> None:
        await self._shard.call("finish", self._token)

    async def report(self, stream_id: str, hello: Dict[str, Any]) -> Dict:
        return await self._shard.call(
            "report", self._token, stream_id, hello
        )

    async def save_checkpoint(self) -> None:
        await self._shard.call("checkpoint", self._token)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            await self._shard.call("close", self._token)
        except Exception:
            # A dead worker has nothing to close; resume covers it.
            pass


def make_shards(shard_backend: str, workers: int):
    """The daemon's shard list for a validated backend name."""
    if shard_backend == "thread":
        return [ThreadShard(i) for i in range(workers)]
    if shard_backend == "process":
        return [ProcessShard(i) for i in range(workers)]
    raise ReproError(
        f"unknown shard backend {shard_backend!r} "
        f"(choose from {', '.join(SHARD_BACKEND_CHOICES)})"
    )
