"""Differential verification: adversarial fuzzing with trace shrinking.

The paper's guarantees are relational -- butterfly vs. sequential over
all valid orderings, optimized vs. reference, parallel vs. serial,
faulted vs. clean, resumed vs. uninterrupted.  This package turns each
relation into an executable check: a seeded generator produces
adversarial traces, a harness runs every mode pair and demands
agreement, and a delta-debugging shrinker reduces any disagreement to a
minimal JSON repro under ``repro-failures/``.  The ``repro fuzz`` CLI
subcommand (and the CI ``fuzz-smoke`` job) drive it end to end; see
``docs/verification.md``.
"""

from repro.verify.fuzz import (
    DEFAULT_TRIALS,
    FuzzFinding,
    FuzzReport,
    run_fuzz,
)
from repro.verify.generator import (
    FAMILIES,
    AdversarialCaseGenerator,
    TraceCase,
)
from repro.verify.harness import (
    MODE_NAMES,
    DifferentialHarness,
    Disagreement,
)
from repro.verify.mutants import MUTANTS, apply_mutant
from repro.verify.shrink import load_repro, shrink_case, write_repro

__all__ = [
    "AdversarialCaseGenerator",
    "DEFAULT_TRIALS",
    "DifferentialHarness",
    "Disagreement",
    "FAMILIES",
    "FuzzFinding",
    "FuzzReport",
    "MODE_NAMES",
    "MUTANTS",
    "TraceCase",
    "apply_mutant",
    "load_repro",
    "run_fuzz",
    "shrink_case",
    "write_repro",
]
