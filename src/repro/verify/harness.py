"""The differential harness: every execution mode must agree.

Eight mode pairs, each an independent equivalence the paper (or this
codebase's own contracts) promises:

``orderings``
    Butterfly lifeguard vs. the sequential lifeguard over *every*
    enumerated valid ordering -- the zero-false-negative invariant
    (Theorems 6.1/6.2).  Exponential, so it only runs on cases whose
    instruction count fits ``oracle_budget``.
``optref``
    Optimized (scanner/bitset) AddrCheck vs. the per-instruction
    reference implementation: bit-identical error reports.  TaintCheck
    pairs the precise configurations against their conservative
    ablations (sc vs. relaxed, two-phase vs. whole-window): the precise
    side must never flag something the conservative side misses.
``backends``
    Serial vs. threads execution: identical errors, stats, and
    normalized event logs (the ordered-commit determinism contract).
``faults``
    Supervised execution under deterministic crash/corrupt injection
    vs. a fault-free serial run: identical errors and stats (the
    resilience layer's exactly-once contract).
``resume``
    Checkpoint at an epoch boundary, abandon, resume -- vs. an
    uninterrupted run: identical errors, stats, and the truncated
    interrupted log + resumed log must equal the uninterrupted log
    after normalization.
``stream``
    The bounded-memory streaming pipeline vs. the materialized run:
    the case is round-tripped through an epoch-major (version 2)
    stream file and fed to the engine one epoch at a time; errors,
    stats, and normalized event logs must be bit-identical, and the
    engine's resident window must respect the three-epoch bound.
``columnar``
    Columnar-backed blocks -- and the vectorized scan kernels both
    AddrCheck and TaintCheck select on them -- vs. object-backed
    blocks with the per-``Instr`` kernel forced, on serial and
    concurrent backends: errors, stats and normalized event logs must
    be bit-identical.  This doubles as a losslessness proof of the
    columnar round trip, since the object side materializes
    ``block.instrs`` from the columns.
``serve``
    The ``repro serve`` daemon vs. the offline streaming pipeline: the
    case is written as a version 2 stream file, pushed over a Unix
    socket to a shared in-process daemon, and the daemon's end-of-
    stream report (errors, work counters, window peak) must be
    bit-identical to what ``run_source`` computes over the same file.
``serve_process``
    The same proof against a daemon running process shards
    (``shard_backend="process"``): the engine lives in a worker
    process and every epoch crosses a pipe as raw column bytes, and
    the report must still match the offline pipeline bit for bit.
    The transport, framing, queueing, and shard hand-off must be
    invisible in every output.

Each check returns ``None`` on agreement (or when inapplicable) and a
human-readable diagnosis string on disagreement; the diagnosis string
doubles as the shrinker's predicate signal.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.columnar import ColumnarBlock
from repro.core.epoch import Block, EpochPartition, partition_from_boundaries
from repro.core.framework import ButterflyEngine
from repro.core.ordering import all_valid_orderings
from repro.core.stream import EpochSource
from repro.errors import ReproError, ResilienceError
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.sequential import true_errors_under_any_ordering
from repro.lifeguards.taintcheck import ButterflyTaintCheck
from repro.obs.recorder import NULL_RECORDER, Recorder, normalize_events
from repro.resilience.checkpoint import Checkpointer, load_checkpoint
from repro.resilience.faults import FaultPlan
from repro.resilience.supervisor import RetryPolicy, SupervisedBackend
from repro.serve import (
    ServeConfig,
    ServerThread,
    build_report,
    make_guard,
    make_hello,
    push_trace,
)
from repro.trace.serialize import iter_load, save_stream_file, stream_header
from repro.verify.generator import TraceCase

#: The full mode-pair matrix, in the order ``repro fuzz`` reports it.
MODE_NAMES = (
    "orderings",
    "optref",
    "backends",
    "faults",
    "resume",
    "stream",
    "columnar",
    "serve",
    "serve_process",
    "adaptive",
)


class _ColumnarCaseSource(EpochSource):
    """A case's partition re-backed by columnar blocks, as a source."""

    def __init__(self, partition: EpochPartition) -> None:
        self._partition = partition

    @property
    def num_threads(self) -> int:
        return self._partition.num_threads

    @property
    def num_epochs(self) -> int:
        return self._partition.num_epochs

    @property
    def preallocated(self) -> frozenset:
        return frozenset(self._partition.program.preallocated)

    def epochs(self, start: int = 0):
        for lid in range(start, self._partition.num_epochs):
            yield [
                Block(
                    b.lid, b.tid, b.start,
                    columns=ColumnarBlock.from_instrs(b.instrs),
                )
                for b in self._partition.epoch_blocks(lid)
            ]


class Disagreement:
    """One surviving difference between two modes on one case."""

    def __init__(self, mode: str, case: TraceCase, detail: str) -> None:
        self.mode = mode
        self.case = case
        self.detail = detail

    def __repr__(self) -> str:
        return f"Disagreement(mode={self.mode!r}, detail={self.detail!r})"


def _guards_for(case: TraceCase, **kwargs):
    if case.lifeguard == "addrcheck":
        return ButterflyAddrCheck(
            initially_allocated=case.preallocated, **kwargs
        )
    return ButterflyTaintCheck(**kwargs)


def _run(
    case: TraceCase,
    guard,
    backend="serial",
    recorder: Recorder = NULL_RECORDER,
):
    partition = case.partition()
    engine = ButterflyEngine(guard, backend=backend, recorder=recorder)
    try:
        engine.run(partition)
    finally:
        engine.close()
    return engine, partition


def _identities(guard) -> List[Tuple]:
    return [r.identity() for r in guard.errors]


def _flag_sets(partition, guard):
    """(ref, loc) flags plus block-granularity flagged locations."""
    flags = set()
    block_locs = set()
    for r in guard.errors:
        if r.ref is not None:
            flags.add((r.ref, r.location))
        if r.block is not None:
            block_locs.add(r.location)
    return flags, block_locs


class DifferentialHarness:
    """Runs a :class:`TraceCase` through the mode-pair matrix."""

    def __init__(
        self,
        modes: Sequence[str] = MODE_NAMES,
        oracle_budget: int = 9,
        backend: str = "threads",
    ) -> None:
        unknown = [m for m in modes if m not in MODE_NAMES]
        if unknown:
            raise ValueError(
                f"unknown mode(s) {unknown}; choose from {MODE_NAMES}"
            )
        self.modes = tuple(modes)
        self.oracle_budget = oracle_budget
        self.backend = backend
        #: mode -> number of cases actually checked.
        self.checks_run: Dict[str, int] = {m: 0 for m in MODE_NAMES}
        #: mode -> number of cases skipped as inapplicable.
        self.skipped: Dict[str, int] = {m: 0 for m in MODE_NAMES}
        # The serve pairs' shared in-process daemons (one per shard
        # backend), created lazily on first use, torn down by close().
        self._serve_daemons: Dict[str, Any] = {}
        self._serve_dir: Optional[tempfile.TemporaryDirectory] = None
        self._serve_seq = 0

    def close(self) -> None:
        """Tear down the shared serve daemons (idempotent)."""
        for daemon in self._serve_daemons.values():
            daemon.stop()
        self._serve_daemons.clear()
        if self._serve_dir is not None:
            self._serve_dir.cleanup()
            self._serve_dir = None

    def __enter__(self) -> "DifferentialHarness":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- driving --------------------------------------------------------

    def run_case(self, case: TraceCase) -> List[Disagreement]:
        out = []
        for mode in self.modes:
            detail = self.check(case, mode)
            if detail is not None:
                out.append(Disagreement(mode, case, detail))
        return out

    def check(self, case: TraceCase, mode: str) -> Optional[str]:
        """Run one mode pair; ``None`` means agreement or inapplicable."""
        checker = getattr(self, f"check_{mode}")
        detail = checker(case)
        if detail is _SKIPPED:
            self.skipped[mode] += 1
            return None
        self.checks_run[mode] += 1
        return detail

    # -- mode pairs -----------------------------------------------------

    def check_orderings(self, case: TraceCase) -> Optional[str]:
        """Zero false negatives over every enumerated valid ordering.

        The oracle side runs through the prefix-memoized enumerator
        (consecutive orderings replay only their divergent suffix), so
        the exponential sweep stays off the fuzz campaign's critical
        path.
        """
        if case.total_instructions > self.oracle_budget:
            return _SKIPPED
        partition = case.partition()
        truth = true_errors_under_any_ordering(
            None,
            all_valid_orderings(partition),
            lifeguard=case.lifeguard,
            preallocated=case.preallocated,
            instr_of=partition.instr,
        )
        oracle = {
            (partition.global_ref_of(r.ref), r.location)
            for r in truth.values()
        }
        # Exact per-event coverage needs the idempotent filter off; the
        # filtered variant still must cover every erroneous location.
        precise = (
            {"use_idempotent_filter": False}
            if case.lifeguard == "addrcheck"
            else {}
        )
        guard = _guards_for(case, **precise)
        _run(case, guard)
        flags, block_locs = _flag_sets(partition, guard)
        for ref, loc in sorted(oracle):
            if (ref, loc) not in flags and loc not in block_locs:
                return (
                    f"butterfly missed an error the sequential lifeguard "
                    f"reports under some valid ordering: ref={ref} loc={loc}"
                )
        if case.lifeguard == "addrcheck":
            filtered = _guards_for(case)
            _run(case, filtered)
            f_flags, f_blocks = _flag_sets(partition, filtered)
            flagged_locs = {loc for _, loc in f_flags} | f_blocks
            for ref, loc in sorted(oracle):
                if loc not in flagged_locs:
                    return (
                        f"idempotent-filtered butterfly missed every flag "
                        f"for erroneous location {loc} (oracle ref {ref})"
                    )
        return None

    def check_optref(self, case: TraceCase) -> Optional[str]:
        """Optimized vs. reference / precise vs. conservative ablation."""
        if case.lifeguard == "addrcheck":
            opt = _guards_for(case, optimized=True)
            ref = _guards_for(case, optimized=False)
            _run(case, opt)
            _run(case, ref)
            a, b = _identities(opt), _identities(ref)
            if a != b:
                return (
                    f"optimized AddrCheck reported {len(a)} error(s), "
                    f"reference reported {len(b)}; first diff: "
                    f"{_first_diff(a, b)}"
                )
            return None
        # TaintCheck: the precise configuration must never flag an event
        # its conservative ablation misses (precision only ever removes
        # false positives, never adds flags).
        partition = case.partition()
        for precise_kw, loose_kw, name in (
            ({"mode": "sc"}, {"mode": "relaxed"}, "sc vs relaxed"),
            ({"two_phase": True}, {"two_phase": False},
             "two-phase vs whole-window"),
        ):
            precise = _guards_for(case, **precise_kw)
            loose = _guards_for(case, **loose_kw)
            _run(case, precise)
            _run(case, loose)
            p_flags, p_blocks = _flag_sets(partition, precise)
            l_flags, l_blocks = _flag_sets(partition, loose)
            extra = {
                (ref, loc)
                for ref, loc in p_flags
                if (ref, loc) not in l_flags and loc not in l_blocks
            }
            if extra:
                return (
                    f"TaintCheck precision inversion ({name}): precise "
                    f"config flagged {sorted(extra)} which the "
                    f"conservative config missed"
                )
        return None

    def check_backends(self, case: TraceCase) -> Optional[str]:
        """Serial vs. concurrent backend: bit-identical results."""
        runs = {}
        for backend in ("serial", self.backend):
            guard = _guards_for(case)
            rec = Recorder()
            engine, _ = _run(case, guard, backend=backend, recorder=rec)
            runs[backend] = (
                _identities(guard),
                engine.stats,
                normalize_events(rec.events),
            )
        serial, concurrent = runs["serial"], runs[self.backend]
        if serial[0] != concurrent[0]:
            return (
                f"backend divergence in errors: serial={len(serial[0])} "
                f"{self.backend}={len(concurrent[0])}; first diff: "
                f"{_first_diff(serial[0], concurrent[0])}"
            )
        if serial[1] != concurrent[1]:
            return (
                f"backend divergence in stats: serial={serial[1]} "
                f"{self.backend}={concurrent[1]}"
            )
        if serial[2] != concurrent[2]:
            return (
                "backend divergence in normalized event logs: "
                f"{_first_diff(serial[2], concurrent[2])}"
            )
        return None

    def check_faults(self, case: TraceCase) -> Optional[str]:
        """Fault-injected supervised run vs. fault-free serial run."""
        clean = _guards_for(case)
        clean_engine, _ = _run(case, clean)
        # Every case carries the same campaign seed, so seeding the
        # fault plan from it alone would roll identical fault dice for
        # every trial; digest the case content so each trial sees its
        # own crash/corrupt pattern (deterministically replayable).
        fault_seed = zlib.crc32(
            json.dumps(case.to_json(), sort_keys=True).encode()
        )
        plan = FaultPlan(crash=0.2, corrupt=0.2, seed=fault_seed)
        backend = SupervisedBackend(
            self.backend,
            # Zero backoff: retry delays protect production pools, but
            # here they only throttle the fuzz campaign's trial rate.
            policy=RetryPolicy(
                max_retries=4, task_timeout=10.0,
                backoff_base=0.0, backoff_max=0.0,
            ),
            plan=plan,
        )
        faulted = _guards_for(case)
        try:
            faulted_engine, _ = _run(case, faulted, backend=backend)
        except ResilienceError:
            # The injected faults exhausted the retry budget and the
            # supervisor gave up -- its documented contract, not a
            # divergence.  The pair is inapplicable for this case.
            return _SKIPPED
        finally:
            backend.close()
        if _identities(clean) != _identities(faulted):
            return (
                "fault-injected run diverged in errors: "
                f"{_first_diff(_identities(clean), _identities(faulted))}"
            )
        if clean_engine.stats != faulted_engine.stats:
            return (
                f"fault-injected run diverged in stats: "
                f"clean={clean_engine.stats} faulted={faulted_engine.stats}"
            )
        return None

    def check_resume(self, case: TraceCase) -> Optional[str]:
        """Checkpoint/abandon/resume vs. uninterrupted, including logs."""
        partition = case.partition()
        num_epochs = partition.num_epochs
        if num_epochs < 2:
            return _SKIPPED
        stop_after = max(1, num_epochs // 2)
        every = 2 if num_epochs >= 4 else 1

        # Uninterrupted reference run.
        full_guard = _guards_for(case)
        full_rec = Recorder()
        full_engine, _ = _run(case, full_guard, recorder=full_rec)

        with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
            path = os.path.join(tmp, "run.ckpt")
            # Interrupted run: feed through epoch ``stop_after``, then
            # abandon (the CLI's --stop-after-epoch drill, in-process).
            stopped_guard = _guards_for(case)
            stopped_rec = Recorder()
            engine = ButterflyEngine(stopped_guard, recorder=stopped_rec)
            engine.enable_checkpoints(Checkpointer(path, every=every))
            try:
                engine.attach(partition)
                for lid in range(stop_after + 1):
                    engine.feed_epoch(lid)
            finally:
                engine.close()
            if not os.path.exists(path):
                return _SKIPPED  # no epoch committed before the stop
            checkpoint = load_checkpoint(path)
            boundary = checkpoint.events_emitted
            prefix = [
                e for e in stopped_rec.events if e["seq"] <= boundary
            ]

            # Resumed run around the checkpointed analysis.
            resumed_guard = checkpoint.analysis
            resumed_rec = Recorder()
            engine = ButterflyEngine(resumed_guard, recorder=resumed_rec)
            try:
                engine.attach(partition, resumed=True)
                checkpoint.restore_into(engine)
                for lid in range(checkpoint.next_epoch, num_epochs):
                    engine.feed_epoch(lid)
                engine.finish()
                resumed_stats = engine.stats
            finally:
                engine.close()

        if _identities(full_guard) != _identities(resumed_guard):
            return (
                "resumed run diverged in errors: "
                f"{_first_diff(_identities(full_guard), _identities(resumed_guard))}"
            )
        if full_engine.stats != resumed_stats:
            return (
                f"resumed run diverged in stats: full={full_engine.stats} "
                f"resumed={resumed_stats}"
            )
        stitched = normalize_events(prefix + resumed_rec.events)
        reference = normalize_events(full_rec.events)
        if stitched != reference:
            return (
                "resumed event log is not the suffix of the uninterrupted "
                f"log: stitched has {len(stitched)} events, uninterrupted "
                f"has {len(reference)}; first diff: "
                f"{_first_diff(stitched, reference)}"
            )
        return None

    def check_stream(self, case: TraceCase) -> Optional[str]:
        """Stream-vs-materialized: the bounded-memory pipeline must be
        invisible in every output."""
        mat_guard = _guards_for(case)
        mat_rec = Recorder()
        mat_engine, _ = _run(case, mat_guard, recorder=mat_rec)

        stream_guard = _guards_for(case)
        stream_rec = Recorder()
        engine = ButterflyEngine(stream_guard, recorder=stream_rec)
        with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
            path = os.path.join(tmp, "case.stream.jsonl")
            save_stream_file(case.partition(), path)
            try:
                engine.run_source(iter_load(path))
            finally:
                engine.close()

        if _identities(mat_guard) != _identities(stream_guard):
            return (
                "streamed run diverged in errors: "
                f"{_first_diff(_identities(mat_guard), _identities(stream_guard))}"
            )
        if mat_engine.stats != engine.stats:
            return (
                f"streamed run diverged in stats: "
                f"materialized={mat_engine.stats} streamed={engine.stats}"
            )
        mat_events = normalize_events(mat_rec.events)
        stream_events = normalize_events(stream_rec.events)
        if mat_events != stream_events:
            return (
                "streamed run diverged in normalized event logs: "
                f"{_first_diff(mat_events, stream_events)}"
            )
        bound = 3 * case.num_threads
        if engine.window_high_water > bound:
            return (
                f"streamed run violated the window bound: peak "
                f"{engine.window_high_water} resident summaries > {bound}"
            )
        return None

    def check_columnar(self, case: TraceCase) -> Optional[str]:
        """Columnar-backed blocks (vector kernel) vs. object-backed
        blocks (per-``Instr`` kernel), serial and concurrent."""
        obj_guard = _guards_for(case, use_columnar_kernel=False)
        obj_rec = Recorder()
        obj_engine, _ = _run(case, obj_guard, recorder=obj_rec)
        ref_ids = _identities(obj_guard)
        ref_events = normalize_events(obj_rec.events)

        for backend in ("serial", self.backend):
            col_guard = _guards_for(case)
            col_rec = Recorder()
            engine = ButterflyEngine(
                col_guard, backend=backend, recorder=col_rec
            )
            try:
                engine.run_source(_ColumnarCaseSource(case.partition()))
            finally:
                engine.close()
            if _identities(col_guard) != ref_ids:
                return (
                    f"columnar run ({backend}) diverged in errors: "
                    f"{_first_diff(ref_ids, _identities(col_guard))}"
                )
            if engine.stats != obj_engine.stats:
                return (
                    f"columnar run ({backend}) diverged in stats: "
                    f"object={obj_engine.stats} columnar={engine.stats}"
                )
            col_events = normalize_events(col_rec.events)
            if col_events != ref_events:
                return (
                    f"columnar run ({backend}) diverged in normalized "
                    f"event logs: {_first_diff(ref_events, col_events)}"
                )
        return None

    def _serve_address(
        self, shard_backend: str = "thread", adaptive: bool = False
    ):
        """The shared in-process daemon's address, starting it lazily.

        One daemon per shard backend (plus one adaptive-epoch daemon)
        serves the whole campaign (the cost of a thread, an event
        loop, and a shard pool per case would dominate the fuzz rate);
        every case pushes under a fresh stream id, so sessions never
        collide.  Checkpointing stays off -- each push is a complete
        one-shot delivery and the resume pair has its own dedicated
        tests.  The adaptive daemon pins the controller's fold factor
        at 3 (min == max) so the recorded cut stream is a
        deterministic function of the case -- shrinking a disagreement
        must replay it exactly.
        """
        key = "adaptive" if adaptive else shard_backend
        daemon = self._serve_daemons.get(key)
        if daemon is None:
            if self._serve_dir is None:
                self._serve_dir = tempfile.TemporaryDirectory(
                    prefix="repro-verify-serve-"
                )
            daemon = ServerThread(
                ServeConfig(
                    unix_path=os.path.join(
                        self._serve_dir.name, f"serve-{key}.sock"
                    ),
                    queue_depth=2,
                    shard_backend=shard_backend,
                    adaptive_epoch=adaptive,
                    slo_min_fold=3 if adaptive else 1,
                    slo_max_fold=3 if adaptive else 64,
                )
            )
            daemon.start()
            self._serve_daemons[key] = daemon
        return daemon.address

    def check_serve(self, case: TraceCase) -> Optional[str]:
        """Daemon-ingested stream vs. the offline streaming pipeline:
        the wire must be invisible in the end-of-stream report."""
        return self._check_serve(case, "thread")

    def check_serve_process(self, case: TraceCase) -> Optional[str]:
        """The same wire-invisibility proof under process shards: the
        engine lives in a worker process, epochs cross a pipe as raw
        column bytes, and the report must *still* be bit-identical to
        the offline pipeline's."""
        return self._check_serve(case, "process")

    def _check_serve(
        self, case: TraceCase, shard_backend: str
    ) -> Optional[str]:
        self._serve_seq += 1
        stream_id = f"case-{shard_backend}-{self._serve_seq}"
        with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
            path = os.path.join(tmp, "case.stream.jsonl")
            save_stream_file(case.partition(), path)
            with open(path) as fp:
                header = stream_header(fp, path)

            # Offline side: the exact pipeline `repro check --trace`
            # runs, built from the file's own header so both sides see
            # byte-identical inputs.
            guard = make_guard(case.lifeguard, header["preallocated"])
            engine = ButterflyEngine(guard)
            try:
                engine.run_source(iter_load(path))
            finally:
                engine.close()
            hello = make_hello(
                stream_id,
                header["threads"],
                header["epochs"],
                header["preallocated"],
                case.lifeguard,
            )
            offline = json.loads(
                json.dumps(build_report(stream_id, hello, engine, guard))
            )

            try:
                served = push_trace(
                    self._serve_address(shard_backend),
                    path,
                    stream_id,
                    lifeguard=case.lifeguard,
                )
            except ReproError as exc:
                return f"serve push failed ({shard_backend} shards): {exc}"

        if served != offline:
            for key in sorted(set(served) | set(offline)):
                if served.get(key) != offline.get(key):
                    return (
                        f"serve daemon diverged from offline run in "
                        f"{key!r}: offline={offline.get(key)!r} "
                        f"served={served.get(key)!r}"
                    )
        if served["window_high_water"] > served["window_bound"]:
            return (
                f"served stream violated the window bound: peak "
                f"{served['window_high_water']} resident summaries > "
                f"{served['window_bound']}"
            )
        return None

    def check_adaptive(self, case: TraceCase) -> Optional[str]:
        """Adaptive-epoch serve vs. an offline replay of its recorded
        cuts.

        The adaptive daemon coalesces producer epochs online and its
        REPORT carries the per-thread boundary stream it *actually*
        analyzed.  An offline engine run over exactly those cuts
        (``partition_from_boundaries``) must reproduce the report bit
        for bit -- the adaptive run is only trustworthy if it is a
        deterministic re-partitioning, not a different analysis.
        """
        self._serve_seq += 1
        stream_id = f"case-adaptive-{self._serve_seq}"
        with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
            path = os.path.join(tmp, "case.stream.jsonl")
            save_stream_file(case.partition(), path)
            with open(path) as fp:
                header = stream_header(fp, path)
            try:
                served = push_trace(
                    self._serve_address("thread", adaptive=True),
                    path,
                    stream_id,
                    lifeguard=case.lifeguard,
                )
            except ReproError as exc:
                return f"adaptive serve push failed: {exc}"
        boundaries = served.get("boundaries")
        if boundaries is None:
            return "adaptive REPORT carried no recorded boundaries"
        try:
            replay = partition_from_boundaries(
                case.program(), [list(cuts) for cuts in boundaries]
            )
        except ReproError as exc:
            return (
                f"recorded boundaries do not partition the trace: {exc}"
            )
        guard = make_guard(case.lifeguard, header["preallocated"])
        engine = ButterflyEngine(guard)
        try:
            engine.run(replay)
        finally:
            engine.close()
        hello = make_hello(
            stream_id,
            header["threads"],
            header["epochs"],
            header["preallocated"],
            case.lifeguard,
        )
        offline = json.loads(json.dumps(build_report(
            stream_id, hello, engine, guard,
            boundaries=replay.boundaries,
        )))
        if served != offline:
            for key in sorted(set(served) | set(offline)):
                if served.get(key) != offline.get(key):
                    return (
                        f"adaptive serve diverged from the boundary "
                        f"replay in {key!r}: "
                        f"replay={offline.get(key)!r} "
                        f"served={served.get(key)!r}"
                    )
        return None


#: Sentinel a mode check returns when the case doesn't apply to it.
_SKIPPED = "__skipped__"


def _first_diff(a: List, b: List) -> str:
    for i in range(max(len(a), len(b))):
        x = a[i] if i < len(a) else "<missing>"
        y = b[i] if i < len(b) else "<missing>"
        if x != y:
            return f"at index {i}: {x!r} != {y!r}"
    return "<equal>"
