"""Deliberate-bug mutants: proof the harness actually catches things.

A differential fuzzer that has never failed proves nothing -- maybe the
modes agree, maybe the checks are vacuous.  Each mutant here reverts
one shipped bugfix (or plants a classic soundness hole) behind a
context manager; the self-tests in ``tests/verify/`` assert that with
the mutant active the fuzzer finds a disagreement and shrinks it to a
tiny repro, and ``repro fuzz --mutant <name>`` runs the same drill from
the CLI.

Mutants monkeypatch module attributes and restore them on exit, so they
must never be active concurrently with real analysis work.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, Iterator

from repro.errors import CheckpointError


@contextlib.contextmanager
def resume_event_replay() -> Iterator[None]:
    """Revert the resume event-log dedup fix.

    The pre-fix behavior: ``attach`` emits a second ``run.attach`` on
    resume and ``restore_into`` leaves the recorder's sequence at zero,
    so a resumed run's log restarts numbering and re-covers completed
    epochs instead of continuing the uninterrupted log's suffix.
    """
    from repro.core.framework import ButterflyEngine
    from repro.resilience.checkpoint import Checkpoint

    orig_attach = ButterflyEngine.attach
    orig_restore = Checkpoint.restore_into

    def attach(self, partition, resumed=False):
        # Pre-fix: the resumed flag did not exist.
        return orig_attach(self, partition, resumed=False)

    def restore_into(self, engine):
        # The pre-fix implementation: engine state comes back, but the
        # recorder handoff (resume_from) is missing.
        state = self._state
        if engine.analysis is not state["analysis"]:
            raise CheckpointError(
                "engine must be constructed around the checkpoint's "
                "analysis object (engine.analysis is not it)"
            )
        engine.stats = state["stats"]
        engine._summaries = state["summaries"]
        engine._first_pass_errors = state["first_pass_errors"]
        engine._next_to_receive = state["next_to_receive"]
        engine._next_to_process = state["next_to_process"]
        engine._window = state["window"]
        engine.window_high_water = state["window_high_water"]

    ButterflyEngine.attach = attach
    Checkpoint.restore_into = restore_into
    try:
        yield
    finally:
        ButterflyEngine.attach = orig_attach
        Checkpoint.restore_into = orig_restore


@contextlib.contextmanager
def narrow_window() -> Iterator[None]:
    """Strip next-epoch wings from every butterfly.

    A classic unsound 'optimization': treating epoch ``l+1`` as
    strictly after epoch ``l`` shrinks every meet, but valid orderings
    let adjacent epochs interleave, so errors that only appear when a
    future wing runs first are silently missed.  The ``orderings`` mode
    pair exists precisely to catch this.
    """
    from repro.core import framework
    from repro.core.window import Butterfly

    orig = framework.butterflies_for_epoch

    def narrowed(partition, lid):
        out = []
        for bf in orig(partition, lid):
            wings = tuple(
                b for b in bf.wings
                if b.block_id[0] <= bf.body.block_id[0]
            )
            out.append(
                Butterfly(
                    body=bf.body, head=bf.head, tail=bf.tail, wings=wings
                )
            )
        return out

    framework.butterflies_for_epoch = narrowed
    try:
        yield
    finally:
        framework.butterflies_for_epoch = orig


#: Registry used by ``repro fuzz --mutant`` and the self-tests.
MUTANTS: Dict[str, Callable[[], "contextlib.AbstractContextManager"]] = {
    "resume-replay": resume_event_replay,
    "narrow-window": narrow_window,
}


def apply_mutant(name: str) -> "contextlib.AbstractContextManager":
    """Resolve a mutant by name (raising on unknown names)."""
    try:
        factory = MUTANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutant {name!r}; choose from {sorted(MUTANTS)}"
        ) from None
    return factory()
