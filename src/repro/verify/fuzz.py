"""The fuzz campaign driver behind ``repro fuzz``.

Generates adversarial cases, pushes each through the differential
harness, shrinks any disagreement to a minimal repro, and writes the
repro (plus its seed and diagnosis) to the artifact directory.  Every
trial emits ``verify.*`` provenance events through the recorder, so a
campaign's event log answers "what was actually tested?" -- trial
count, family mix, per-mode check/skip counts -- not just "did it
pass?".

Determinism: trial ``i`` of seed ``s`` is a pure function of ``(s, i)``
(see :mod:`repro.verify.generator`), so ``repro fuzz --seed S`` always
replays the identical campaign prefix regardless of the time budget
that ends it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.verify.generator import AdversarialCaseGenerator
from repro.verify.harness import MODE_NAMES, DifferentialHarness
from repro.verify.mutants import apply_mutant
from repro.verify.shrink import shrink_case, write_repro

#: Trial count when neither ``trials`` nor ``budget_seconds`` is given.
DEFAULT_TRIALS = 200

#: Stop a campaign early once this many disagreements were shrunk --
#: the harness is clearly broken (or a mutant is active); more repros
#: of the same breakage add noise, not signal.
MAX_DISAGREEMENTS = 10


@dataclass
class FuzzFinding:
    """One shrunk disagreement and where its artifact landed."""

    trial: int
    mode: str
    label: str
    detail: str
    artifact: str
    original_instructions: int
    shrunk_instructions: int


@dataclass
class FuzzReport:
    """Campaign summary (what ``repro fuzz`` prints and tests assert)."""

    seed: int
    trials: int
    elapsed_s: float
    modes: Sequence[str]
    checks_run: Dict[str, int]
    skipped: Dict[str, int]
    cases_by_label: Dict[str, int] = field(default_factory=dict)
    findings: List[FuzzFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def run_fuzz(
    seed: int,
    budget_seconds: Optional[float] = None,
    trials: Optional[int] = None,
    modes: Sequence[str] = MODE_NAMES,
    shrink: bool = True,
    failures_dir: str = "repro-failures",
    recorder: Recorder = NULL_RECORDER,
    oracle_budget: int = 9,
    backend: str = "threads",
    mutant: Optional[str] = None,
) -> FuzzReport:
    """Run one differential fuzz campaign; see the module docstring.

    ``mutant`` activates a deliberate bug from
    :mod:`repro.verify.mutants` for the whole campaign (self-test /
    demo mode); the campaign is then *expected* to find disagreements.
    """
    if budget_seconds is None and trials is None:
        trials = DEFAULT_TRIALS
    harness = DifferentialHarness(
        modes=modes, oracle_budget=oracle_budget, backend=backend
    )
    generator = AdversarialCaseGenerator(seed)
    report = FuzzReport(
        seed=seed,
        trials=0,
        elapsed_s=0.0,
        modes=tuple(modes),
        checks_run=harness.checks_run,
        skipped=harness.skipped,
    )
    guard_ctx = apply_mutant(mutant) if mutant else _null_context()
    started = time.monotonic()
    # ``finally: harness.close()`` tears down the shared serve daemon
    # the serve pair may have started (no-op otherwise).
    with guard_ctx, harness:
        trial = 0
        while True:
            if trials is not None and trial >= trials:
                break
            if (
                budget_seconds is not None
                and time.monotonic() - started >= budget_seconds
            ):
                break
            if len(report.findings) >= MAX_DISAGREEMENTS:
                break
            case = generator.case(trial)
            report.cases_by_label[case.label] = (
                report.cases_by_label.get(case.label, 0) + 1
            )
            if recorder.enabled:
                recorder.count("verify.trials")
                recorder.event(
                    "verify.trial",
                    trial=trial,
                    label=case.label,
                    lifeguard=case.lifeguard,
                    threads=case.num_threads,
                    epochs=case.num_epochs,
                    instructions=case.total_instructions,
                )
            for disagreement in harness.run_case(case):
                finding = _handle_disagreement(
                    harness, disagreement, trial, shrink,
                    failures_dir, recorder,
                )
                report.findings.append(finding)
            trial += 1
    report.trials = trial
    report.elapsed_s = time.monotonic() - started
    if recorder.enabled:
        recorder.event(
            "verify.campaign",
            seed=seed,
            trials=report.trials,
            disagreements=len(report.findings),
            modes=list(modes),
            mutant=mutant,
        )
    return report


def _handle_disagreement(
    harness: DifferentialHarness,
    disagreement,
    trial: int,
    shrink: bool,
    failures_dir: str,
    recorder: Recorder,
) -> FuzzFinding:
    case = disagreement.case
    mode = disagreement.mode
    detail = disagreement.detail
    if recorder.enabled:
        recorder.count("verify.disagreements")
        recorder.event(
            "verify.disagreement",
            trial=trial,
            mode=mode,
            label=case.label,
            instructions=case.total_instructions,
            detail=detail,
        )
    shrunk = case
    if shrink:
        shrunk = shrink_case(
            case, lambda c: harness.check(c, mode) is not None
        )
        # Re-diagnose on the minimal case so the artifact's detail
        # matches the trace it actually contains.
        detail = harness.check(shrunk, mode) or detail
        if recorder.enabled:
            recorder.event(
                "verify.shrunk",
                trial=trial,
                mode=mode,
                from_instructions=case.total_instructions,
                to_instructions=shrunk.total_instructions,
            )
    artifact = write_repro(
        shrunk, mode, detail, directory=failures_dir, trial=trial
    )
    if recorder.enabled:
        recorder.event("verify.artifact", trial=trial, path=artifact)
    return FuzzFinding(
        trial=trial,
        mode=mode,
        label=case.label,
        detail=detail,
        artifact=artifact,
        original_instructions=case.total_instructions,
        shrunk_instructions=shrunk.total_instructions,
    )


class _null_context:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        pass
