"""Delta-debugging shrinker: minimize a failing :class:`TraceCase`.

Given a case and a predicate ("does the disagreement still reproduce?"),
the shrinker repeatedly tries structural reductions -- drop a whole
thread, drop a whole epoch, drop a single instruction -- keeping any
reduction that still fails, until a full round makes no progress.  The
result is a locally minimal repro: removing any one more thread, epoch,
or instruction makes the disagreement vanish.

Minimal repros are written to an artifact directory (``repro-failures/``
by default) as self-contained JSON: the seed, the shrunk trace, its
partition boundaries, the mode that disagreed, and the diagnosis --
everything needed to replay the failure without the generator.
"""

from __future__ import annotations

import json
import os
from typing import Callable, List, Optional, Tuple

from repro.verify.generator import TraceCase

ARTIFACT_FORMAT = "repro-failure"
ARTIFACT_VERSION = 1

#: Safety valve: rounds are cheap on the tiny generated cases, but the
#: predicate can be expensive, so bound the total reduction attempts.
DEFAULT_MAX_ROUNDS = 64


def _drop_thread(case: TraceCase, tid: int) -> Optional[TraceCase]:
    if case.num_threads <= 1:
        return None
    threads = [list(t) for t in case.threads]
    boundaries = [list(b) for b in case.boundaries]
    del threads[tid]
    del boundaries[tid]
    return case.with_threads(threads, boundaries)


def _drop_epoch(case: TraceCase, lid: int) -> Optional[TraceCase]:
    if case.num_epochs <= 1:
        return None
    threads = []
    boundaries = []
    for t, cuts in zip(case.threads, case.boundaries):
        start = cuts[lid - 1] if lid else 0
        end = cuts[lid]
        dropped = end - start
        threads.append(list(t[:start]) + list(t[end:]))
        new_cuts = [
            c - dropped if k > lid else c
            for k, c in enumerate(cuts)
            if k != lid
        ]
        boundaries.append(new_cuts)
    return case.with_threads(threads, boundaries)


def _drop_instruction(case: TraceCase, tid: int, idx: int) -> TraceCase:
    threads = [list(t) for t in case.threads]
    boundaries = [list(b) for b in case.boundaries]
    del threads[tid][idx]
    boundaries[tid] = [c - 1 if c > idx else c for c in boundaries[tid]]
    return case.with_threads(threads, boundaries)


def _candidates(case: TraceCase):
    """All one-step reductions, coarsest first (threads, then epochs,
    then single instructions)."""
    for tid in range(case.num_threads):
        reduced = _drop_thread(case, tid)
        if reduced is not None:
            yield reduced
    for lid in range(case.num_epochs):
        reduced = _drop_epoch(case, lid)
        if reduced is not None:
            yield reduced
    for tid, thread in enumerate(case.threads):
        for idx in range(len(thread)):
            yield _drop_instruction(case, tid, idx)


def shrink_case(
    case: TraceCase,
    predicate: Callable[[TraceCase], bool],
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> TraceCase:
    """Greedy fixpoint of failing one-step reductions.

    ``predicate(candidate)`` must return True when the candidate still
    exhibits the failure.  The input case is assumed failing; the
    returned case always satisfies the predicate.
    """
    current = case
    for _ in range(max_rounds):
        for candidate in _candidates(current):
            failed = False
            try:
                failed = bool(predicate(candidate))
            except Exception:
                # A reduction that crashes the checker is not a cleaner
                # repro of *this* disagreement; skip it.
                failed = False
            if failed:
                current = candidate
                break  # restart the sweep from the smaller case
        else:
            return current  # full sweep with no progress: minimal
    return current


# -- artifacts ----------------------------------------------------------


def write_repro(
    case: TraceCase,
    mode: str,
    detail: str,
    directory: str = "repro-failures",
    trial: Optional[int] = None,
) -> str:
    """Persist a minimal repro; returns the artifact path."""
    os.makedirs(directory, exist_ok=True)
    suffix = f"-trial{trial}" if trial is not None else ""
    path = os.path.join(
        directory, f"{mode}-seed{case.seed}{suffix}.json"
    )
    payload = {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "mode": mode,
        "detail": detail,
        "case": case.to_json(),
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_repro(path: str) -> Tuple[TraceCase, str, str]:
    """Read an artifact back: ``(case, mode, detail)``."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("format") != ARTIFACT_FORMAT:
        raise ValueError(f"{path} is not a {ARTIFACT_FORMAT} artifact")
    return (
        TraceCase.from_json(payload["case"]),
        payload["mode"],
        payload["detail"],
    )
