"""Adversarial trace cases for the differential verification harness.

A :class:`TraceCase` bundles everything one differential trial needs --
the per-thread instruction lists, an explicit epoch partition, the
lifeguard family, and the seed that reproduces it.  Cases are plain
data: JSON-serializable (for ``repro-failures/`` artifacts) and cheap
to copy (the shrinker mutates copies, never the original).

The generator is seeded and biased: instead of uniform event soup it
rotates through *families* of historically hard shapes -- wing-heavy
conflict patterns, allocation-state changes at epoch boundaries,
single-instruction blocks, empty threads/epochs, extents that straddle
shadow-page/bitset-word strides, and taint propagation chains.  Trial
``i`` of seed ``s`` is a pure function of ``(s, i)``; no global RNG
state is touched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Sequence, Tuple

from repro.core.epoch import EpochPartition, partition_from_boundaries
from repro.trace.events import Instr, Op
from repro.trace.generator import adversarial_instrs
from repro.trace.program import ThreadTrace, TraceProgram

#: The generator's rotation of hard-case shapes.
FAMILIES = (
    "wing_heavy",
    "epoch_boundary",
    "single_instruction",
    "empty_threads",
    "page_straddle",
    "taint_chain",
)

#: Lifeguard families a case can target.
LIFEGUARDS = ("addrcheck", "taintcheck")


@dataclass(frozen=True)
class TraceCase:
    """One self-contained differential trial input."""

    seed: int
    label: str
    lifeguard: str
    threads: Tuple[Tuple[Instr, ...], ...]
    boundaries: Tuple[Tuple[int, ...], ...]
    preallocated: frozenset = field(default_factory=frozenset)

    def program(self) -> TraceProgram:
        return TraceProgram(
            [ThreadTrace(list(t)) for t in self.threads],
            preallocated=frozenset(self.preallocated),
        )

    def partition(self) -> EpochPartition:
        return partition_from_boundaries(
            self.program(), [list(b) for b in self.boundaries]
        )

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    @property
    def num_epochs(self) -> int:
        return len(self.boundaries[0]) if self.boundaries else 0

    @property
    def total_instructions(self) -> int:
        return sum(len(t) for t in self.threads)

    # -- artifact round-trip -------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "label": self.label,
            "lifeguard": self.lifeguard,
            "preallocated": sorted(self.preallocated),
            "threads": [
                [[i.op.value, i.dst, list(i.srcs), i.size] for i in t]
                for t in self.threads
            ],
            "boundaries": [list(b) for b in self.boundaries],
        }

    @classmethod
    def from_json(cls, raw: Dict[str, Any]) -> "TraceCase":
        threads = tuple(
            tuple(
                Instr(Op(op), dst=dst, srcs=tuple(srcs), size=size)
                for op, dst, srcs, size in t
            )
            for t in raw["threads"]
        )
        return cls(
            seed=raw["seed"],
            label=raw["label"],
            lifeguard=raw["lifeguard"],
            threads=threads,
            boundaries=tuple(tuple(b) for b in raw["boundaries"]),
            preallocated=frozenset(raw.get("preallocated", ())),
        )

    def with_threads(
        self,
        threads: Sequence[Sequence[Instr]],
        boundaries: Sequence[Sequence[int]],
    ) -> "TraceCase":
        """A structurally edited copy (the shrinker's workhorse)."""
        return replace(
            self,
            threads=tuple(tuple(t) for t in threads),
            boundaries=tuple(tuple(b) for b in boundaries),
        )


def _random_boundaries(
    rng: random.Random, lengths: Sequence[int], num_epochs: int
) -> List[List[int]]:
    """Per-thread sorted cut lists: ``num_epochs`` exclusive ends, the
    last pinned to the thread length.  Duplicate cuts (empty blocks)
    are deliberately common."""
    out = []
    for n in lengths:
        cuts = sorted(rng.randint(0, n) for _ in range(num_epochs - 1))
        out.append(cuts + [n])
    return out


def _boundaries_after_state_changes(
    instrs: Sequence[Instr], num_epochs: int
) -> List[int]:
    """Cuts placed immediately *after* allocation-state changes, the
    shape most likely to catch stale SOS/filter state at an epoch
    boundary."""
    change_points = [
        i + 1
        for i, instr in enumerate(instrs)
        if instr.op in (Op.MALLOC, Op.FREE)
    ]
    cuts = sorted(change_points[: num_epochs - 1])
    while len(cuts) < num_epochs - 1:
        cuts.append(len(instrs))
    return cuts + [len(instrs)]


class AdversarialCaseGenerator:
    """Deterministic stream of :class:`TraceCase` values.

    ``case(i)`` is pure in ``(seed, i)``; families rotate so any run of
    ``len(FAMILIES)`` consecutive trials covers every shape at least
    once.
    """

    def __init__(self, seed: int, num_locations: int = 8) -> None:
        self.seed = seed
        self.num_locations = num_locations

    def case(self, index: int) -> TraceCase:
        rng = random.Random(self.seed * 1_000_003 + index)
        label = FAMILIES[index % len(FAMILIES)]
        build = getattr(self, f"_build_{label}")
        threads, boundaries, lifeguard, prealloc = build(rng)
        return TraceCase(
            seed=self.seed,
            label=label,
            lifeguard=lifeguard,
            threads=tuple(tuple(t) for t in threads),
            boundaries=tuple(tuple(b) for b in boundaries),
            preallocated=frozenset(prealloc),
        )

    def cases(self, start: int = 0):
        index = start
        while True:
            yield self.case(index)
            index += 1

    # -- families -------------------------------------------------------

    def _build_wing_heavy(self, rng: random.Random):
        """2-3 threads hammering 1-2 shared locations: every butterfly's
        wings conflict with its body."""
        hot = rng.sample(range(self.num_locations), rng.randint(1, 2))
        nthreads = rng.randint(2, 3)
        lengths = [rng.randint(1, 3) for _ in range(nthreads)]
        threads = [
            adversarial_instrs(rng, n, self.num_locations, hot_locations=hot)
            for n in lengths
        ]
        num_epochs = rng.randint(2, 3)
        return (
            threads,
            _random_boundaries(rng, lengths, num_epochs),
            "addrcheck",
            hot if rng.random() < 0.5 else (),
        )

    def _build_epoch_boundary(self, rng: random.Random):
        """Allocation-state changes placed right at epoch cuts."""
        nthreads = rng.randint(2, 3)
        lengths = [rng.randint(2, 4) for _ in range(nthreads)]
        threads = [
            adversarial_instrs(
                rng, n, self.num_locations,
                ops=(Op.MALLOC, Op.FREE, Op.READ, Op.WRITE),
            )
            for n in lengths
        ]
        num_epochs = rng.randint(2, 4)
        boundaries = [
            _boundaries_after_state_changes(t, num_epochs) for t in threads
        ]
        return threads, boundaries, "addrcheck", ()

    def _build_single_instruction(self, rng: random.Random):
        """Every block holds at most one instruction (the paper's
        degenerate h=1 heartbeat), shorter threads padded with empty
        blocks."""
        nthreads = rng.randint(2, 3)
        lengths = [rng.randint(0, 3) for _ in range(nthreads)]
        if not any(lengths):
            lengths[0] = 1
        threads = [
            adversarial_instrs(rng, n, self.num_locations) for n in lengths
        ]
        num_epochs = max(lengths)
        boundaries = [
            [min(k + 1, n) for k in range(num_epochs)] for n in lengths
        ]
        return threads, boundaries, "addrcheck", ()

    def _build_empty_threads(self, rng: random.Random):
        """At least one thread with zero instructions, and often an
        empty final epoch across every thread."""
        nthreads = rng.randint(2, 3)
        lengths = [rng.randint(0, 3) for _ in range(nthreads)]
        lengths[rng.randrange(nthreads)] = 0
        threads = [
            adversarial_instrs(rng, n, self.num_locations) for n in lengths
        ]
        num_epochs = rng.randint(2, 4)
        boundaries = _random_boundaries(rng, lengths, num_epochs)
        if rng.random() < 0.5 and num_epochs >= 2:
            # Force the final epoch empty in every thread.
            boundaries = [
                cuts[:-2] + [cuts[-1], cuts[-1]] for cuts in boundaries
            ]
        return threads, boundaries, "addrcheck", ()

    def _build_page_straddle(self, rng: random.Random):
        """Sized MALLOC/FREE extents straddling small-stride boundaries
        (shadow pages, bitset words)."""
        nthreads = rng.randint(2, 3)
        lengths = [rng.randint(1, 3) for _ in range(nthreads)]
        stride = rng.choice((4, 8))
        threads = [
            adversarial_instrs(
                rng, n, self.num_locations * 2,
                ops=(Op.MALLOC, Op.FREE, Op.READ, Op.WRITE),
                straddle_stride=stride, max_extent=4,
            )
            for n in lengths
        ]
        num_epochs = rng.randint(2, 3)
        return (
            threads,
            _random_boundaries(rng, lengths, num_epochs),
            "addrcheck",
            range(self.num_locations * 2) if rng.random() < 0.3 else (),
        )

    def _build_taint_chain(self, rng: random.Random):
        """Taint sources, propagation chains and uses for TaintCheck."""
        hot = rng.sample(range(self.num_locations), rng.randint(2, 3))
        nthreads = rng.randint(2, 3)
        lengths = [rng.randint(1, 3) for _ in range(nthreads)]
        threads = [
            adversarial_instrs(
                rng, n, self.num_locations,
                ops=(Op.TAINT, Op.UNTAINT, Op.ASSIGN, Op.JUMP, Op.WRITE),
                hot_locations=hot,
            )
            for n in lengths
        ]
        num_epochs = rng.randint(2, 3)
        return (
            threads,
            _random_boundaries(rng, lengths, num_epochs),
            "taintcheck",
            (),
        )
