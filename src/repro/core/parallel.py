"""Execution backends: deterministic fan-out for the butterfly engine.

The paper's central claim is that lifeguards parallelize: within an
epoch every block's first pass is independent, and every body's second
pass depends only on already-published wing summaries (Section 4.3).
The :class:`~repro.core.framework.ButterflyEngine` exploits that by
splitting each pass into a *pure* compute stage (safe to run
concurrently) and an ordered *commit* stage (applied serially, in
thread-id order).  A backend decides how the compute stage executes:

- ``serial`` -- in the calling thread (the default, and the reference
  schedule every other backend must be bit-identical to);
- ``threads`` -- a :class:`~concurrent.futures.ThreadPoolExecutor`;
  compute stages may share read-only analysis state;
- ``processes`` -- a :class:`~concurrent.futures.ProcessPoolExecutor`;
  work units (scanner, block, context) must be picklable, so only the
  first pass fans out and second passes stay serial.

Because commits always happen in the serial schedule's order,
``EngineStats``, summaries, and lifeguard error logs are bit-identical
across backends; the determinism property tests assert exactly that.
"""

from __future__ import annotations

import abc
import os
import time
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import AnalysisError
from repro.obs.recorder import NULL_RECORDER, Recorder

#: Backend names accepted by the engine, the CLI, and the bench harness.
BACKEND_CHOICES = ("serial", "threads", "processes")


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


class ExecutionBackend(abc.ABC):
    """How a batch of independent work units executes."""

    #: Registry name ("serial", "threads", "processes").
    name: str = "abstract"
    #: Whether work units may run concurrently (enables engine fan-out).
    concurrent: bool = False
    #: Whether compute stages can see the live analysis object.  False
    #: for process pools: work units are pickled, so only self-contained
    #: (scanner, block, context) units may cross; the engine keeps any
    #: stage needing shared state on the serial path.
    shares_memory: bool = True
    #: Observability hook (``backend.*`` events/metrics); the engine
    #: points this at its recorder when observability is on.  All
    #: recording happens in the coordinating thread -- workers never
    #: touch the recorder -- so no locking is needed.
    recorder: Recorder = NULL_RECORDER

    @abc.abstractmethod
    def map_ordered(
        self, fn: Callable[..., Any], items: Sequence[Tuple]
    ) -> List[Any]:
        """Apply ``fn(*item)`` to every item; results in item order."""

    def close(self) -> None:
        """Release pooled workers (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """The reference schedule: everything in the calling thread."""

    name = "serial"
    concurrent = False

    def map_ordered(
        self, fn: Callable[..., Any], items: Sequence[Tuple]
    ) -> List[Any]:
        return [fn(*item) for item in items]


class _PooledBackend(ExecutionBackend):
    """Shared lazy-executor plumbing for the pooled backends."""

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1 (got {max_workers}); "
                f"omit it to use the CPU-count default"
            )
        self.max_workers = (
            max_workers if max_workers is not None else _default_workers()
        )
        self._executor: Optional[Executor] = None

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    @property
    def executor(self) -> Executor:
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def map_ordered(
        self, fn: Callable[..., Any], items: Sequence[Tuple]
    ) -> List[Any]:
        if self.recorder.enabled:
            return self._map_ordered_instrumented(fn, items)
        executor = self.executor
        futures = [executor.submit(_apply, (fn, item)) for item in items]
        return self._collect_ordered(futures)

    def _collect_ordered(self, futures: List["Future"]) -> List[Any]:
        """Collect results in submission order; never leak on failure.

        A failing ``future.result()`` used to abandon the remaining
        in-flight futures inside a now-suspect executor.  Instead,
        cancel everything still pending and drop the executor entirely
        before re-raising, so any retry (e.g. by a
        :class:`~repro.resilience.supervisor.SupervisedBackend` wrapping
        this one) starts from a clean pool.
        """
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            self.discard()
            raise

    def _map_ordered_instrumented(
        self, fn: Callable[..., Any], items: Sequence[Tuple]
    ) -> List[Any]:
        """Fan out with per-task telemetry.

        Tasks are submitted individually (instead of ``Executor.map``)
        so each submit/complete is observable; results are still
        collected in submission order, and completion events are emitted
        at collection time from the coordinating thread, so the event
        stream stays deterministic even though workers finish in any
        order.  Per-task wall time is measured inside the worker by
        :func:`_timed_apply` and travels back with the result.
        """
        rec = self.recorder
        executor = self.executor
        n = len(items)
        rec.count("backend.batches")
        rec.count("backend.tasks_submitted", n)
        rec.gauge("backend.queue_depth", n)
        rec.gauge("backend.workers", self.max_workers)
        with rec.span("backend.map", backend=self.name, tasks=n):
            futures = []
            for i, item in enumerate(items):
                futures.append(executor.submit(_timed_apply, (fn, item)))
                rec.event("backend.task.submit", backend=self.name, task=i)
            results = []
            try:
                for i, future in enumerate(futures):
                    result, dur_ns = future.result()
                    rec.count("backend.tasks_completed")
                    rec.event(
                        "backend.task.complete",
                        backend=self.name,
                        task=i,
                        pending=n - i - 1,
                        dur_ns=dur_ns,
                    )
                    results.append(result)
            except BaseException:
                # Same no-leak contract as _collect_ordered.
                for future in futures:
                    future.cancel()
                self.discard()
                raise
        return results

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def discard(self) -> None:
        """Drop the executor without waiting for its workers.

        For broken or hung pools, where :meth:`close` would block on
        workers that will never finish.  Pending work is cancelled; the
        next :attr:`executor` access lazily builds a fresh pool.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None


def _apply(payload: Tuple[Callable[..., Any], Tuple]) -> Any:
    fn, args = payload
    return fn(*args)


def _timed_apply(
    payload: Tuple[Callable[..., Any], Tuple]
) -> Tuple[Any, int]:
    """Worker-side wrapper measuring one task's wall time (picklable so
    it crosses the process-pool boundary)."""
    fn, args = payload
    t0 = time.perf_counter_ns()
    result = fn(*args)
    return result, time.perf_counter_ns() - t0


class ThreadPoolBackend(_PooledBackend):
    """Fan out over a thread pool; workers share the analysis object."""

    name = "threads"
    concurrent = True
    shares_memory = True

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="butterfly",
        )


class ProcessPoolBackend(_PooledBackend):
    """Fan out over a process pool; work units must pickle."""

    name = "processes"
    concurrent = True
    shares_memory = False

    def _make_executor(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.max_workers)


def get_backend(
    spec: Union[str, ExecutionBackend, None],
    max_workers: Optional[int] = None,
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through)."""
    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec == "serial":
        return SerialBackend()
    if spec == "threads":
        return ThreadPoolBackend(max_workers=max_workers)
    if spec == "processes":
        return ProcessPoolBackend(max_workers=max_workers)
    raise AnalysisError(
        f"unknown execution backend {spec!r} "
        f"(choose from {', '.join(BACKEND_CHOICES)})"
    )
