"""Declarative lifeguard construction (paper Section 4.3).

    "The lifeguard writer specifies the events the dataflow analysis
    will track, the meet operation, the metadata format, and the
    checking algorithm."

This module is that interface: a :class:`LifeguardSpec` names the
events (via ``gen_of`` / ``kill_vars_of``), picks the dataflow flavour
(*exists* semantics like reaching definitions, or *forall* semantics
like reaching expressions -- the meet and all SOS/LSOS rules follow
from the choice), and installs a per-instruction check.  ``build()``
returns a ready analysis for the two-pass engine.

Example -- a "definite initialization" lifeguard in a few lines::

    spec = LifeguardSpec(
        name="init-check",
        semantics="forall",                     # must hold on EVERY path
        gen_of=lambda instr, iid: (
            [instr.dst] if instr.op is Op.WRITE else []
        ),
        kill_vars_of=lambda instr: (
            instr.extent if instr.op is Op.FREE else []
        ),
        element_vars=lambda element: (element,),
        check=my_check,                          # (iid, instr, IN) -> reports
    )
    analysis = spec.build()
    ButterflyEngine(analysis).run(partition)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Hashable, Iterable, List, Optional

from repro.core.epoch import InstrId
from repro.core.framework import ButterflyAnalysis
from repro.core.reaching_defs import ReachingDefinitions
from repro.core.reaching_exprs import ReachingExpressions
from repro.errors import AnalysisError
from repro.lifeguards.reports import ErrorLog, ErrorReport
from repro.trace.events import Instr

Element = Hashable

#: A check receives (instr id, instruction, IN set) and returns the
#: reports to flag (empty for a clean instruction).
CheckFn = Callable[[InstrId, Instr, FrozenSet[Element]], Iterable[ErrorReport]]


@dataclass
class LifeguardSpec:
    """Everything a lifeguard writer supplies.

    Parameters
    ----------
    name:
        For reports and debugging.
    semantics:
        ``"exists"`` -- an element reaches if *some* valid ordering
        delivers it (reaching-definitions family: taint-like facts that
        must never be missed); or ``"forall"`` -- an element reaches
        only if *every* valid ordering preserves it
        (reaching-expressions family: safety facts like "allocated"
        that must never be assumed).  Note: ``"exists"`` elements must
        be :class:`~repro.core.dataflow.Definition`-like (carry ``var``
        and a ``site`` instruction id) because the epoch-level KILL and
        the LSOS resurrection term reason about the generating site;
        ``"forall"`` elements may be any hashable value.
    gen_of:
        Elements an instruction generates.
    kill_vars_of:
        Locations whose (re)definition by an instruction kills elements.
    element_vars:
        The locations an element depends on (a write to any kills it).
    check:
        Optional per-instruction check run during the second pass with
        the butterfly ``IN`` set.
    """

    name: str
    semantics: str
    gen_of: Callable[[Instr, InstrId], Iterable[Element]]
    kill_vars_of: Callable[[Instr], Iterable[int]]
    element_vars: Callable[[Element], Iterable[int]]
    check: Optional[CheckFn] = None

    def __post_init__(self) -> None:
        if self.semantics not in ("exists", "forall"):
            raise AnalysisError(
                f"semantics must be 'exists' or 'forall', "
                f"got {self.semantics!r}"
            )

    def build(self) -> "GenericLifeguard":
        """Instantiate the analysis for a fresh run."""
        return GenericLifeguard(self)


class _SpecDomain:
    """Adapts a spec's callables to the ElementDomain protocol."""

    def __init__(self, spec: LifeguardSpec) -> None:
        self._spec = spec

    def gen_of(self, instr: Instr, iid: InstrId):
        return self._spec.gen_of(instr, iid)

    def kill_vars_of(self, instr: Instr):
        return self._spec.kill_vars_of(instr)

    def element_vars(self, element: Element):
        return self._spec.element_vars(element)


class GenericLifeguard(ButterflyAnalysis):
    """A spec-driven lifeguard: delegates the dataflow to the matching
    canonical analysis and collects check reports in ``errors``."""

    def __init__(self, spec: LifeguardSpec) -> None:
        self.spec = spec
        self.errors = ErrorLog()
        if spec.semantics == "exists":
            self._inner = ReachingDefinitions(
                on_instruction=self._run_check, keep_history=False
            )
        else:
            self._inner = ReachingExpressions(
                on_instruction=self._run_check, keep_history=False
            )
        self._inner.domain = _SpecDomain(spec)

    # -- check plumbing ----------------------------------------------------

    def _run_check(
        self, iid: InstrId, instr: Instr, in_set: FrozenSet[Element]
    ) -> None:
        if self.spec.check is None:
            return
        for report in self.spec.check(iid, instr, in_set):
            self.errors.flag(report)

    # -- engine interface (delegation) ----------------------------------------

    @property
    def sos(self):
        """The inner analysis' published SOS history."""
        return self._inner.sos

    def first_pass(self, block):
        return self._inner.first_pass(block)

    def meet(self, butterfly, wing_summaries):
        return self._inner.meet(butterfly, wing_summaries)

    def second_pass(self, butterfly, side_in):
        return self._inner.second_pass(butterfly, side_in)

    def epoch_update(self, lid, summaries):
        return self._inner.epoch_update(lid, summaries)

    def evict_history(self, before):
        self._inner.evict_history(before)
