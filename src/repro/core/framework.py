"""The generic two-pass butterfly engine (paper Section 4.3).

The lifeguard writer supplies a :class:`ButterflyAnalysis`; the engine
sequences the four steps over the sliding window:

1. **first pass** -- each newly received block is analyzed with locally
   available state only, producing a summary;
2. **meet** -- for each body block whose full wings are now available,
   the wing summaries are combined;
3. **second pass** -- the body is re-analyzed with wing state and the
   lifeguard's checks run;
4. **epoch update** -- once every body in an epoch finished its second
   pass, the epoch is summarized and ``SOS_{l+2}`` is published.

A butterfly with body in epoch ``l`` needs epoch ``l+1`` in its wings,
so the engine processes bodies one epoch behind the newest received
epoch; the final epoch's bodies run once the trace ends (their wings
simply lack a ``l+1`` row, mirroring the paper's first/last butterflies).

Parallel execution
------------------

Steps 1 and 3 are embarrassingly parallel across the threads of an
epoch (the paper's whole point), and the engine can fan them out over
an :class:`~repro.core.parallel.ExecutionBackend`.  To keep results
bit-identical to the serial schedule, a parallelizable analysis splits
each pass into a *pure* stage and an ordered *commit* stage:

- first pass: ``first_pass_context`` (serial; may read published
  state), a picklable *scanner* from ``make_scanner`` (pure; fans out),
  and ``commit_scan`` (serial, ascending thread order);
- second pass: ``meet`` + ``check_body`` (pure given published
  summaries; fan out) and ``commit_check`` (serial, ascending thread
  order).

Analyses advertise the split via ``parallel_first_pass`` /
``parallel_second_pass``; everything else transparently runs on the
serial path, so legacy analyses that override ``first_pass`` /
``second_pass`` directly keep working on any backend.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generic, List, Optional, TypeVar, Union

from repro.core.epoch import Block, BlockId, EpochPartition
from repro.core.parallel import ExecutionBackend, get_backend
from repro.core.stream import EpochSource
from repro.core.window import Butterfly, butterflies_for_epoch
from repro.errors import AnalysisError
from repro.obs.recorder import NULL_RECORDER, Recorder

Summary = TypeVar("Summary")
SideIn = TypeVar("SideIn")

#: A pure first-pass work unit: ``scanner(block, context) -> scan``.
Scanner = Callable[[Block, Any], Any]


@dataclass
class EngineStats:
    """Work counters the timing substrate converts into cycles."""

    epochs_processed: int = 0
    first_pass_instructions: int = 0
    second_pass_instructions: int = 0
    meets: int = 0
    wing_summaries_combined: int = 0


class ButterflyAnalysis(abc.ABC, Generic[Summary, SideIn]):
    """Lifeguard-writer interface: the four knobs of Section 4.3.

    Implementations own their SOS/LSOS (update rules differ between the
    reaching-definitions and reaching-expressions families) and their
    error reporting.

    Subclasses implement either the classic whole-pass methods
    (``first_pass`` / ``second_pass``) or the split stages documented in
    the module docstring; the default whole-pass methods compose the
    split stages, so implementing the split gives both execution modes.
    """

    #: Set True when the scan stage may fan out across an epoch's
    #: blocks.  Requires ``make_scanner``/``commit_scan``, and
    #: ``first_pass_context`` must not depend on same-epoch commits.
    parallel_first_pass: bool = False
    #: Set True when ``meet``/``check_body`` only read published state
    #: and all mutation happens in ``commit_check``.
    parallel_second_pass: bool = False

    #: Observability hook; the engine points this at its own recorder on
    #: :meth:`ButterflyEngine.attach`.  Lifeguards emit error-provenance
    #: events through it from their serial commit paths only (guarded by
    #: ``recorder.enabled`` so the disabled path stays free).
    recorder: Recorder = NULL_RECORDER

    def emit_metrics(self, recorder: Recorder) -> None:
        """Publish end-of-run gauges (intern table pressure, footprint
        sizes, ...) to ``recorder``.  Called once by the engine after
        the final epoch; the default publishes nothing."""

    # -- step 1 ----------------------------------------------------------

    def first_pass_context(self, block: Block) -> Any:
        """Serial pre-stage: snapshot the published state the scanner
        needs (e.g. the LSOS).  Must not depend on commits of blocks in
        ``block``'s own epoch."""
        return None

    def make_scanner(self) -> Optional[Scanner]:
        """A pure, picklable ``(block, context) -> scan`` callable, or
        ``None`` when the analysis does not implement the split."""
        return None

    def commit_scan(self, block: Block, scan: Any) -> Summary:
        """Ordered post-stage: apply a scan's effects (summaries,
        errors, counters) to shared state; return the block summary."""
        raise NotImplementedError

    def first_pass(self, block: Block) -> Summary:
        """Step 1: analyze ``block`` with local state; return its summary."""
        scanner = self._scanner()
        if scanner is None:
            raise NotImplementedError(
                "implement first_pass() or the make_scanner()/commit_scan() split"
            )
        return self.commit_scan(
            block, scanner(block, self.first_pass_context(block))
        )

    def _scanner(self) -> Optional[Scanner]:
        cache = self.__dict__
        if "_scanner_cache" not in cache:
            cache["_scanner_cache"] = self.make_scanner()
        return cache["_scanner_cache"]

    # -- step 2 ----------------------------------------------------------

    @abc.abstractmethod
    def meet(self, butterfly: Butterfly, wing_summaries: List[Summary]) -> SideIn:
        """Step 2: combine the wings' summaries into the side-in value."""

    # -- step 3 ----------------------------------------------------------

    def check_body(self, butterfly: Butterfly, side_in: SideIn) -> Any:
        """Pure stage of the second pass: compute checks/derived facts
        from published state without mutating it."""
        raise NotImplementedError

    def commit_check(
        self, butterfly: Butterfly, side_in: SideIn, result: Any
    ) -> None:
        """Ordered stage of the second pass: apply a body's results."""
        raise NotImplementedError

    def second_pass(self, butterfly: Butterfly, side_in: SideIn) -> None:
        """Step 3: re-analyze the body with wing state; run checks."""
        self.commit_check(
            butterfly, side_in, self.check_body(butterfly, side_in)
        )

    # -- step 4 ----------------------------------------------------------

    @abc.abstractmethod
    def epoch_update(self, lid: int, summaries: Dict[BlockId, Summary]) -> None:
        """Step 4: summarize epoch ``l`` and publish ``SOS_{l+2}``."""

    def evict_history(self, before: int) -> None:
        """Drop per-epoch bookkeeping for epochs ``< before``.

        Called by the engine on streamed runs once those epochs can no
        longer be read: after body ``l`` is folded in, the next second
        pass reads ``SOS_{l+1}`` and the next :meth:`epoch_update`
        reads the frontier, so anything older is dead.  Analyses that
        keep per-epoch state (the SOS history) override this to stay
        O(window); the default keeps everything, preserving post-run
        inspection of materialized runs."""


class _WindowView:
    """The partition facade over the engine's resident block window.

    :func:`~repro.core.window.butterflies_for_epoch` only needs three
    things from a "partition": ``num_threads``, ``num_epochs`` and
    ``block(lid, tid)``.  The engine satisfies them from the blocks it
    currently holds -- ``num_epochs`` is the number of epochs *received
    so far*, which reproduces the materialized tail semantics exactly
    (a body's tail exists iff its epoch has arrived), so streamed and
    materialized runs build bit-identical butterflies.
    """

    __slots__ = ("_blocks", "num_threads", "num_epochs")

    def __init__(
        self, blocks: Dict[BlockId, Block], num_threads: int, num_epochs: int
    ) -> None:
        self._blocks = blocks
        self.num_threads = num_threads
        self.num_epochs = num_epochs

    def block(self, lid: int, tid: int) -> Block:
        return self._blocks[(lid, tid)]


class ButterflyEngine(Generic[Summary, SideIn]):
    """Drives a :class:`ButterflyAnalysis` over an epoch partition.

    Supports one-shot :meth:`run` over a materialized partition, the
    incremental :meth:`feed_epoch` / :meth:`finish` pair used by the
    LBA substrate (epochs arrive as the application executes), and the
    bounded-memory streaming entry point :meth:`run_source` /
    :meth:`feed_blocks`, which consumes any
    :class:`~repro.core.stream.EpochSource` -- a stream trace file, a
    generated workload, a socket -- without a partition in memory.

    Memory model (the sliding-window invariant): the engine retains
    block summaries and window blocks only for the butterfly window.
    After epoch ``l``'s bodies commit and ``epoch_update(l)`` publishes
    their effects into the SOS, summaries for epochs ``< l-1`` and
    blocks for epochs ``< l`` are evicted, so at any instant at most
    **3 epochs x num_threads** summaries are resident regardless of
    trace length.  The bound is enforced (a violation raises
    :class:`AnalysisError`), tracked in :attr:`window_high_water`, and
    exported as the ``engine.window_resident_blocks`` gauge.

    Parameters
    ----------
    analysis:
        The lifeguard to drive.
    backend:
        Execution backend for the parallelizable stages: a name from
        :data:`~repro.core.parallel.BACKEND_CHOICES` or a constructed
        :class:`~repro.core.parallel.ExecutionBackend`.  Backends
        created from a name are owned (and shut down) by the engine.
    recorder:
        Observability recorder (see :mod:`repro.obs`).  Defaults to the
        shared null recorder, in which case no instrumentation executes;
        with a live :class:`~repro.obs.recorder.Recorder` the engine
        emits per-epoch/per-pass/per-block spans, per-epoch summary
        events, and wires the recorder into the analysis (error
        provenance) and the backend (fan-out telemetry).
    """

    def __init__(
        self,
        analysis: ButterflyAnalysis,
        backend: Union[str, ExecutionBackend] = "serial",
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.analysis = analysis
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = get_backend(backend)
        self.recorder = recorder
        if recorder.enabled:
            self.backend.recorder = recorder
        self.stats = EngineStats()
        self._partition: Optional[EpochPartition] = None
        self._source: Optional[EpochSource] = None
        self._attached = False
        self._num_threads = 0
        self._expected_epochs: Optional[int] = None
        self._summaries: Dict[BlockId, Any] = {}
        self._window: Dict[BlockId, Block] = {}
        self._first_pass_errors: Dict[int, int] = {}
        self._next_to_receive = 0
        self._next_to_process = 0
        self._finished = False
        self._failed = False
        #: Peak resident block summaries over the run -- the quantity
        #: the sliding-window invariant bounds at 3 x num_threads.
        self.window_high_water = 0
        self._checkpointer: Optional[Any] = None

    # -- lifecycle ------------------------------------------------------

    def enable_checkpoints(self, checkpointer: Any) -> None:
        """Snapshot run state after committed epochs.

        ``checkpointer`` is typically a
        :class:`~repro.resilience.checkpoint.Checkpointer`; its
        ``after_epoch(engine, lid)`` is called each time epoch ``lid``'s
        bodies have committed and its SOS advance has been published --
        the engine's natural safe point for resume.
        """
        self._checkpointer = checkpointer

    def reset(self) -> None:
        """Detach from the current partition and zero all run state.

        Required before re-attaching a used engine -- including after an
        :class:`AnalysisError` aborted a run partway, which would
        otherwise leave stale counters behind.  The analysis object's
        own state is *not* touched; reuse generally wants a fresh
        analysis too.
        """
        self.stats = EngineStats()
        self._partition = None
        self._source = None
        self._attached = False
        self._num_threads = 0
        self._expected_epochs = None
        self._summaries = {}
        self._window = {}
        self._first_pass_errors = {}
        self._next_to_receive = 0
        self._next_to_process = 0
        self._finished = False
        self._failed = False
        self.window_high_water = 0

    def close(self) -> None:
        """Shut down an engine-owned backend's worker pool."""
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "ButterflyEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- one-shot -----------------------------------------------------

    def run(self, partition: EpochPartition) -> EngineStats:
        """Process an entire partition and return the work counters."""
        self.attach(partition)
        for lid in range(partition.num_epochs):
            self.feed_epoch(lid)
        self.finish()
        return self.stats

    def run_source(self, source: EpochSource) -> EngineStats:
        """Stream an :class:`~repro.core.stream.EpochSource` end to end.

        The bounded-memory counterpart of :meth:`run`: epochs are
        consumed one at a time and never rematerialized, so peak
        resident state is the three-epoch window no matter how long the
        stream runs.  Results are bit-identical to :meth:`run` over the
        equivalently partitioned trace.
        """
        self.attach_source(source)
        for lid, blocks in enumerate(source.epochs()):
            self.feed_blocks(lid, blocks)
        self.finish()
        return self.stats

    # -- streaming ------------------------------------------------------

    def attach(self, partition: EpochPartition, resumed: bool = False) -> None:
        """Bind the engine to a partition and announce the run.

        ``resumed=True`` marks a continuation of a checkpointed run:
        the uninterrupted run already emitted its ``run.attach``, so a
        resume must not emit a second one (the resumed log is the exact
        suffix of the uninterrupted log past the checkpoint boundary).
        """
        self._pre_attach()
        self._partition = partition
        self._num_threads = partition.num_threads
        self._expected_epochs = partition.num_epochs
        self._announce(resumed)

    def attach_source(
        self, source: EpochSource, resumed: bool = False
    ) -> None:
        """Bind the engine to a streaming epoch source.

        The caller then drives :meth:`feed_blocks` with the source's
        epoch rows (or uses :meth:`run_source`, which does exactly
        that).  ``resumed`` has the same meaning as for :meth:`attach`.
        """
        self._pre_attach()
        self._source = source
        self._num_threads = source.num_threads
        self._expected_epochs = source.num_epochs
        self._announce(resumed)

    def _pre_attach(self) -> None:
        if self._attached:
            raise AnalysisError(
                "engine already attached to a partition; call reset() "
                "to reuse it"
            )
        self.reset()  # guard: never start a run with stale counters
        self._attached = True

    def _announce(self, resumed: bool) -> None:
        if self.recorder.enabled:
            self.analysis.recorder = self.recorder
            # The backend name stays out of analysis-level events so
            # logs compare equal across backends; the streamed and
            # materialized paths emit the identical event.
            if not resumed:
                self.recorder.event(
                    "run.attach",
                    epochs=self._expected_epochs,
                    threads=self._num_threads,
                )

    def feed_epoch(self, lid: int) -> None:
        """Receive epoch ``l`` from the attached partition: first-pass
        its blocks, then process the bodies of epoch ``l - 1`` whose
        wings are now complete."""
        partition = self._require_partition()
        self.feed_blocks(lid, partition.epoch_blocks(lid))

    def feed_blocks(self, lid: int, blocks: List[Block]) -> None:
        """Receive epoch ``l`` as an explicit block row (the streaming
        primitive behind :meth:`feed_epoch` and :meth:`run_source`).

        Failed feeds are atomic at the engine level: a feed that raises
        rolls the engine's receipt bookkeeping (window blocks, block
        summaries, progress counters) back to the previous epoch
        boundary.  Validation failures -- out-of-order epochs, a
        malformed row -- leave the engine fully usable; an exception
        escaping the analysis or a checkpointer mid-feed marks the
        engine *failed* (the analysis may have partially absorbed the
        epoch), after which further feeds raise until :meth:`reset`.
        """
        self._require_attached()
        if self._failed:
            raise AnalysisError(
                "engine is in a failed state after an earlier feed "
                "error; call reset() and re-attach to reuse it"
            )
        if self._finished:
            raise AnalysisError("cannot feed epochs after finish()")
        if lid != self._next_to_receive:
            raise AnalysisError(
                f"epochs must arrive in order: expected {self._next_to_receive}, "
                f"got {lid}"
            )
        if len(blocks) != self._num_threads:
            raise AnalysisError(
                f"epoch {lid}: expected one block per thread "
                f"({self._num_threads}), got {len(blocks)}"
            )
        for tid, block in enumerate(blocks):
            if block.block_id != (lid, tid):
                raise AnalysisError(
                    f"epoch {lid}: block {tid} carries id "
                    f"{block.block_id}, expected {(lid, tid)}"
                )
        try:
            self._receive(lid, blocks)
        except Exception:
            # Roll receipt bookkeeping back to the epoch boundary so
            # the failure surface is clean; the analysis itself may be
            # mid-epoch, so require reset() before further feeding.
            for block in blocks:
                self._window.pop(block.block_id, None)
                self._summaries.pop(block.block_id, None)
            self._first_pass_errors.pop(lid, None)
            if self._next_to_receive > lid:
                self._next_to_receive = lid
            self._failed = True
            raise

    def _receive(self, lid: int, blocks: List[Block]) -> None:
        analysis = self.analysis
        for block in blocks:
            self._window[block.block_id] = block
        scanner = (
            analysis._scanner()
            if self.backend.concurrent
            and analysis.parallel_first_pass
            and len(blocks) > 1
            else None
        )
        recorder = self.recorder if self.recorder.enabled else None
        if recorder is not None:
            errors_before = self._error_count(analysis)
            with recorder.span("pass.first", epoch=lid, blocks=len(blocks)):
                self._first_pass(analysis, blocks, scanner, recorder)
            self._first_pass_errors[lid] = (
                self._error_count(analysis) - errors_before
            )
        else:
            self._first_pass(analysis, blocks, scanner, None)
        self._next_to_receive += 1
        if self._source is not None and recorder is not None:
            recorder.count("stream.epochs_received")
        self._note_residency()
        if lid >= 1:
            self._process_epoch(lid - 1)

    def _first_pass(
        self,
        analysis: ButterflyAnalysis,
        blocks: List[Block],
        scanner: Optional[Scanner],
        recorder: Optional[Recorder],
    ) -> None:
        """Step 1 over one received epoch (fanned out when possible)."""
        if scanner is not None:
            # Contexts snapshot published state only, so computing them
            # up front matches the serial schedule exactly.
            items = [
                (block, analysis.first_pass_context(block))
                for block in blocks
            ]
            scans = self.backend.map_ordered(scanner, items)
            for block, scan in zip(blocks, scans):
                if recorder is not None:
                    # Same event name as the serial path so logs compare
                    # equal across backends; here the span covers the
                    # commit stage only (the scan ran in the pool).
                    with recorder.span(
                        "block.first_pass",
                        epoch=block.block_id[0],
                        thread=block.block_id[1],
                        instrs=len(block),
                    ):
                        summary = analysis.commit_scan(block, scan)
                else:
                    summary = analysis.commit_scan(block, scan)
                self._summaries[block.block_id] = summary
                self.stats.first_pass_instructions += len(block)
        else:
            for block in blocks:
                if recorder is not None:
                    with recorder.span(
                        "block.first_pass",
                        epoch=block.block_id[0],
                        thread=block.block_id[1],
                        instrs=len(block),
                    ):
                        summary = analysis.first_pass(block)
                else:
                    summary = analysis.first_pass(block)
                self._summaries[block.block_id] = summary
                self.stats.first_pass_instructions += len(block)

    def finish(self) -> None:
        """End of trace: process the final epoch's bodies.

        With a partition (or a source whose length is known up front)
        an early finish is an error; an unbounded source's stream ends
        wherever the feeder stops.
        """
        self._require_attached()
        if self._finished:
            return
        if self._failed:
            raise AnalysisError(
                "engine is in a failed state after an earlier feed "
                "error; call reset() and re-attach to reuse it"
            )
        if (
            self._expected_epochs is not None
            and self._next_to_receive != self._expected_epochs
        ):
            raise AnalysisError(
                "finish() called before all epochs were fed "
                f"({self._next_to_receive}/{self._expected_epochs})"
            )
        last = self._next_to_receive - 1
        if last >= 0 and self._next_to_process == last:
            try:
                self._process_epoch(last)
            except Exception:
                # The final commit died mid-epoch; a retry would replay
                # partial analysis effects, so require a reset instead.
                self._failed = True
                raise
        self._finished = True
        if self.recorder.enabled:
            self.analysis.emit_metrics(self.recorder)
            self.recorder.event(
                "run.finish",
                epochs_processed=self.stats.epochs_processed,
                first_pass_instructions=self.stats.first_pass_instructions,
                second_pass_instructions=self.stats.second_pass_instructions,
                meets=self.stats.meets,
                errors_total=self._error_count(self.analysis),
            )

    # -- internals ------------------------------------------------------

    def _require_partition(self) -> EpochPartition:
        if self._partition is None:
            raise AnalysisError("engine not attached to a partition")
        return self._partition

    def _require_attached(self) -> None:
        if not self._attached:
            raise AnalysisError("engine not attached to a partition")

    def _window_view(self) -> _WindowView:
        return _WindowView(
            self._window, self._num_threads, self._next_to_receive
        )

    def _note_residency(self) -> None:
        """Track the high-water mark and enforce the window invariant.

        After any receive or commit, resident summaries must cover at
        most the three epochs of the butterfly window.
        """
        resident = len(self._summaries)
        if resident > self.window_high_water:
            self.window_high_water = resident
        limit = 3 * self._num_threads
        if resident > limit:
            raise AnalysisError(
                f"sliding-window invariant violated: {resident} resident "
                f"block summaries exceed 3 epochs x {self._num_threads} "
                f"threads = {limit}"
            )
        if self.recorder.enabled:
            self.recorder.gauge("engine.window_resident_blocks", resident)

    def _process_epoch(self, lid: int) -> None:
        if lid != self._next_to_process:
            raise AnalysisError(
                f"bodies must be processed in epoch order: expected "
                f"{self._next_to_process}, got {lid}"
            )
        analysis = self.analysis
        stats = self.stats
        summaries = self._summaries
        num_threads = self._num_threads
        recorder = self.recorder if self.recorder.enabled else None
        errors_before = (
            self._error_count(analysis) if recorder is not None else 0
        )
        butterflies = butterflies_for_epoch(self._window_view(), lid)
        wings = [
            [summaries[b.block_id] for b in bf.wings] for bf in butterflies
        ]
        if recorder is not None:
            with recorder.span(
                "pass.second", epoch=lid, bodies=len(butterflies)
            ):
                self._second_pass(analysis, butterflies, wings, recorder)
        else:
            self._second_pass(analysis, butterflies, wings, None)
        epoch_summaries = {
            (lid, tid): summaries[(lid, tid)]
            for tid in range(num_threads)
        }
        first_errors = self._first_pass_errors.pop(lid, 0)
        if recorder is not None:
            with recorder.span("epoch.update", epoch=lid):
                analysis.epoch_update(lid, epoch_summaries)
            recorder.event(
                "epoch.summary",
                epoch=lid,
                instructions=sum(len(bf.body) for bf in butterflies),
                meets=len(butterflies),
                first_pass_errors=first_errors,
                second_pass_errors=(
                    self._error_count(analysis) - errors_before
                ),
                errors_total=self._error_count(analysis),
            )
        else:
            analysis.epoch_update(lid, epoch_summaries)
        stats.epochs_processed += 1
        self._next_to_process += 1
        # Epoch ``lid`` is folded into the SOS now.  The next body is
        # ``lid+1``, whose butterflies reach back only to its head
        # ``lid`` -- so summaries and blocks for ``lid-1`` are dead,
        # and the resident window peaks at exactly the three epochs
        # ``lid..lid+2`` when the next epoch is received.
        stale = lid - 1
        if stale >= 0:
            for tid in range(num_threads):
                summaries.pop((stale, tid), None)
        for tid in range(num_threads):
            self._window.pop((lid - 1, tid), None)
        if self._partition is not None:
            # The partition's block cache duplicates the window; keep
            # its bookkeeping O(window) too.
            self._partition.evict_blocks(lid)
        if self._source is not None:
            # Streamed runs promise O(window) residency overall, so the
            # analysis sheds its own per-epoch history as well.  Only
            # SOS_{lid+1} (next body) and the frontier stay readable.
            analysis.evict_history(lid + 1)
        self._note_residency()
        if self._checkpointer is not None:
            self._checkpointer.after_epoch(self, lid)

    def _second_pass(
        self,
        analysis: ButterflyAnalysis,
        butterflies: List[Butterfly],
        wings: List[List[Any]],
        recorder: Optional[Recorder],
    ) -> None:
        """Steps 2-3 over one epoch's bodies (fanned out when possible)."""
        stats = self.stats
        if (
            self.backend.concurrent
            and self.backend.shares_memory
            and analysis.parallel_second_pass
            and len(butterflies) > 1
        ):
            # Pure stages fan out; commits land in ascending tid order,
            # reproducing the serial schedule bit for bit.
            def compute(bf: Butterfly, ws: List[Any]) -> Any:
                side_in = analysis.meet(bf, ws)
                return side_in, analysis.check_body(bf, side_in)

            results = self.backend.map_ordered(
                compute, list(zip(butterflies, wings))
            )
            for bf, ws, (side_in, result) in zip(butterflies, wings, results):
                stats.meets += 1
                stats.wing_summaries_combined += len(ws)
                if recorder is not None:
                    # Same event name as the serial path (logs must
                    # compare equal across backends); the span covers
                    # the commit stage only here.
                    with recorder.span(
                        "block.second_pass",
                        epoch=bf.body.block_id[0],
                        thread=bf.body.block_id[1],
                        wings=len(ws),
                    ):
                        analysis.commit_check(bf, side_in, result)
                else:
                    analysis.commit_check(bf, side_in, result)
                stats.second_pass_instructions += len(bf.body)
        else:
            for bf, ws in zip(butterflies, wings):
                stats.meets += 1
                stats.wing_summaries_combined += len(ws)
                if recorder is not None:
                    with recorder.span(
                        "block.second_pass",
                        epoch=bf.body.block_id[0],
                        thread=bf.body.block_id[1],
                        wings=len(ws),
                    ):
                        side_in = analysis.meet(bf, ws)
                        analysis.second_pass(bf, side_in)
                else:
                    side_in = analysis.meet(bf, ws)
                    analysis.second_pass(bf, side_in)
                stats.second_pass_instructions += len(bf.body)

    @staticmethod
    def _error_count(analysis: ButterflyAnalysis) -> int:
        """Size of the analysis's error log, for lifeguards that keep
        one (analyses without an ``errors`` attribute report 0)."""
        errors = getattr(analysis, "errors", None)
        return len(errors) if errors is not None else 0
