"""The generic two-pass butterfly engine (paper Section 4.3).

The lifeguard writer supplies a :class:`ButterflyAnalysis`; the engine
sequences the four steps over the sliding window:

1. **first pass** -- each newly received block is analyzed with locally
   available state only, producing a summary;
2. **meet** -- for each body block whose full wings are now available,
   the wing summaries are combined;
3. **second pass** -- the body is re-analyzed with wing state and the
   lifeguard's checks run;
4. **epoch update** -- once every body in an epoch finished its second
   pass, the epoch is summarized and ``SOS_{l+2}`` is published.

A butterfly with body in epoch ``l`` needs epoch ``l+1`` in its wings,
so the engine processes bodies one epoch behind the newest received
epoch; the final epoch's bodies run once the trace ends (their wings
simply lack a ``l+1`` row, mirroring the paper's first/last butterflies).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Generic, List, Optional, TypeVar

from repro.core.epoch import Block, BlockId, EpochPartition
from repro.core.window import Butterfly, butterfly_for
from repro.errors import AnalysisError

Summary = TypeVar("Summary")
SideIn = TypeVar("SideIn")


@dataclass
class EngineStats:
    """Work counters the timing substrate converts into cycles."""

    epochs_processed: int = 0
    first_pass_instructions: int = 0
    second_pass_instructions: int = 0
    meets: int = 0
    wing_summaries_combined: int = 0


class ButterflyAnalysis(abc.ABC, Generic[Summary, SideIn]):
    """Lifeguard-writer interface: the four knobs of Section 4.3.

    Implementations own their SOS/LSOS (update rules differ between the
    reaching-definitions and reaching-expressions families) and their
    error reporting.
    """

    @abc.abstractmethod
    def first_pass(self, block: Block) -> Summary:
        """Step 1: analyze ``block`` with local state; return its summary."""

    @abc.abstractmethod
    def meet(self, butterfly: Butterfly, wing_summaries: List[Summary]) -> SideIn:
        """Step 2: combine the wings' summaries into the side-in value."""

    @abc.abstractmethod
    def second_pass(self, butterfly: Butterfly, side_in: SideIn) -> None:
        """Step 3: re-analyze the body with wing state; run checks."""

    @abc.abstractmethod
    def epoch_update(self, lid: int, summaries: Dict[BlockId, Summary]) -> None:
        """Step 4: summarize epoch ``l`` and publish ``SOS_{l+2}``."""


class ButterflyEngine(Generic[Summary, SideIn]):
    """Drives a :class:`ButterflyAnalysis` over an epoch partition.

    Supports both one-shot :meth:`run` and the streaming
    :meth:`feed_epoch` / :meth:`finish` pair used by the LBA substrate
    (epochs arrive as the application executes).
    """

    def __init__(self, analysis: ButterflyAnalysis) -> None:
        self.analysis = analysis
        self.stats = EngineStats()
        self._partition: Optional[EpochPartition] = None
        self._summaries: Dict[BlockId, Any] = {}
        self._next_to_receive = 0
        self._next_to_process = 0
        self._finished = False

    # -- one-shot -----------------------------------------------------

    def run(self, partition: EpochPartition) -> EngineStats:
        """Process an entire partition and return the work counters."""
        self.attach(partition)
        for lid in range(partition.num_epochs):
            self.feed_epoch(lid)
        self.finish()
        return self.stats

    # -- streaming ------------------------------------------------------

    def attach(self, partition: EpochPartition) -> None:
        if self._partition is not None:
            raise AnalysisError("engine already attached to a partition")
        self._partition = partition

    def feed_epoch(self, lid: int) -> None:
        """Receive epoch ``l``: first-pass its blocks, then process the
        bodies of epoch ``l - 1`` whose wings are now complete."""
        partition = self._require_partition()
        if lid != self._next_to_receive:
            raise AnalysisError(
                f"epochs must arrive in order: expected {self._next_to_receive}, "
                f"got {lid}"
            )
        for tid in range(partition.num_threads):
            block = partition.block(lid, tid)
            self._summaries[block.block_id] = self.analysis.first_pass(block)
            self.stats.first_pass_instructions += len(block)
        self._next_to_receive += 1
        if lid >= 1:
            self._process_epoch(lid - 1)

    def finish(self) -> None:
        """End of trace: process the final epoch's bodies."""
        partition = self._require_partition()
        if self._finished:
            return
        if self._next_to_receive != partition.num_epochs:
            raise AnalysisError(
                "finish() called before all epochs were fed "
                f"({self._next_to_receive}/{partition.num_epochs})"
            )
        if partition.num_epochs:
            last = partition.num_epochs - 1
            if self._next_to_process == last:
                self._process_epoch(last)
        self._finished = True

    # -- internals ------------------------------------------------------

    def _require_partition(self) -> EpochPartition:
        if self._partition is None:
            raise AnalysisError("engine not attached to a partition")
        return self._partition

    def _process_epoch(self, lid: int) -> None:
        partition = self._require_partition()
        if lid != self._next_to_process:
            raise AnalysisError(
                f"bodies must be processed in epoch order: expected "
                f"{self._next_to_process}, got {lid}"
            )
        for tid in range(partition.num_threads):
            butterfly = butterfly_for(partition, lid, tid)
            wing_summaries = [
                self._summaries[b.block_id] for b in butterfly.wings
            ]
            side_in = self.analysis.meet(butterfly, wing_summaries)
            self.stats.meets += 1
            self.stats.wing_summaries_combined += len(wing_summaries)
            self.analysis.second_pass(butterfly, side_in)
            self.stats.second_pass_instructions += len(butterfly.body)
        epoch_summaries = {
            (lid, tid): self._summaries[(lid, tid)]
            for tid in range(partition.num_threads)
        }
        self.analysis.epoch_update(lid, epoch_summaries)
        self.stats.epochs_processed += 1
        self._next_to_process += 1
        # Summaries older than the sliding window are dead; reclaim them.
        stale = lid - 2
        if stale >= 0:
            for tid in range(partition.num_threads):
                self._summaries.pop((stale, tid), None)
