"""Strongly Ordered State containers (paper Sections 4.2, 5.1.2, 5.2.1).

``SOS_l`` summarizes everything known to have happened strictly before
epoch ``l`` -- i.e. the effects of epochs ``<= l - 2``.  It is globally
shared and single-writer: one lifeguard thread is nominated master and
publishes each ``SOS_l`` before any butterfly with a body in epoch ``l``
runs its second pass, so no synchronization on the metadata is needed.

The LSOS (local SOS) augments ``SOS_l`` with the head block's effects
and is recomputed per body block by each analysis (the defs/exprs rules
differ, so the formulas live in the analysis modules; this container
only records and serves the published epoch states).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Set

from repro.errors import AnalysisError

Element = Hashable


class SOSHistory:
    """The per-epoch sequence of strongly ordered states.

    Maintains the invariant of Lemma 5.2 via the update rule

        ``SOS_l := GEN_{l-2} U (SOS_{l-1} - KILL_{l-2})``,

    with ``SOS_0 = SOS_1 = {}``.  ``KILL`` is supplied as a predicate
    because kill sets are symbolic (unbounded element universe).
    """

    def __init__(self) -> None:
        self._states: Dict[int, FrozenSet[Element]] = {
            0: frozenset(),
            1: frozenset(),
        }
        self._frontier = 1  # largest epoch whose SOS is published
        self._evicted_before = 0  # smallest epoch still readable

    @property
    def frontier(self) -> int:
        """Largest epoch id with a published SOS."""
        return self._frontier

    def get(self, lid: int) -> FrozenSet[Element]:
        """The published ``SOS_l``; raises if not yet computed."""
        if lid < 0:
            return frozenset()
        try:
            return self._states[lid]
        except KeyError:
            if lid < self._evicted_before:
                raise AnalysisError(
                    f"SOS_{lid} was evicted (bounded history retains "
                    f"epochs >= {self._evicted_before})"
                ) from None
            raise AnalysisError(
                f"SOS_{lid} requested before epoch {lid - 2} was summarized"
            ) from None

    def advance(
        self,
        summarized_epoch: int,
        gen: Set[Element],
        killed: Callable[[Element], bool],
    ) -> FrozenSet[Element]:
        """Publish ``SOS_{summarized_epoch + 2}`` from epoch-level GEN and
        a KILL predicate over the previous SOS."""
        target = summarized_epoch + 2
        if target != self._frontier + 1:
            raise AnalysisError(
                f"SOS must advance in order: next is SOS_{self._frontier + 1}, "
                f"got SOS_{target}"
            )
        prev = self._states[self._frontier]
        survivors = {e for e in prev if not killed(e)}
        survivors |= gen
        return self.publish(summarized_epoch, survivors)

    def publish(
        self, summarized_epoch: int, state: Set[Element]
    ) -> FrozenSet[Element]:
        """Publish a precomputed ``SOS_{summarized_epoch + 2}``.

        The escape hatch for analyses that evaluate the update rule in
        closed form (e.g. as interned-bitset word operations) instead of
        enumerating the previous state against a KILL predicate; the
        same in-order invariant applies.
        """
        target = summarized_epoch + 2
        if target != self._frontier + 1:
            raise AnalysisError(
                f"SOS must advance in order: next is SOS_{self._frontier + 1}, "
                f"got SOS_{target}"
            )
        frozen = frozenset(state)
        self._states[target] = frozen
        self._frontier = target
        return frozen

    def evict(self, before: int) -> None:
        """Drop published states for epochs ``< before``.

        The caller asserts those states will never be read again (on a
        streamed run, second passes have moved past them).  The
        frontier itself is always retained: :meth:`advance` reads it to
        build the next state.
        """
        before = min(before, self._frontier)
        if before <= self._evicted_before:
            return
        for lid in [k for k in self._states if k < before]:
            del self._states[lid]
        self._evicted_before = before

    def published(self) -> Dict[int, FrozenSet[Element]]:
        """All published states still retained (for inspection/tests)."""
        return dict(self._states)
