"""Running several lifeguards over one log pass.

A deployment rarely wants a single property checked: the LBA log is
captured once, so the lifeguard core can drive any number of analyses
over the same event stream.  :class:`CompositeAnalysis` multiplexes the
engine callbacks to its children, preserving each child's own
summaries, SOS, and error log -- the per-epoch barriers are shared, the
metadata is not (exactly the single-writer discipline of Section 5).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.epoch import Block, BlockId
from repro.core.framework import ButterflyAnalysis
from repro.core.window import Butterfly
from repro.errors import AnalysisError


class CompositeAnalysis(ButterflyAnalysis):
    """Fan one engine run out to several butterfly analyses."""

    def __init__(self, children: Sequence[ButterflyAnalysis]) -> None:
        if not children:
            raise AnalysisError("a composite needs at least one analysis")
        self.children: Tuple[ButterflyAnalysis, ...] = tuple(children)

    def first_pass(self, block: Block):
        return tuple(child.first_pass(block) for child in self.children)

    def meet(self, butterfly: Butterfly, wing_summaries: List[tuple]):
        return tuple(
            child.meet(butterfly, [w[i] for w in wing_summaries])
            for i, child in enumerate(self.children)
        )

    def second_pass(self, butterfly: Butterfly, side_in: tuple) -> None:
        for child, child_side_in in zip(self.children, side_in):
            child.second_pass(butterfly, child_side_in)

    def epoch_update(self, lid: int, summaries: Dict[BlockId, tuple]) -> None:
        for i, child in enumerate(self.children):
            child.epoch_update(
                lid, {bid: s[i] for bid, s in summaries.items()}
            )

    def evict_history(self, before: int) -> None:
        for child in self.children:
            child.evict_history(before)
