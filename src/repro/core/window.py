"""Butterflies: the sliding three-epoch window around a body block.

For body block ``(l, t)`` (paper Section 4.1, Figure 7):

- **head** -- ``(l-1, t)``: same thread, already executed;
- **tail** -- ``(l+1, t)``: same thread, not yet executed;
- **wings** -- ``(l-1, t'), (l, t'), (l+1, t')`` for every ``t' != t``:
  other threads' blocks whose instructions may interleave arbitrarily
  with the body.

Epochs outside ``[l-1, l+1]`` are strictly ordered with respect to the
body and are summarized by the SOS instead of appearing in the window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.epoch import Block, BlockId, EpochPartition


@dataclass(frozen=True)
class Butterfly:
    """The window of potential concurrency around one body block."""

    body: Block
    head: Optional[Block]
    tail: Optional[Block]
    wings: Tuple[Block, ...]

    @property
    def body_id(self) -> BlockId:
        return self.body.block_id

    def wing_ids(self) -> List[BlockId]:
        return [b.block_id for b in self.wings]

    def all_blocks(self) -> List[Block]:
        """Body, head, tail and wings -- the full three-epoch window."""
        blocks = [self.body]
        if self.head is not None:
            blocks.append(self.head)
        if self.tail is not None:
            blocks.append(self.tail)
        blocks.extend(self.wings)
        return blocks

    def is_potentially_concurrent(self, other: BlockId) -> bool:
        """Whether ``other`` sits in this butterfly's wings."""
        lid, tid = other
        return (
            tid != self.body.tid
            and abs(lid - self.body.lid) <= 1
        )


def butterfly_for(partition: EpochPartition, lid: int, tid: int) -> Butterfly:
    """Construct the butterfly whose body is block ``(l, t)``."""
    body = partition.block(lid, tid)
    head = partition.block(lid - 1, tid) if lid >= 1 else None
    tail = (
        partition.block(lid + 1, tid)
        if lid + 1 < partition.num_epochs
        else None
    )
    wings = []
    for wl in (lid - 1, lid, lid + 1):
        if not 0 <= wl < partition.num_epochs:
            continue
        for wt in range(partition.num_threads):
            if wt != tid:
                wings.append(partition.block(wl, wt))
    return Butterfly(body=body, head=head, tail=tail, wings=tuple(wings))


def butterflies_for_epoch(
    partition: EpochPartition, lid: int
) -> List[Butterfly]:
    """All butterflies with bodies in epoch ``l``, in thread order.

    This is one fan-out unit for the engine: once epoch ``l+1`` has been
    received these bodies are mutually independent (each second pass
    reads only wing summaries already published by first passes).
    """
    return [
        butterfly_for(partition, lid, tid)
        for tid in range(partition.num_threads)
    ]


def sliding_windows(partition: EpochPartition) -> Iterator[Butterfly]:
    """Yield every butterfly, epoch by epoch then thread by thread.

    This is the order the two-pass engine processes bodies in: all
    butterflies with bodies in epoch ``l`` become processable once epoch
    ``l+1`` has been received (its blocks complete the wings).
    """
    for lid in range(partition.num_epochs):
        for tid in range(partition.num_threads):
            yield butterfly_for(partition, lid, tid)
