"""Uncertainty epochs and blocks (paper Section 4.1).

A heartbeat signal partitions each thread's dynamic trace into *blocks*;
the ``l``-th block of every thread together forms *epoch* ``l``.  Epoch
boundaries are not synchronized across threads (heartbeat delivery skews),
so blocks within an epoch may have different sizes -- the model only
guarantees that instructions in non-adjacent epochs are strictly ordered.

A block is addressed by ``(l, t)`` and an instruction by ``(l, t, i)``
with ``i`` an offset from the block start, exactly the paper's notation.

Heartbeat policies
------------------

Where the cuts land is a *policy*, not a property of the partition: the
paper's prototype fires a heartbeat every ``h`` events, but nothing in
the analysis depends on that -- only on the boundary stream itself.
:class:`HeartbeatPolicy` makes the boundary stream the first-class
object: a policy maps a program to per-thread cut lists, and every
partition constructor below is a trivial policy
(:class:`FixedHeartbeat`, :class:`GlobalOrderHeartbeat`,
:class:`SkewedHeartbeat`, :class:`AutoHeartbeat`,
:class:`ExplicitHeartbeat`).  Downstream layers (the v2 stream writer,
checkpoints, the serve daemon) carry the *explicit boundaries* a policy
produced, never the policy's parameters, so re-running, resuming, or
re-checking a trace always reproduces identical cuts -- the invariant
the differential harness's variable-partition mode enforces.
"""

from __future__ import annotations

import abc
import random
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.columnar import ColumnarBlock
from repro.errors import PartitionError
from repro.trace.events import Instr
from repro.trace.program import GlobalRef, TraceProgram

#: A block address (epoch id, thread id).
BlockId = Tuple[int, int]
#: An instruction address (epoch id, thread id, offset in block).
InstrId = Tuple[int, int, int]


class Block:
    """A contiguous run of one thread's instructions within one epoch.

    A block holds its events in one (or both) of two representations:
    a tuple of :class:`Instr` objects (the *object* path every
    reference implementation iterates) and a
    :class:`~repro.core.columnar.ColumnarBlock` of parallel arrays (the
    *fast* path vector kernels scan).  Either may be supplied at
    construction; the other is derived lazily on first use and cached,
    so code that never touches ``.instrs`` on a columnar-backed block
    never pays for materializing objects.

    Blocks are immutable value objects: equality and hashing use the
    block address plus event content, matching the previous frozen
    dataclass.  Pickling prefers the columnar form -- a few flat byte
    strings instead of a tree of per-event objects -- which is what
    makes process-pool task payloads cheap.
    """

    __slots__ = ("lid", "tid", "start", "_instrs", "_columns")

    def __init__(
        self,
        lid: int,
        tid: int,
        start: int,
        instrs: Optional[Tuple[Instr, ...]] = None,
        columns: Optional[ColumnarBlock] = None,
    ) -> None:
        if instrs is None and columns is None:
            raise TypeError("Block needs instrs or columns (or both)")
        self.lid = lid
        self.tid = tid
        #: offset of the first instruction within the thread trace
        self.start = start
        self._instrs = None if instrs is None else tuple(instrs)
        self._columns = columns

    @property
    def instrs(self) -> Tuple[Instr, ...]:
        """The events as ``Instr`` objects (materialized on demand)."""
        if self._instrs is None:
            self._instrs = self._columns.to_instrs()
        return self._instrs

    @property
    def columns(self) -> ColumnarBlock:
        """The events as parallel columns (converted on demand)."""
        if self._columns is None:
            self._columns = ColumnarBlock.from_instrs(self._instrs)
        return self._columns

    @property
    def has_columns(self) -> bool:
        """Whether the columnar form already exists (conversion-free)."""
        return self._columns is not None

    @property
    def block_id(self) -> BlockId:
        return (self.lid, self.tid)

    def __len__(self) -> int:
        if self._instrs is not None:
            return len(self._instrs)
        return len(self._columns)

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def iter_ids(self) -> Iterator[Tuple[InstrId, Instr]]:
        """Iterate ``((l, t, i), instr)`` pairs."""
        for i, instr in enumerate(self.instrs):
            yield (self.lid, self.tid, i), instr

    def global_ref(self, i: int) -> GlobalRef:
        """Map offset ``i`` back to a ``(thread, trace index)`` ref."""
        return (self.tid, self.start + i)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Block):
            return NotImplemented
        if (self.lid, self.tid, self.start) != (other.lid, other.tid, other.start):
            return False
        # Compare in whichever representation avoids materialization.
        if self._instrs is None and other._instrs is None:
            return self._columns == other._columns
        return self.instrs == other.instrs

    def __hash__(self) -> int:
        return hash((self.lid, self.tid, self.start, len(self)))

    def __repr__(self) -> str:
        return (
            f"Block(lid={self.lid}, tid={self.tid}, start={self.start}, "
            f"len={len(self)})"
        )

    def __getstate__(self):
        # Ship columns, never Instr objects: the columnar wire form is
        # flat bytes, so pool tasks carry no per-event object graph.
        return (self.lid, self.tid, self.start, self.columns)

    def __setstate__(self, state) -> None:
        self.lid, self.tid, self.start, self._columns = state
        self._instrs = None


class EpochPartition:
    """A trace program cut into epochs.

    ``boundaries[t]`` is the strictly increasing list of cut points in
    thread ``t``'s trace (exclusive block ends), with the final entry
    equal to the trace length.  All threads have the same number of
    blocks (trailing blocks may be empty), so every epoch is a full row.
    """

    def __init__(
        self, program: TraceProgram, boundaries: Sequence[Sequence[int]]
    ) -> None:
        if len(boundaries) != program.num_threads:
            raise PartitionError(
                "need one boundary list per thread "
                f"({len(boundaries)} given, {program.num_threads} threads)"
            )
        num_epochs = None
        for t, cuts in enumerate(boundaries):
            n = len(program.threads[t])
            if not cuts or cuts[-1] != n:
                raise PartitionError(
                    f"thread {t}: boundaries must end at trace length {n}"
                )
            if any(b < a for a, b in zip(cuts, cuts[1:])):
                raise PartitionError(f"thread {t}: boundaries must be sorted")
            if any(c < 0 for c in cuts):
                raise PartitionError(f"thread {t}: negative boundary")
            if num_epochs is None:
                num_epochs = len(cuts)
            elif len(cuts) != num_epochs:
                raise PartitionError(
                    "all threads must have the same epoch count "
                    f"(thread {t} has {len(cuts)}, expected {num_epochs})"
                )
        self.program = program
        self.boundaries = [list(cuts) for cuts in boundaries]
        self._num_epochs = num_epochs or 0
        self._blocks: dict = {}

    # -- shape --------------------------------------------------------

    @property
    def num_epochs(self) -> int:
        return self._num_epochs

    @property
    def num_threads(self) -> int:
        return self.program.num_threads

    # -- access ---------------------------------------------------------

    def block(self, lid: int, tid: int) -> Block:
        """The block ``(l, t)``; empty tuple blocks are legal."""
        key = (lid, tid)
        cached = self._blocks.get(key)
        if cached is not None:
            return cached
        if not 0 <= lid < self._num_epochs:
            raise PartitionError(f"epoch {lid} out of range")
        if not 0 <= tid < self.num_threads:
            raise PartitionError(f"thread {tid} out of range")
        cuts = self.boundaries[tid]
        start = cuts[lid - 1] if lid > 0 else 0
        end = cuts[lid]
        blk = Block(
            lid, tid, start, tuple(self.program.threads[tid].instrs[start:end])
        )
        self._blocks[key] = blk
        return blk

    def epoch_blocks(self, lid: int) -> List[Block]:
        """All blocks in epoch ``l``, one per thread."""
        return [self.block(lid, t) for t in range(self.num_threads)]

    def iter_blocks(self) -> Iterator[Block]:
        for lid in range(self._num_epochs):
            for tid in range(self.num_threads):
                yield self.block(lid, tid)

    def evict_blocks(self, older_than: int) -> None:
        """Drop cached :class:`Block` objects for epochs ``< older_than``.

        The cache is semantically transparent -- :meth:`block` rebuilds
        an evicted entry on demand -- but left alone it grows one entry
        per block ever touched, O(total blocks).  The engine (and
        :class:`~repro.core.stream.PartitionSource`) evict it in step
        with the sliding window so a long run's bookkeeping stays
        O(window).
        """
        for key in [k for k in self._blocks if k[0] < older_than]:
            del self._blocks[key]

    def instr(self, iid: InstrId) -> Instr:
        lid, tid, i = iid
        return self.block(lid, tid).instrs[i]

    def epoch_of(self, tid: int, trace_index: int) -> int:
        """Which epoch the ``trace_index``-th instruction of thread ``t``
        landed in."""
        cuts = self.boundaries[tid]
        lo, hi = 0, len(cuts) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if trace_index < cuts[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def instr_id_of(self, tid: int, trace_index: int) -> InstrId:
        lid = self.epoch_of(tid, trace_index)
        start = self.boundaries[tid][lid - 1] if lid > 0 else 0
        return (lid, tid, trace_index - start)

    def global_ref_of(self, iid: InstrId) -> GlobalRef:
        lid, tid, i = iid
        return self.block(lid, tid).global_ref(i)


# ---------------------------------------------------------------------------
# Heartbeat policies
# ---------------------------------------------------------------------------


class HeartbeatPolicy(abc.ABC):
    """Maps a program to the boundary stream that partitions it.

    The policy is the only place epoch geometry is *decided*; everything
    downstream consumes the explicit per-thread cut lists it emits.
    Policies must be deterministic given their construction parameters
    (randomized ones seed their own RNG) so the same policy over the
    same program always reproduces identical cuts.
    """

    @abc.abstractmethod
    def boundaries(self, program: TraceProgram) -> List[List[int]]:
        """Per-thread cut points: ``result[t]`` is non-decreasing and
        ends at ``len(program.threads[t])``; all threads emit the same
        number of cuts (the epoch count)."""

    def partition(self, program: TraceProgram) -> EpochPartition:
        """Cut ``program`` with this policy's boundary stream."""
        return EpochPartition(program, self.boundaries(program))


def _check_epoch_size(epoch_size: int) -> None:
    if epoch_size < 1:
        raise PartitionError("epoch_size must be >= 1")


class FixedHeartbeat(HeartbeatPolicy):
    """A heartbeat every ``h`` instructions of each thread.

    This is the LBA software heartbeat of Section 7.1: a marker is
    inserted into each thread's log every ``h`` instructions.
    """

    def __init__(self, epoch_size: int) -> None:
        _check_epoch_size(epoch_size)
        self.epoch_size = epoch_size

    def boundaries(self, program: TraceProgram) -> List[List[int]]:
        h = self.epoch_size
        lengths = [len(t) for t in program.threads]
        num_epochs = max(
            1, max((n + h - 1) // h for n in lengths) if lengths else 1
        )
        return [
            [min((k + 1) * h, n) for k in range(num_epochs)]
            for n in lengths
        ]


class SkewedHeartbeat(HeartbeatPolicy):
    """Fixed-size epochs with per-thread heartbeat delivery jitter.

    Each boundary lands within ``max_skew`` instructions of its nominal
    position, modelling non-simultaneous heartbeat reception (Section
    4.1).  ``max_skew`` must be less than half the epoch size so that
    blocks never invert.  Determinism: the jitter stream is drawn from
    ``rng`` (default ``random.Random(0)``) in a fixed thread-major,
    cut-minor order, so equal seeds cut equally.
    """

    def __init__(
        self,
        epoch_size: int,
        max_skew: int,
        rng: Optional[random.Random] = None,
        seed: int = 0,
    ) -> None:
        _check_epoch_size(epoch_size)
        if max_skew < 0 or 2 * max_skew >= epoch_size:
            raise PartitionError(
                "max_skew must satisfy 0 <= 2*skew < epoch_size"
            )
        self.epoch_size = epoch_size
        self.max_skew = max_skew
        self._rng = rng if rng is not None else random.Random(seed)

    def boundaries(self, program: TraceProgram) -> List[List[int]]:
        h, max_skew, rng = self.epoch_size, self.max_skew, self._rng
        lengths = [len(t) for t in program.threads]
        num_epochs = max(
            1, max((n + h - 1) // h for n in lengths) if lengths else 1
        )
        boundaries = []
        for n in lengths:
            cuts = []
            for k in range(num_epochs - 1):
                nominal = (k + 1) * h
                jitter = rng.randint(-max_skew, max_skew)
                cuts.append(max(0, min(nominal + jitter, n)))
            cuts.append(n)
            # Jitter near the trace tail can produce non-monotone cuts;
            # clamp forward so every cut list stays sorted.
            for k in range(1, len(cuts)):
                cuts[k] = max(cuts[k], cuts[k - 1])
            boundaries.append(cuts)
        return boundaries


class GlobalOrderHeartbeat(HeartbeatPolicy):
    """Heartbeats in *global execution time* (the paper's footnote 4).

    The LBA prototype issues a heartbeat after ``h * n`` instructions
    have executed across all ``n`` application threads, cutting every
    thread's log at its position *at that moment*; block sizes therefore
    differ across threads ("Butterfly analysis does not require balanced
    workloads within an epoch").  Requires the trace's recorded
    ground-truth order as the notion of time.
    """

    def __init__(self, epoch_size: int) -> None:
        _check_epoch_size(epoch_size)
        self.epoch_size = epoch_size

    def boundaries(self, program: TraceProgram) -> List[List[int]]:
        order = program.recorded_order()
        n = program.num_threads
        interval = self.epoch_size * n
        positions = [0] * n
        boundaries: List[List[int]] = [[] for _ in range(n)]
        for count, (t, _i) in enumerate(order, start=1):
            positions[t] += 1
            if count % interval == 0:
                for tid in range(n):
                    boundaries[tid].append(positions[tid])
        # Close the final epoch at each trace's end.  When the last
        # heartbeat landed exactly at the end, a final (possibly empty)
        # epoch is still appended so every thread agrees.
        lengths = [len(tr) for tr in program.threads]
        for tid in range(n):
            boundaries[tid].append(lengths[tid])
        return boundaries


class AutoHeartbeat(HeartbeatPolicy):
    """The LBA substrate's default cutting rule: heartbeats fire in
    *execution time* when the trace recorded its ground-truth global
    order (paper footnote 4), and per-thread instruction counts
    otherwise.  Shared by the CLI, the LBA simulator and the streaming
    trace writer so every path cuts a given trace identically."""

    def __init__(self, epoch_size: int) -> None:
        _check_epoch_size(epoch_size)
        self.epoch_size = epoch_size

    def boundaries(self, program: TraceProgram) -> List[List[int]]:
        if program.true_order is not None:
            return GlobalOrderHeartbeat(self.epoch_size).boundaries(program)
        return FixedHeartbeat(self.epoch_size).boundaries(program)


class ExplicitHeartbeat(HeartbeatPolicy):
    """A recorded boundary stream replayed verbatim.

    This is how cuts travel between layers: resume replays the
    boundaries the interrupted run recorded, the adaptive serve daemon's
    offline re-check replays the boundaries the controller actually
    chose, and tests hand-craft irregular geometries.
    """

    def __init__(self, boundaries: Sequence[Sequence[int]]) -> None:
        self._boundaries = [list(cuts) for cuts in boundaries]

    def boundaries(self, program: TraceProgram) -> List[List[int]]:
        return [list(cuts) for cuts in self._boundaries]


# ---------------------------------------------------------------------------
# Partition constructors (trivial wrappers over the policies)
# ---------------------------------------------------------------------------


def partition_fixed(program: TraceProgram, epoch_size: int) -> EpochPartition:
    """Cut with :class:`FixedHeartbeat` (Section 7.1's software heartbeat)."""
    return FixedHeartbeat(epoch_size).partition(program)


def partition_with_skew(
    program: TraceProgram,
    epoch_size: int,
    max_skew: int,
    rng: Optional[random.Random] = None,
) -> EpochPartition:
    """Cut with :class:`SkewedHeartbeat` (jittered heartbeat delivery)."""
    return SkewedHeartbeat(epoch_size, max_skew, rng=rng).partition(program)


def partition_auto(program: TraceProgram, epoch_size: int) -> EpochPartition:
    """Cut with :class:`AutoHeartbeat` (the substrate's default rule)."""
    return AutoHeartbeat(epoch_size).partition(program)


def partition_from_boundaries(
    program: TraceProgram, boundaries: Sequence[Sequence[int]]
) -> EpochPartition:
    """Cut with :class:`ExplicitHeartbeat` (recorded/custom cut points)."""
    return ExplicitHeartbeat(boundaries).partition(program)


def partition_by_global_order(
    program: TraceProgram, epoch_size: int
) -> EpochPartition:
    """Cut with :class:`GlobalOrderHeartbeat` (footnote 4's global time)."""
    return GlobalOrderHeartbeat(epoch_size).partition(program)
