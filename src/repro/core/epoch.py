"""Uncertainty epochs and blocks (paper Section 4.1).

A heartbeat signal partitions each thread's dynamic trace into *blocks*;
the ``l``-th block of every thread together forms *epoch* ``l``.  Epoch
boundaries are not synchronized across threads (heartbeat delivery skews),
so blocks within an epoch may have different sizes -- the model only
guarantees that instructions in non-adjacent epochs are strictly ordered.

A block is addressed by ``(l, t)`` and an instruction by ``(l, t, i)``
with ``i`` an offset from the block start, exactly the paper's notation.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.columnar import ColumnarBlock
from repro.errors import PartitionError
from repro.trace.events import Instr
from repro.trace.program import GlobalRef, TraceProgram

#: A block address (epoch id, thread id).
BlockId = Tuple[int, int]
#: An instruction address (epoch id, thread id, offset in block).
InstrId = Tuple[int, int, int]


class Block:
    """A contiguous run of one thread's instructions within one epoch.

    A block holds its events in one (or both) of two representations:
    a tuple of :class:`Instr` objects (the *object* path every
    reference implementation iterates) and a
    :class:`~repro.core.columnar.ColumnarBlock` of parallel arrays (the
    *fast* path vector kernels scan).  Either may be supplied at
    construction; the other is derived lazily on first use and cached,
    so code that never touches ``.instrs`` on a columnar-backed block
    never pays for materializing objects.

    Blocks are immutable value objects: equality and hashing use the
    block address plus event content, matching the previous frozen
    dataclass.  Pickling prefers the columnar form -- a few flat byte
    strings instead of a tree of per-event objects -- which is what
    makes process-pool task payloads cheap.
    """

    __slots__ = ("lid", "tid", "start", "_instrs", "_columns")

    def __init__(
        self,
        lid: int,
        tid: int,
        start: int,
        instrs: Optional[Tuple[Instr, ...]] = None,
        columns: Optional[ColumnarBlock] = None,
    ) -> None:
        if instrs is None and columns is None:
            raise TypeError("Block needs instrs or columns (or both)")
        self.lid = lid
        self.tid = tid
        #: offset of the first instruction within the thread trace
        self.start = start
        self._instrs = None if instrs is None else tuple(instrs)
        self._columns = columns

    @property
    def instrs(self) -> Tuple[Instr, ...]:
        """The events as ``Instr`` objects (materialized on demand)."""
        if self._instrs is None:
            self._instrs = self._columns.to_instrs()
        return self._instrs

    @property
    def columns(self) -> ColumnarBlock:
        """The events as parallel columns (converted on demand)."""
        if self._columns is None:
            self._columns = ColumnarBlock.from_instrs(self._instrs)
        return self._columns

    @property
    def has_columns(self) -> bool:
        """Whether the columnar form already exists (conversion-free)."""
        return self._columns is not None

    @property
    def block_id(self) -> BlockId:
        return (self.lid, self.tid)

    def __len__(self) -> int:
        if self._instrs is not None:
            return len(self._instrs)
        return len(self._columns)

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def iter_ids(self) -> Iterator[Tuple[InstrId, Instr]]:
        """Iterate ``((l, t, i), instr)`` pairs."""
        for i, instr in enumerate(self.instrs):
            yield (self.lid, self.tid, i), instr

    def global_ref(self, i: int) -> GlobalRef:
        """Map offset ``i`` back to a ``(thread, trace index)`` ref."""
        return (self.tid, self.start + i)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Block):
            return NotImplemented
        if (self.lid, self.tid, self.start) != (other.lid, other.tid, other.start):
            return False
        # Compare in whichever representation avoids materialization.
        if self._instrs is None and other._instrs is None:
            return self._columns == other._columns
        return self.instrs == other.instrs

    def __hash__(self) -> int:
        return hash((self.lid, self.tid, self.start, len(self)))

    def __repr__(self) -> str:
        return (
            f"Block(lid={self.lid}, tid={self.tid}, start={self.start}, "
            f"len={len(self)})"
        )

    def __getstate__(self):
        # Ship columns, never Instr objects: the columnar wire form is
        # flat bytes, so pool tasks carry no per-event object graph.
        return (self.lid, self.tid, self.start, self.columns)

    def __setstate__(self, state) -> None:
        self.lid, self.tid, self.start, self._columns = state
        self._instrs = None


class EpochPartition:
    """A trace program cut into epochs.

    ``boundaries[t]`` is the strictly increasing list of cut points in
    thread ``t``'s trace (exclusive block ends), with the final entry
    equal to the trace length.  All threads have the same number of
    blocks (trailing blocks may be empty), so every epoch is a full row.
    """

    def __init__(
        self, program: TraceProgram, boundaries: Sequence[Sequence[int]]
    ) -> None:
        if len(boundaries) != program.num_threads:
            raise PartitionError(
                "need one boundary list per thread "
                f"({len(boundaries)} given, {program.num_threads} threads)"
            )
        num_epochs = None
        for t, cuts in enumerate(boundaries):
            n = len(program.threads[t])
            if not cuts or cuts[-1] != n:
                raise PartitionError(
                    f"thread {t}: boundaries must end at trace length {n}"
                )
            if any(b < a for a, b in zip(cuts, cuts[1:])):
                raise PartitionError(f"thread {t}: boundaries must be sorted")
            if any(c < 0 for c in cuts):
                raise PartitionError(f"thread {t}: negative boundary")
            if num_epochs is None:
                num_epochs = len(cuts)
            elif len(cuts) != num_epochs:
                raise PartitionError(
                    "all threads must have the same epoch count "
                    f"(thread {t} has {len(cuts)}, expected {num_epochs})"
                )
        self.program = program
        self.boundaries = [list(cuts) for cuts in boundaries]
        self._num_epochs = num_epochs or 0
        self._blocks: dict = {}

    # -- shape --------------------------------------------------------

    @property
    def num_epochs(self) -> int:
        return self._num_epochs

    @property
    def num_threads(self) -> int:
        return self.program.num_threads

    # -- access ---------------------------------------------------------

    def block(self, lid: int, tid: int) -> Block:
        """The block ``(l, t)``; empty tuple blocks are legal."""
        key = (lid, tid)
        cached = self._blocks.get(key)
        if cached is not None:
            return cached
        if not 0 <= lid < self._num_epochs:
            raise PartitionError(f"epoch {lid} out of range")
        if not 0 <= tid < self.num_threads:
            raise PartitionError(f"thread {tid} out of range")
        cuts = self.boundaries[tid]
        start = cuts[lid - 1] if lid > 0 else 0
        end = cuts[lid]
        blk = Block(
            lid, tid, start, tuple(self.program.threads[tid].instrs[start:end])
        )
        self._blocks[key] = blk
        return blk

    def epoch_blocks(self, lid: int) -> List[Block]:
        """All blocks in epoch ``l``, one per thread."""
        return [self.block(lid, t) for t in range(self.num_threads)]

    def iter_blocks(self) -> Iterator[Block]:
        for lid in range(self._num_epochs):
            for tid in range(self.num_threads):
                yield self.block(lid, tid)

    def evict_blocks(self, older_than: int) -> None:
        """Drop cached :class:`Block` objects for epochs ``< older_than``.

        The cache is semantically transparent -- :meth:`block` rebuilds
        an evicted entry on demand -- but left alone it grows one entry
        per block ever touched, O(total blocks).  The engine (and
        :class:`~repro.core.stream.PartitionSource`) evict it in step
        with the sliding window so a long run's bookkeeping stays
        O(window).
        """
        for key in [k for k in self._blocks if k[0] < older_than]:
            del self._blocks[key]

    def instr(self, iid: InstrId) -> Instr:
        lid, tid, i = iid
        return self.block(lid, tid).instrs[i]

    def epoch_of(self, tid: int, trace_index: int) -> int:
        """Which epoch the ``trace_index``-th instruction of thread ``t``
        landed in."""
        cuts = self.boundaries[tid]
        lo, hi = 0, len(cuts) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if trace_index < cuts[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def instr_id_of(self, tid: int, trace_index: int) -> InstrId:
        lid = self.epoch_of(tid, trace_index)
        start = self.boundaries[tid][lid - 1] if lid > 0 else 0
        return (lid, tid, trace_index - start)

    def global_ref_of(self, iid: InstrId) -> GlobalRef:
        lid, tid, i = iid
        return self.block(lid, tid).global_ref(i)


# ---------------------------------------------------------------------------
# Partition constructors
# ---------------------------------------------------------------------------


def partition_fixed(program: TraceProgram, epoch_size: int) -> EpochPartition:
    """Cut every thread into blocks of exactly ``epoch_size`` instructions.

    This is the LBA software heartbeat of Section 7.1: a marker is
    inserted into each thread's log every ``h`` instructions.
    """
    if epoch_size < 1:
        raise PartitionError("epoch_size must be >= 1")
    lengths = [len(t) for t in program.threads]
    num_epochs = max(
        1, max((n + epoch_size - 1) // epoch_size for n in lengths) if lengths else 1
    )
    boundaries = []
    for n in lengths:
        cuts = [min((k + 1) * epoch_size, n) for k in range(num_epochs)]
        boundaries.append(cuts)
    return EpochPartition(program, boundaries)


def partition_with_skew(
    program: TraceProgram,
    epoch_size: int,
    max_skew: int,
    rng: Optional[random.Random] = None,
) -> EpochPartition:
    """Fixed-size epochs with per-thread heartbeat delivery jitter.

    Each boundary lands within ``max_skew`` instructions of its nominal
    position, modelling non-simultaneous heartbeat reception (Section
    4.1).  ``max_skew`` must be less than half the epoch size so that
    blocks never invert.
    """
    if epoch_size < 1:
        raise PartitionError("epoch_size must be >= 1")
    if max_skew < 0 or 2 * max_skew >= epoch_size:
        raise PartitionError("max_skew must satisfy 0 <= 2*skew < epoch_size")
    rng = rng or random.Random(0)
    lengths = [len(t) for t in program.threads]
    num_epochs = max(
        1, max((n + epoch_size - 1) // epoch_size for n in lengths) if lengths else 1
    )
    boundaries = []
    for n in lengths:
        cuts = []
        for k in range(num_epochs - 1):
            nominal = (k + 1) * epoch_size
            jitter = rng.randint(-max_skew, max_skew)
            cuts.append(max(0, min(nominal + jitter, n)))
        cuts.append(n)
        # Jitter near the trace tail can produce non-monotone cuts; clamp.
        for k in range(1, len(cuts)):
            cuts[k] = max(cuts[k], cuts[k - 1])
        boundaries.append(cuts)
    return EpochPartition(program, boundaries)


def partition_auto(program: TraceProgram, epoch_size: int) -> EpochPartition:
    """The LBA substrate's default cutting rule: heartbeats fire in
    *execution time* when the trace recorded its ground-truth global
    order (paper footnote 4), and per-thread instruction counts
    otherwise.  Shared by the CLI, the LBA simulator and the streaming
    trace writer so every path cuts a given trace identically."""
    if program.true_order is not None:
        return partition_by_global_order(program, epoch_size)
    return partition_fixed(program, epoch_size)


def partition_from_boundaries(
    program: TraceProgram, boundaries: Sequence[Sequence[int]]
) -> EpochPartition:
    """Explicit per-thread cut points (tests and custom heartbeats)."""
    return EpochPartition(program, boundaries)


def partition_by_global_order(
    program: TraceProgram, epoch_size: int
) -> EpochPartition:
    """Heartbeats in *global execution time* (the paper's footnote 4).

    The LBA prototype issues a heartbeat after ``h * n`` instructions
    have executed across all ``n`` application threads, cutting every
    thread's log at its position *at that moment*; block sizes therefore
    differ across threads ("Butterfly analysis does not require balanced
    workloads within an epoch").  Requires the trace's recorded
    ground-truth order as the notion of time.
    """
    if epoch_size < 1:
        raise PartitionError("epoch_size must be >= 1")
    order = program.recorded_order()
    n = program.num_threads
    interval = epoch_size * n
    positions = [0] * n
    boundaries: List[List[int]] = [[] for _ in range(n)]
    for count, (t, _i) in enumerate(order, start=1):
        positions[t] += 1
        if count % interval == 0:
            for tid in range(n):
                boundaries[tid].append(positions[tid])
    # Close the final epoch at each trace's end.
    lengths = [len(tr) for tr in program.threads]
    for tid in range(n):
        if not boundaries[tid] or boundaries[tid][-1] != lengths[tid]:
            boundaries[tid].append(lengths[tid])
        else:
            # The last heartbeat landed exactly at the end; still add a
            # final (possibly empty) epoch so every thread agrees.
            boundaries[tid].append(lengths[tid])
    return EpochPartition(program, boundaries)
