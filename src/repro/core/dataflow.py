"""GEN/KILL primitives shared by every butterfly analysis.

Butterfly analysis reuses classic dataflow vocabulary (paper Section 5):
instructions *generate* and *kill* elements, blocks summarize those
effects, and four new primitives (GEN-SIDE-OUT/IN, KILL-SIDE-OUT/IN)
capture what a block exposes to, and absorbs from, the wings.

The element universe is unbounded (definitions are dynamic instruction
sites; expressions range over all operand combinations), so kill sets
cannot be materialized.  Instead each analysis supplies an
:class:`ElementDomain` describing (a) which elements an instruction
generates and (b) which *variables* (locations) an instruction's writes
clobber; an element is killed by a write to any of its variables.  Block
summaries then answer ``gens(e)`` / ``kills(e)`` queries symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Protocol,
    Set,
    Tuple,
)

from repro.core.epoch import Block, InstrId
from repro.trace.events import Instr, Op

Element = Hashable
Var = int


@dataclass(frozen=True)
class Definition:
    """A dynamic definition: location ``var`` written at ``site``.

    ``site`` is the defining instruction's ``(l, t, i)`` id, playing the
    role of the static program point in classic reaching definitions.
    """

    var: Var
    site: InstrId

    @property
    def epoch(self) -> int:
        return self.site[0]

    @property
    def thread(self) -> int:
        return self.site[1]


@dataclass(frozen=True)
class Expression:
    """An available expression over operand locations.

    ``operands`` is the sorted tuple of source locations; ``tag``
    distinguishes operators so ``a+b`` and ``a-b`` are different
    expressions over the same operands.
    """

    operands: Tuple[Var, ...]
    tag: str = "expr"

    @staticmethod
    def of(*operands: Var, tag: str = "expr") -> "Expression":
        return Expression(tuple(sorted(operands)), tag)


class ElementDomain(Protocol):
    """What a specific analysis tracks.

    ``gen_of`` yields the elements an instruction generates;
    ``kill_vars_of`` yields the locations whose (re)definition kills
    elements; ``element_vars`` says which locations an element depends
    on (a write to any of them kills it).
    """

    def gen_of(self, instr: Instr, iid: InstrId) -> Iterable[Element]:
        ...

    def kill_vars_of(self, instr: Instr) -> Iterable[Var]:
        ...

    def element_vars(self, element: Element) -> Iterable[Var]:
        ...


class DefinitionDomain:
    """Reaching definitions: WRITE/ASSIGN/MALLOC-style events define
    their destination; any redefinition of the same location kills."""

    _DEFINING = frozenset({Op.WRITE, Op.ASSIGN, Op.TAINT, Op.UNTAINT})

    def gen_of(self, instr: Instr, iid: InstrId) -> Iterable[Element]:
        if instr.op in self._DEFINING and instr.dst is not None:
            yield Definition(instr.dst, iid)

    def kill_vars_of(self, instr: Instr) -> Iterable[Var]:
        if instr.op in self._DEFINING and instr.dst is not None:
            yield instr.dst

    def element_vars(self, element: Element) -> Iterable[Var]:
        assert isinstance(element, Definition)
        yield element.var


class ExpressionDomain:
    """Reaching (available) expressions: an ASSIGN with sources computes
    an expression; writing any operand kills it."""

    _DEFINING = frozenset({Op.WRITE, Op.ASSIGN, Op.TAINT, Op.UNTAINT})

    def gen_of(self, instr: Instr, iid: InstrId) -> Iterable[Element]:
        if instr.op is Op.ASSIGN and instr.srcs:
            yield Expression.of(*instr.srcs)

    def kill_vars_of(self, instr: Instr) -> Iterable[Var]:
        if instr.op in self._DEFINING and instr.dst is not None:
            yield instr.dst

    def element_vars(self, element: Element) -> Iterable[Var]:
        assert isinstance(element, Expression)
        return element.operands


@dataclass
class BlockFacts:
    """Per-block GEN/KILL summary (paper's GEN_{l,t} / KILL_{l,t} plus the
    side-out views).

    Attributes
    ----------
    block_id:
        The summarized block.
    gen:
        Downward-exposed elements: generated and not subsequently killed
        -- the classic ``GEN`` of the block.
    all_gen:
        Every element generated anywhere in the block.  Because the body
        of another butterfly may interleave between any two wing
        instructions, this is the block's ``GEN-SIDE-OUT``.
    killed_vars:
        Every location whose writes kill elements, anywhere in the
        block.  This is the symbolic ``KILL-SIDE-OUT``: element ``e`` is
        side-killed iff ``vars(e)`` meets this set.
    last_event:
        For elements generated *in this block*, whether the last
        relevant event was a ``gen`` or a ``kill`` -- resolves the block
        GEN/KILL membership of local elements exactly.
    all_gen_mask / killed_mask:
        Optional interned-bitset encodings of ``all_gen`` and
        ``killed_vars`` (see :mod:`repro.core.bitset`), filled in by the
        owning analysis at commit time so wing meets collapse to bitwise
        ORs.  ``None`` when the analysis does not use bitsets.
    """

    block_id: Tuple[int, int]
    gen: Set[Element] = field(default_factory=set)
    all_gen: Set[Element] = field(default_factory=set)
    killed_vars: Set[Var] = field(default_factory=set)
    last_event: Dict[Element, str] = field(default_factory=dict)
    all_gen_mask: Optional[int] = None
    killed_mask: Optional[int] = None

    def gens(self, element: Element) -> bool:
        """Block-level GEN membership (downward-exposed)."""
        return element in self.gen

    def kills(self, element: Element, domain: ElementDomain) -> bool:
        """Block-level KILL membership: the last event affecting
        ``element`` on the block's single path is a kill."""
        state = self.last_event.get(element)
        if state is not None:
            return state == "kill"
        return any(v in self.killed_vars for v in domain.element_vars(element))

    def side_kills(self, element: Element, domain: ElementDomain) -> bool:
        """KILL-SIDE-OUT membership: killed at *some* point, regardless
        of later regeneration (the paper's union over instructions)."""
        return any(v in self.killed_vars for v in domain.element_vars(element))


def summarize_block(block: Block, domain: ElementDomain) -> BlockFacts:
    """First-pass walk computing a block's GEN/KILL facts in one scan."""
    facts = BlockFacts(block_id=block.block_id)
    # Elements currently downward-exposed, indexed by variable so a
    # write kills them in O(defs of that var).
    exposed_by_var: Dict[Var, Set[Element]] = {}
    for iid, instr in block.iter_ids():
        for var in domain.kill_vars_of(instr):
            facts.killed_vars.add(var)
            for element in exposed_by_var.pop(var, ()):
                # A multi-var element may still be indexed under its
                # other vars; drop it everywhere.
                if element in facts.gen:
                    facts.gen.discard(element)
                    facts.last_event[element] = "kill"
                    for other in domain.element_vars(element):
                        if other != var:
                            exposed_by_var.get(other, set()).discard(element)
        for element in domain.gen_of(instr, iid):
            facts.gen.add(element)
            facts.all_gen.add(element)
            facts.last_event[element] = "gen"
            for var in domain.element_vars(element):
                exposed_by_var.setdefault(var, set()).add(element)
    return facts


def union_side_out_gen(wing_facts: Iterable[BlockFacts]) -> Set[Element]:
    """GEN-SIDE-IN: the meet (union) of the wings' GEN-SIDE-OUT."""
    side_in: Set[Element] = set()
    for facts in wing_facts:
        side_in |= facts.all_gen
    return side_in


def union_side_out_kill(wing_facts: Iterable[BlockFacts]) -> Set[Var]:
    """KILL-SIDE-IN as a symbolic var set: the union of the wings'
    KILL-SIDE-OUT (paper Section 5.2: the meet is union, not the
    classic intersection)."""
    side_in: Set[Var] = set()
    for facts in wing_facts:
        side_in |= facts.killed_vars
    return side_in
