"""GEN/KILL primitives shared by every butterfly analysis.

Butterfly analysis reuses classic dataflow vocabulary (paper Section 5):
instructions *generate* and *kill* elements, blocks summarize those
effects, and four new primitives (GEN-SIDE-OUT/IN, KILL-SIDE-OUT/IN)
capture what a block exposes to, and absorbs from, the wings.

The element universe is unbounded (definitions are dynamic instruction
sites; expressions range over all operand combinations), so kill sets
cannot be materialized.  Instead each analysis supplies an
:class:`ElementDomain` describing (a) which elements an instruction
generates and (b) which *variables* (locations) an instruction's writes
clobber; an element is killed by a write to any of its variables.  Block
summaries then answer ``gens(e)`` / ``kills(e)`` queries symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

from repro.core.columnar import (
    HAVE_NUMPY,
    NO_DST,
    OP_ASSIGN,
    OP_TAINT,
    OP_UNTAINT,
    OP_WRITE,
    np,
)
from repro.core.epoch import Block, InstrId
from repro.trace.events import Instr, Op

Element = Hashable
Var = int


@dataclass(frozen=True)
class Definition:
    """A dynamic definition: location ``var`` written at ``site``.

    ``site`` is the defining instruction's ``(l, t, i)`` id, playing the
    role of the static program point in classic reaching definitions.
    """

    var: Var
    site: InstrId

    @property
    def epoch(self) -> int:
        return self.site[0]

    @property
    def thread(self) -> int:
        return self.site[1]


@dataclass(frozen=True)
class Expression:
    """An available expression over operand locations.

    ``operands`` is the sorted tuple of source locations; ``tag``
    distinguishes operators so ``a+b`` and ``a-b`` are different
    expressions over the same operands.
    """

    operands: Tuple[Var, ...]
    tag: str = "expr"

    @staticmethod
    def of(*operands: Var, tag: str = "expr") -> "Expression":
        return Expression(tuple(sorted(operands)), tag)


class ElementDomain(Protocol):
    """What a specific analysis tracks.

    ``gen_of`` yields the elements an instruction generates;
    ``kill_vars_of`` yields the locations whose (re)definition kills
    elements; ``element_vars`` says which locations an element depends
    on (a write to any of them kills it).
    """

    def gen_of(self, instr: Instr, iid: InstrId) -> Iterable[Element]:
        ...

    def kill_vars_of(self, instr: Instr) -> Iterable[Var]:
        ...

    def element_vars(self, element: Element) -> Iterable[Var]:
        ...


class DefinitionDomain:
    """Reaching definitions: WRITE/ASSIGN/MALLOC-style events define
    their destination; any redefinition of the same location kills."""

    _DEFINING = frozenset({Op.WRITE, Op.ASSIGN, Op.TAINT, Op.UNTAINT})

    #: Op codes of events with any GEN/KILL effect -- the columnar
    #: summarizer's one-LUT-pass row filter.  Every relevant row both
    #: defines and kills its ``dst`` (when present).
    relevant_codes = (OP_WRITE, OP_ASSIGN, OP_TAINT, OP_UNTAINT)

    def gen_of(self, instr: Instr, iid: InstrId) -> Iterable[Element]:
        if instr.op in self._DEFINING and instr.dst is not None:
            yield Definition(instr.dst, iid)

    def kill_vars_of(self, instr: Instr) -> Iterable[Var]:
        if instr.op in self._DEFINING and instr.dst is not None:
            yield instr.dst

    def element_vars(self, element: Element) -> Iterable[Var]:
        assert isinstance(element, Definition)
        yield element.var

    def row_gen(
        self, code: int, dst: int, srcs: Sequence[int], iid: InstrId
    ) -> Tuple[Element, ...]:
        """Columnar twin of :meth:`gen_of` for a relevant row."""
        return (Definition(dst, iid),)


class ExpressionDomain:
    """Reaching (available) expressions: an ASSIGN with sources computes
    an expression; writing any operand kills it."""

    _DEFINING = frozenset({Op.WRITE, Op.ASSIGN, Op.TAINT, Op.UNTAINT})

    #: See :attr:`DefinitionDomain.relevant_codes`.
    relevant_codes = (OP_WRITE, OP_ASSIGN, OP_TAINT, OP_UNTAINT)

    def gen_of(self, instr: Instr, iid: InstrId) -> Iterable[Element]:
        if instr.op is Op.ASSIGN and instr.srcs:
            yield Expression.of(*instr.srcs)

    def kill_vars_of(self, instr: Instr) -> Iterable[Var]:
        if instr.op in self._DEFINING and instr.dst is not None:
            yield instr.dst

    def element_vars(self, element: Element) -> Iterable[Var]:
        assert isinstance(element, Expression)
        return element.operands

    def row_gen(
        self, code: int, dst: int, srcs: Sequence[int], iid: InstrId
    ) -> Tuple[Element, ...]:
        """Columnar twin of :meth:`gen_of` for a relevant row."""
        if code == OP_ASSIGN and srcs:
            return (Expression.of(*srcs),)
        return ()


@dataclass
class BlockFacts:
    """Per-block GEN/KILL summary (paper's GEN_{l,t} / KILL_{l,t} plus the
    side-out views).

    Attributes
    ----------
    block_id:
        The summarized block.
    gen:
        Downward-exposed elements: generated and not subsequently killed
        -- the classic ``GEN`` of the block.
    all_gen:
        Every element generated anywhere in the block.  Because the body
        of another butterfly may interleave between any two wing
        instructions, this is the block's ``GEN-SIDE-OUT``.
    killed_vars:
        Every location whose writes kill elements, anywhere in the
        block.  This is the symbolic ``KILL-SIDE-OUT``: element ``e`` is
        side-killed iff ``vars(e)`` meets this set.
    last_event:
        For elements generated *in this block*, whether the last
        relevant event was a ``gen`` or a ``kill`` -- resolves the block
        GEN/KILL membership of local elements exactly.
    all_gen_mask / killed_mask:
        Optional interned-bitset encodings of ``all_gen`` and
        ``killed_vars`` (see :mod:`repro.core.bitset`), filled in by the
        owning analysis at commit time so wing meets collapse to bitwise
        ORs.  ``None`` when the analysis does not use bitsets.
    """

    block_id: Tuple[int, int]
    gen: Set[Element] = field(default_factory=set)
    all_gen: Set[Element] = field(default_factory=set)
    killed_vars: Set[Var] = field(default_factory=set)
    last_event: Dict[Element, str] = field(default_factory=dict)
    all_gen_mask: Optional[int] = None
    killed_mask: Optional[int] = None

    def gens(self, element: Element) -> bool:
        """Block-level GEN membership (downward-exposed)."""
        return element in self.gen

    def kills(self, element: Element, domain: ElementDomain) -> bool:
        """Block-level KILL membership: the last event affecting
        ``element`` on the block's single path is a kill."""
        state = self.last_event.get(element)
        if state is not None:
            return state == "kill"
        return any(v in self.killed_vars for v in domain.element_vars(element))

    def side_kills(self, element: Element, domain: ElementDomain) -> bool:
        """KILL-SIDE-OUT membership: killed at *some* point, regardless
        of later regeneration (the paper's union over instructions)."""
        return any(v in self.killed_vars for v in domain.element_vars(element))


if HAVE_NUMPY:
    #: Boolean row-filter LUTs keyed by a domain's ``relevant_codes``.
    _RELEVANT_LUTS: Dict[Tuple[int, ...], "numpy.ndarray"] = {}

    def _relevant_lut(codes: Tuple[int, ...]):
        lut = _RELEVANT_LUTS.get(codes)
        if lut is None:
            lut = np.zeros(256, dtype=bool)
            lut[list(codes)] = True
            _RELEVANT_LUTS[codes] = lut
        return lut


def summarize_block(block: Block, domain: ElementDomain) -> BlockFacts:
    """First-pass walk computing a block's GEN/KILL facts in one scan.

    When numpy is available, the block is columnar-backed, and the
    domain advertises ``relevant_codes`` (plus the ``row_gen`` twin of
    ``gen_of``), the scan runs as a vector kernel: one LUT pass over
    the op column selects the GEN/KILL-relevant rows, a CSR gather
    pulls just those rows' fields, and the exposure bookkeeping loop
    touches only the selection -- bit-identical facts, without
    materializing ``Instr`` objects for the (typically READ-dominated)
    irrelevant remainder.
    """
    codes = getattr(domain, "relevant_codes", None)
    if HAVE_NUMPY and codes is not None and block.has_columns:
        return _summarize_columns(block, domain, codes)
    facts = BlockFacts(block_id=block.block_id)
    # Elements currently downward-exposed, indexed by variable so a
    # write kills them in O(defs of that var).
    exposed_by_var: Dict[Var, Set[Element]] = {}
    for iid, instr in block.iter_ids():
        for var in domain.kill_vars_of(instr):
            facts.killed_vars.add(var)
            for element in exposed_by_var.pop(var, ()):
                # A multi-var element may still be indexed under its
                # other vars; drop it everywhere.
                if element in facts.gen:
                    facts.gen.discard(element)
                    facts.last_event[element] = "kill"
                    for other in domain.element_vars(element):
                        if other != var:
                            exposed_by_var.get(other, set()).discard(element)
        for element in domain.gen_of(instr, iid):
            facts.gen.add(element)
            facts.all_gen.add(element)
            facts.last_event[element] = "gen"
            for var in domain.element_vars(element):
                exposed_by_var.setdefault(var, set()).add(element)
    return facts


def _summarize_columns(
    block: Block, domain: ElementDomain, codes: Tuple[int, ...]
) -> BlockFacts:
    """Columnar fast path of :func:`summarize_block` (same semantics,
    relevant rows only; every relevant row kills its ``dst`` and
    generates ``domain.row_gen(...)``)."""
    facts = BlockFacts(block_id=block.block_id)
    cols = block.columns
    if cols.length == 0:
        return facts
    idx = np.flatnonzero(_relevant_lut(codes)[np.asarray(cols.op)])
    if idx.shape[0] == 0:
        return facts
    sel_codes, sel_dst, bounds, flat_srcs = cols.gather(idx)
    lid, tid = block.block_id
    row_gen = domain.row_gen
    element_vars = domain.element_vars
    gen = facts.gen
    all_gen = facts.all_gen
    killed_vars = facts.killed_vars
    last_event = facts.last_event
    exposed_by_var: Dict[Var, Set[Element]] = {}
    for k, i in enumerate(idx.tolist()):
        var = sel_dst[k]
        if var == NO_DST:
            continue
        killed_vars.add(var)
        for element in exposed_by_var.pop(var, ()):
            if element in gen:
                gen.discard(element)
                last_event[element] = "kill"
                for other in element_vars(element):
                    if other != var:
                        exposed_by_var.get(other, set()).discard(element)
        srcs = flat_srcs[bounds[k]:bounds[k + 1]]
        for element in row_gen(sel_codes[k], var, srcs, (lid, tid, i)):
            gen.add(element)
            all_gen.add(element)
            last_event[element] = "gen"
            for v in element_vars(element):
                exposed_by_var.setdefault(v, set()).add(element)
    return facts


def union_side_out_gen(wing_facts: Iterable[BlockFacts]) -> Set[Element]:
    """GEN-SIDE-IN: the meet (union) of the wings' GEN-SIDE-OUT."""
    side_in: Set[Element] = set()
    for facts in wing_facts:
        side_in |= facts.all_gen
    return side_in


def union_side_out_kill(wing_facts: Iterable[BlockFacts]) -> Set[Var]:
    """KILL-SIDE-IN as a symbolic var set: the union of the wings'
    KILL-SIDE-OUT (paper Section 5.2: the meet is union, not the
    classic intersection)."""
    side_in: Set[Var] = set()
    for facts in wing_facts:
        side_in |= facts.killed_vars
    return side_in
