"""Dynamic parallel reaching definitions (paper Section 5.1).

Elements are :class:`~repro.core.dataflow.Definition` values -- a
location plus the dynamic instruction site ``(l, t, i)`` that wrote it.
A definition *reaches* a point if **some** valid ordering delivers it
there un-clobbered (exists-semantics), so:

- generating is *global*: any definition a wing block produces anywhere
  may reach the body (``GEN-SIDE-OUT`` is the union over instructions);
- killing is *local*: a wing kill says nothing about other paths, so
  ``KILL-SIDE-OUT`` is conservatively empty (the paper sets it to the
  universe-complement; equivalently, side kills are never applied).

Epoch-level GEN/KILL and the SOS/LSOS update rules follow Sections
5.1.1-5.1.3; the module docstrings of the individual methods spell out
the exact instantiation of each equation at definition granularity
(definition sites are unique, which collapses the paper's
``GEN/KILL_{(l-1,l),t'}`` window terms to a downward-exposure test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.bitset import BitInterner, compose_mask
from repro.core.dataflow import (
    BlockFacts,
    Definition,
    DefinitionDomain,
    ElementDomain,
    summarize_block,
    union_side_out_gen,
)
from repro.core.epoch import Block, BlockId, InstrId
from repro.core.framework import ButterflyAnalysis
from repro.core.state import SOSHistory
from repro.core.window import Butterfly

#: Callback invoked with (instr id, instruction, IN set) during the
#: second pass -- the hook a lifeguard writer uses to install checks.
InstrHook = Callable[[InstrId, object, FrozenSet[Definition]], None]


@dataclass(frozen=True)
class FactsScanner:
    """Picklable first-pass work unit: summarize one block.

    Carries only the (stateless) element domain, so it crosses process
    boundaries for the ``processes`` backend.
    """

    domain: ElementDomain

    def __call__(self, block: Block, context: Any) -> BlockFacts:
        return summarize_block(block, self.domain)


def _definition_order(d: Definition) -> Tuple[int, InstrId]:
    """Hash-independent interning order for fresh definitions."""
    return (d.var, d.site)


class ReachingDefinitions(
    ButterflyAnalysis[BlockFacts, Set[Definition]]
):
    """The generic reaching-definitions lifeguard of Section 5.1.

    After a run (via :class:`~repro.core.framework.ButterflyEngine`),
    exposes per-block ``IN``/``OUT`` sets, the LSOS used for each body,
    and the published SOS history.
    """

    def __init__(
        self,
        on_instruction: Optional[InstrHook] = None,
        keep_history: bool = True,
        use_mask_kernel: Optional[bool] = None,
    ) -> None:
        self.domain = DefinitionDomain()
        self.sos = SOSHistory()
        self.on_instruction = on_instruction
        self.keep_history = keep_history
        self.facts: Dict[BlockId, BlockFacts] = {}
        self.block_in: Dict[BlockId, FrozenSet[Definition]] = {}
        self.block_out: Dict[BlockId, FrozenSet[Definition]] = {}
        self.block_lsos: Dict[BlockId, FrozenSet[Definition]] = {}
        self.side_in: Dict[BlockId, FrozenSet[Definition]] = {}
        self._def_bits = BitInterner()
        # The instruction hook is an arbitrary (often unpicklable)
        # closure with ordering expectations, so parallelism is only
        # offered for the hook-free analysis.
        self.parallel_first_pass = on_instruction is None
        self.parallel_second_pass = on_instruction is None
        # The mask kernel evaluates the second pass (LSOS, body OUT) and
        # the epoch SOS update as word operations over interned-bitset
        # masks -- bit-identical to the per-element walk, but without
        # per-definition Python dispatch.  It requires the hook-free
        # analysis (a hook must observe IN at every instruction);
        # ``use_mask_kernel=False`` forces the scalar reference path
        # (the differential tests compare the two).
        if use_mask_kernel and on_instruction is not None:
            raise ValueError(
                "use_mask_kernel requires a hook-free analysis "
                "(on_instruction must be None)"
            )
        self._masked = on_instruction is None and use_mask_kernel is not False
        #: Per-location mask of every interned definition of that
        #: location -- turns "kill all defs of vars V" into an OR+ANDNOT.
        self._var_defs: Dict[int, int] = {}
        #: Per-epoch, per-thread masks of downward-exposed defs
        #: (``BlockFacts.gen``), filled on the serial commit path.
        self._epoch_gen: Dict[int, Dict[int, int]] = {}
        #: Mask form of each published ``SOS_l``.
        self._sos_masks: Dict[int, int] = {0: 0, 1: 0}

    # -- step 1 ----------------------------------------------------------

    def make_scanner(self) -> FactsScanner:
        return FactsScanner(self.domain)

    def commit_scan(self, block: Block, scan: BlockFacts) -> BlockFacts:
        """Store the block facts; intern GEN-SIDE-OUT to a bitset so the
        wing meet is a bitwise OR.

        Under the mask kernel this also indexes the fresh definitions by
        location (``_var_defs``) and records the block's
        downward-exposed GEN as a mask, so every later stage -- LSOS,
        body OUT, the epoch SOS update -- runs as word operations.
        """
        scan.all_gen_mask = self._def_bits.mask(
            scan.all_gen, sort_key=_definition_order
        )
        self.facts[block.block_id] = scan
        if self._masked:
            bit = self._def_bits.bit
            by_var: Dict[int, List[int]] = {}
            for d in scan.all_gen:
                by_var.setdefault(d.var, []).append(bit(d))
            var_defs = self._var_defs
            for var, bits in by_var.items():
                var_defs[var] = var_defs.get(var, 0) | compose_mask(bits)
            lid, tid = block.block_id
            self._epoch_gen.setdefault(lid, {})[tid] = compose_mask(
                [bit(d) for d in scan.gen]
            )
        return scan

    # -- step 2 ------------------------------------------------------------

    def meet(
        self, butterfly: Butterfly, wing_summaries: List[BlockFacts]
    ) -> Set[Definition]:
        """GEN-SIDE-IN: union of the wings' GEN-SIDE-OUT (meet is union).

        With interned summaries the union is a single OR over the wing
        masks, decoded once.
        """
        mask = 0
        for facts in wing_summaries:
            if facts.all_gen_mask is None:
                return union_side_out_gen(wing_summaries)
            mask |= facts.all_gen_mask
        if self._masked and not self.keep_history:
            # Neither check_body (closed form) nor commit_check (no
            # history) reads GEN-SIDE-IN element-wise; keep the mask.
            return mask
        return set(self._def_bits.decode(mask))

    # -- step 3 ------------------------------------------------------------

    def check_body(
        self, butterfly: Butterfly, side_in: Set[Definition]
    ) -> Tuple[Any, Any]:
        """Walk the body computing ``IN_{l,t,i} = GEN-SIDE-IN U LSOS_{l,t,i}``
        and the running LSOS; fire the lifeguard hook per instruction.

        Reads only published state (head facts, SOS), so it is safe to
        run concurrently with other bodies of the same epoch.

        Mask kernel: the per-instruction walk has a closed form.
        Definition sites are unique, so a definition entering the body
        in the LSOS survives iff its location is never redefined there
        (``lsos & ~killed``), and the body's own surviving definitions
        are exactly its downward-exposed GEN -- three word operations
        replace the walk, bit-identically (the equivalence property
        tests replay both).  Returns ``(lsos_mask, out_mask)`` ints in
        that mode; :meth:`commit_check` decodes them.
        """
        body = butterfly.body
        lid, tid = body.block_id
        if self._masked:
            lsos_mask = self._lsos_mask(lid, tid)
            facts = self.facts[body.block_id]
            out_mask = self._epoch_gen[lid][tid] | (
                lsos_mask & ~self._killed_defs_mask(facts.killed_vars)
            )
            return lsos_mask, out_mask
        lsos = self._compute_lsos(lid, tid)
        running = self._walk_body(body, lsos, side_in)
        return lsos, running

    def commit_check(
        self,
        butterfly: Butterfly,
        side_in: Any,
        result: Any,
    ) -> None:
        if not self.keep_history:
            return
        lsos, running = result
        if self._masked:
            decode = self._def_bits.decode
            lsos = set(decode(lsos))
            running = set(decode(running))
            if not isinstance(side_in, set):
                side_in = set(decode(side_in))
        block_id = butterfly.body.block_id
        self.block_lsos[block_id] = frozenset(lsos)
        self.side_in[block_id] = frozenset(side_in)
        self.block_in[block_id] = frozenset(side_in | lsos)
        self.block_out[block_id] = frozenset(running | side_in)

    def _walk_body(
        self,
        body: Block,
        lsos: Set[Definition],
        side_in: Set[Definition],
    ) -> Set[Definition]:
        """Per-instruction LSOS update: ``LSOS_k = GEN_k U (LSOS_{k-1} -
        KILL_k)``; IN at each instruction re-unions GEN-SIDE-IN."""
        running: Set[Definition] = set(lsos)
        for iid, instr in body.iter_ids():
            if self.on_instruction is not None:
                self.on_instruction(iid, instr, frozenset(running | side_in))
            killed_vars = set(self.domain.kill_vars_of(instr))
            if killed_vars:
                running = {
                    d for d in running if d.var not in killed_vars
                }
            for element in self.domain.gen_of(instr, iid):
                running.add(element)
        return running

    # -- step 4 --------------------------------------------------------------

    def epoch_update(
        self, lid: int, summaries: Dict[BlockId, BlockFacts]
    ) -> None:
        """Publish ``SOS_{l+2} = GEN_l U (SOS_{l+1} - KILL_l)``.

        ``GEN_l`` is the union of the blocks' downward-exposed defs
        (Section 5.1.1: some valid ordering runs that block last).
        ``KILL_l`` membership for a definition ``d`` of ``x`` from
        ``SOS_{l+1}`` (so ``d.epoch <= l-1``) instantiates the paper's
        formula: some block ``(l,t)`` kills ``x`` **and** every other
        thread either kills or never window-exposes ``d`` across epochs
        ``(l-1, l)``.  With unique definition sites this reduces to:
        a write to ``x`` exists in epoch ``l`` and ``d`` is *not*
        downward-exposed by its own thread across ``(l-1, l)``.

        Mask kernel: the whole rule is word operations.  The
        window-exposure exception is itself a mask -- each thread's
        epoch ``l-1`` GEN minus the defs its own epoch-``l`` block
        kills -- so ``SOS_{l+2} = gen_l | (SOS_{l+1} & ~(killed &
        ~exposed))`` without enumerating the previous state.
        """
        if self._masked:
            gen_mask = 0
            killed_vars: Set[int] = set()
            for facts in summaries.values():
                gen_mask |= self._epoch_gen[facts.block_id[0]][
                    facts.block_id[1]
                ]
                killed_vars |= facts.killed_vars
            prev_mask = self._sos_masks[lid + 1]
            exposed = 0
            if lid >= 1:
                for tid, m in self._epoch_gen.get(lid - 1, {}).items():
                    own_cur = summaries.get((lid, tid))
                    if own_cur is None:
                        exposed |= m
                    else:
                        exposed |= m & ~self._killed_defs_mask(
                            own_cur.killed_vars
                        )
            survivors = prev_mask & ~(
                self._killed_defs_mask(killed_vars) & ~exposed
            )
            new_mask = gen_mask | survivors
            self._sos_masks[lid + 2] = new_mask
            self.sos.publish(lid, set(self._def_bits.decode(new_mask)))
            if not self.keep_history:
                self._evict(lid - 2)
            return
        gen_l: Set[Definition] = set()
        killed_vars = set()
        for facts in summaries.values():
            gen_l |= facts.gen
            killed_vars |= facts.killed_vars

        def killed(d: Definition) -> bool:
            if d.var not in killed_vars:
                return False
            if d.epoch == lid - 1:
                own_prev = summaries_get(self.facts, (lid - 1, d.thread))
                own_cur = summaries.get((lid, d.thread))
                exposed = (
                    own_prev is not None
                    and d in own_prev.gen
                    and (own_cur is None or d.var not in own_cur.killed_vars)
                )
                if exposed:
                    return False
            return True

        self.sos.advance(lid, gen_l, killed)
        if not self.keep_history:
            self._evict(lid - 2)

    def evict_history(self, before: int) -> None:
        self.sos.evict(before)
        if self._sos_masks:
            bound = min(before, max(self._sos_masks))
            for k in [k for k in self._sos_masks if k < bound]:
                del self._sos_masks[k]

    # -- mask-kernel second pass -----------------------------------------------

    def _killed_defs_mask(self, killed_vars: Set[int]) -> int:
        """Every interned definition of any location in ``killed_vars``.

        Over-approximates "defs killed here" to *all* defs of those
        locations, which is exact once ANDed against a state mask (a
        def is in the state and has a killed location iff the scalar
        predicate kills it).
        """
        var_defs = self._var_defs
        mask = 0
        for v in killed_vars:
            mask |= var_defs.get(v, 0)
        return mask

    def _lsos_mask(self, lid: int, tid: int) -> int:
        """Mask form of :meth:`_compute_lsos`.

        The resurrection term is closed-form too: an SOS definition has
        ``epoch == lid - 2`` iff it appears in some epoch ``lid - 2``
        block's GEN mask (SOS only ever gains a def in the epoch of its
        site), so "killed by the head but adjacent and foreign" is an
        AND of three masks.
        """
        sos_mask = self._sos_masks[lid]
        head = self.facts.get((lid - 1, tid)) if lid >= 1 else None
        if head is None:
            return sos_mask
        killed = self._killed_defs_mask(head.killed_vars)
        adjacent_foreign = 0
        for t, m in self._epoch_gen.get(lid - 2, {}).items():
            if t != tid:
                adjacent_foreign |= m
        resurrected = sos_mask & killed & adjacent_foreign
        return (
            self._epoch_gen[lid - 1][tid]
            | (sos_mask & ~killed)
            | resurrected
        )

    # -- derived views ---------------------------------------------------------

    def _compute_lsos(self, lid: int, tid: int) -> Set[Definition]:
        """``LSOS_{l,t}`` (Section 5.1.2): head GEN, plus SOS survivors,
        plus the resurrection term -- defs the head kills but that an
        *adjacent* epoch ``l-2`` block of another thread generated (the
        head may interleave before them, so they may still reach)."""
        sos = self.sos.get(lid)
        head = self.facts.get((lid - 1, tid)) if lid >= 1 else None
        if head is None:
            return set(sos)
        lsos: Set[Definition] = set(head.gen)
        for d in sos:
            if d.var not in head.killed_vars:
                lsos.add(d)
            elif d.epoch == lid - 2 and d.thread != tid:
                lsos.add(d)
        return lsos

    def _evict(self, older_than: int) -> None:
        for key in [k for k in self.facts if k[0] < older_than]:
            del self.facts[key]
        for lid in [l for l in self._epoch_gen if l < older_than]:
            del self._epoch_gen[lid]
        if self._sos_masks:
            bound = min(older_than, max(self._sos_masks))
            for k in [k for k in self._sos_masks if k < bound]:
                del self._sos_masks[k]


def summaries_get(
    facts: Dict[BlockId, BlockFacts], key: BlockId
) -> Optional[BlockFacts]:
    """Fetch block facts tolerating the first-epoch edge (no epoch -1)."""
    if key[0] < 0:
        return None
    return facts.get(key)
