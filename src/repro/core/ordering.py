"""Valid orderings: the correctness oracle for butterfly analysis.

Paper, Section 5: a *valid ordering* ``O_k`` is a total order of all the
instructions in the first ``k`` epochs that respects the butterfly
assumptions --

1. instructions within a thread appear in program order, and
2. every instruction of epoch ``l`` appears before any instruction of
   epoch ``l + 2`` (non-adjacent epochs are strictly ordered).

The set of valid orderings is a superset of the orderings any real
machine (with cache coherence and intra-thread dependences) can produce,
which is why analyses that behave conservatively over *all* valid
orderings have zero false negatives.  Exhaustive enumeration is
exponential, so these helpers are test oracles for tiny traces; the
analyses themselves never enumerate orderings.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence

from repro.core.epoch import EpochPartition, InstrId
from repro.trace.events import Instr


def _thread_schedule(partition: EpochPartition, tid: int) -> List[InstrId]:
    """Thread ``t``'s instructions in program order, as instr ids."""
    ids: List[InstrId] = []
    for lid in range(partition.num_epochs):
        blk = partition.block(lid, tid)
        ids.extend((lid, tid, i) for i in range(len(blk)))
    return ids


def _last_epoch(partition: EpochPartition, up_to_epoch: Optional[int]) -> int:
    """Resolve and validate the ``up_to_epoch`` prefix argument.

    An out-of-range value used to be accepted silently (negative values
    enumerated nothing, too-large values masked caller bugs); an oracle
    that quietly quantifies over the wrong prefix is worse than useless.
    """
    if up_to_epoch is None:
        return partition.num_epochs - 1
    if not 0 <= up_to_epoch < partition.num_epochs:
        raise ValueError(
            f"up_to_epoch={up_to_epoch} out of range for a partition "
            f"with {partition.num_epochs} epochs"
        )
    return up_to_epoch


def all_valid_orderings(
    partition: EpochPartition, up_to_epoch: Optional[int] = None
) -> Iterator[List[InstrId]]:
    """Every valid ordering of the first ``up_to_epoch + 1`` epochs.

    Exponential; tests keep the instruction count under ~10.  Empty
    blocks, empty threads, and an empty final epoch are all legal: they
    contribute no instructions and never wedge the cursor bookkeeping.
    """
    last = _last_epoch(partition, up_to_epoch)
    schedules = [
        [iid for iid in _thread_schedule(partition, t) if iid[0] <= last]
        for t in range(partition.num_threads)
    ]
    # Remaining instruction count per epoch, to enforce the two-epoch rule.
    remaining = [0] * (last + 1)
    for sched in schedules:
        for lid, _, _ in sched:
            remaining[lid] += 1
    cursors = [0] * len(schedules)
    total = sum(remaining)

    def min_unfinished_epoch() -> int:
        for lid, cnt in enumerate(remaining):
            if cnt:
                return lid
        return last + 1

    def rec(done: int) -> Iterator[List[InstrId]]:
        if done == total:
            yield []
            return
        floor = min_unfinished_epoch()
        for t, sched in enumerate(schedules):
            if cursors[t] >= len(sched):
                continue
            iid = sched[cursors[t]]
            # Schedulable only if every epoch <= l-2 is fully drained.
            if iid[0] > floor + 1:
                continue
            cursors[t] += 1
            remaining[iid[0]] -= 1
            for rest in rec(done + 1):
                yield [iid] + rest
            cursors[t] -= 1
            remaining[iid[0]] += 1

    return rec(0)


def random_valid_ordering(
    partition: EpochPartition,
    rng: Optional[random.Random] = None,
    up_to_epoch: Optional[int] = None,
) -> List[InstrId]:
    """Sample one valid ordering uniformly over schedulable choices."""
    rng = rng or random.Random()
    last = _last_epoch(partition, up_to_epoch)
    schedules = [
        [iid for iid in _thread_schedule(partition, t) if iid[0] <= last]
        for t in range(partition.num_threads)
    ]
    remaining = [0] * (last + 1)
    for sched in schedules:
        for lid, _, _ in sched:
            remaining[lid] += 1
    cursors = [0] * len(schedules)
    order: List[InstrId] = []
    total = sum(remaining)
    while len(order) < total:
        floor = next((l for l, c in enumerate(remaining) if c), last + 1)
        ready = [
            t
            for t, sched in enumerate(schedules)
            if cursors[t] < len(sched) and sched[cursors[t]][0] <= floor + 1
        ]
        t = rng.choice(ready)
        iid = schedules[t][cursors[t]]
        cursors[t] += 1
        remaining[iid[0]] -= 1
        order.append(iid)
    return order


def is_valid_ordering(
    partition: EpochPartition, order: Sequence[InstrId]
) -> bool:
    """Check both validity constraints for an explicit order."""
    # Program order within each thread.
    expected = {
        t: iter(_thread_schedule(partition, t))
        for t in range(partition.num_threads)
    }
    seen_counts: dict = {}
    for iid in order:
        t = iid[1]
        try:
            if next(expected[t]) != iid:
                return False
        except StopIteration:
            return False
        seen_counts[iid[0]] = seen_counts.get(iid[0], 0) + 1
    # Two-epoch rule: when the first instruction of epoch l appears, all
    # epochs <= l-2 must already be complete.
    totals: dict = {}
    for t in range(partition.num_threads):
        for iid in _thread_schedule(partition, t):
            totals[iid[0]] = totals.get(iid[0], 0) + 1
    progress: dict = {}
    for iid in order:
        lid = iid[0]
        for earlier in range(lid - 1):
            if progress.get(earlier, 0) != totals.get(earlier, 0):
                return False
        progress[lid] = progress.get(lid, 0) + 1
    return True


def serialize_ordering(
    partition: EpochPartition, order: Sequence[InstrId]
) -> List[Instr]:
    """Materialize an ordering as a flat instruction list."""
    return [partition.instr(iid) for iid in order]
