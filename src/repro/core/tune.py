"""Adaptive epoch sizing: the online h-controller and ``repro tune``.

Epoch size ``h`` is the paper's one tuning knob (Sections 4 and 8):
small epochs keep the concurrency window tight (few false positives,
low result latency) but pay fixed per-epoch costs -- dispatch,
checkpoint writes, IPC for process shards -- on every heartbeat; large
epochs amortize those costs but widen the window the analysis must
treat as concurrent.  This module owns both sides of tuning that knob:

**Online** (``repro serve --adaptive-epoch``): an
:class:`EpochController` watches the live signals the PR-2 observability
work exposed -- per-stream queue depth (the backpressure signal), the
wall-clock latency of each fold, and the per-fold error rate -- and
picks a *fold factor*: how many incoming producer epochs to coalesce
into one analysis epoch.  :class:`AdaptiveEngine` applies the decision,
merging consecutive producer rows (column-level concatenation, no
per-event objects) and recording the boundary stream it actually used
so the run stays *replayable*: an offline re-check over the recorded
boundaries (:class:`~repro.core.epoch.ExplicitHeartbeat`) is
bit-identical to what the daemon reported -- the ``adaptive`` fuzz mode
enforces exactly that.

Coalescing never splits a producer block, so adaptive boundaries are
always a subset of the producer's cut points; this is what keeps resume
coordinates (producer rows) and analysis coordinates (adaptive epochs)
mutually reconstructible.

**Offline** (``repro tune``): sweep a workload across epoch sizes,
measure the false-positive rate against the sequential oracle and the
wall-clock cost per epoch, and fit the tradeoff curve (FP rate is
linear-ish in ``log2 h``; per-epoch latency is linear in ``h``).  The
fitted curve is what BENCH schema 8 records and what the CI
``tune-smoke`` job asserts is monotone in FP rate.
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.columnar import ColumnarBlock
from repro.core.epoch import Block, partition_auto
from repro.core.framework import ButterflyEngine
from repro.errors import AnalysisError, ReproError


# ---------------------------------------------------------------------------
# The online controller
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SloConfig:
    """The latency/precision SLO the controller holds.

    ``target_fold_ms`` is the hard latency objective: one fold (receive
    + first pass + the previous epoch's second pass) must not take
    longer than this, or results are arriving late.  The queue
    watermarks steer precision: a backed-up queue means the producer is
    bursting and per-epoch overhead is the bottleneck (grow the fold),
    a drained queue means there is headroom to run precise (shrink
    toward ``min_fold``).
    """

    target_fold_ms: float = 50.0
    queue_high: int = 3
    queue_low: int = 1
    min_fold: int = 1
    max_fold: int = 64
    #: Shrink when a fold surfaced new errors: reports are exactly the
    #: signal precision exists for, so bias toward tight windows while
    #: they are firing.
    error_bias: bool = True

    def __post_init__(self) -> None:
        if self.min_fold < 1:
            raise ReproError("min_fold must be >= 1")
        if self.max_fold < self.min_fold:
            raise ReproError("max_fold must be >= min_fold")
        if self.target_fold_ms <= 0:
            raise ReproError("target_fold_ms must be > 0")


class EpochController:
    """Deterministic fold-factor control loop (AIMD-flavoured).

    Grows multiplicatively under burst (a deep queue doubles the fold:
    catching up is urgent and amortization is the only lever), shrinks
    additively when the queue drains (precision is cheap again), and
    halves outright when a fold breaches the latency SLO -- the one
    signal that must win every argument.  Decisions depend only on the
    observation stream, so a replayed observation sequence reproduces
    the same fold factors; live runs are still timing-dependent, which
    is why :class:`AdaptiveEngine` records boundaries instead of
    assuming anyone can re-derive them.
    """

    def __init__(self, slo: Optional[SloConfig] = None) -> None:
        self.slo = slo or SloConfig()
        self.fold_factor = self.slo.min_fold
        self.observations = 0
        self.slo_breaches = 0

    def observe(
        self,
        queue_depth: int,
        fold_ns: int,
        rows: int,
        errors_delta: int = 0,
    ) -> int:
        """Fold ``rows`` producer rows took ``fold_ns`` with
        ``queue_depth`` rows still waiting; returns the next fold
        factor."""
        slo = self.slo
        self.observations += 1
        if fold_ns > slo.target_fold_ms * 1e6:
            self.slo_breaches += 1
            self.fold_factor = max(slo.min_fold, self.fold_factor // 2)
        elif slo.error_bias and errors_delta > 0:
            self.fold_factor = max(slo.min_fold, self.fold_factor - 1)
        elif queue_depth >= slo.queue_high:
            self.fold_factor = min(slo.max_fold, self.fold_factor * 2)
        elif queue_depth <= slo.queue_low:
            self.fold_factor = max(slo.min_fold, self.fold_factor - 1)
        return self.fold_factor


# ---------------------------------------------------------------------------
# Block coalescing
# ---------------------------------------------------------------------------


def merge_block_run(lid: int, blocks: Sequence[Block]) -> Block:
    """One thread's consecutive blocks -> one block at epoch ``lid``.

    Stays columnar when every input is (the serve hot path: stream rows
    decode straight to columns); otherwise concatenates the object
    tuples.  ``start`` is inherited from the first block, so the merged
    block's global refs are identical to the unmerged ones'.
    """
    first = blocks[0]
    if len(blocks) == 1:
        if first.lid == lid:
            return first
        return Block(
            lid, first.tid, first.start,
            instrs=first._instrs, columns=first._columns,
        )
    if all(b.has_columns for b in blocks):
        merged = ColumnarBlock.concat([b.columns for b in blocks])
        return Block(lid, first.tid, first.start, columns=merged)
    instrs = tuple(
        itertools.chain.from_iterable(b.instrs for b in blocks)
    )
    return Block(lid, first.tid, first.start, instrs=instrs)


# ---------------------------------------------------------------------------
# The adaptive engine wrapper
# ---------------------------------------------------------------------------


class AdaptiveEngine:
    """A :class:`ButterflyEngine` facade that coalesces producer epochs.

    Callers keep talking producer-row coordinates (``feed_blocks(lid,
    row)`` with the pushed file's epoch ids); internally rows buffer
    until the controller's fold factor is reached, then merge into one
    analysis epoch per :func:`merge_block_run`.  The wrapper exposes the
    engine surface the shard backends drive -- everything it does not
    override delegates to the wrapped engine, so checkpointing sees the
    real engine state.

    Coordinates:

    - :attr:`resume_position` / ``rows_folded`` count *producer rows*
      absorbed into committed engine feeds -- the resume coordinate the
      serve protocol advertises (buffered rows are not covered by any
      checkpoint, so a resuming producer re-sends them).
    - The wrapped engine's ``_next_to_receive`` counts *analysis
      epochs* -- the coordinate checkpoints snapshot and restore.

    Bookkeeping is updated *before* the wrapped feed runs (and rolled
    back if it raises) so a checkpoint taken mid-feed -- the engine's
    ``after_epoch`` hook fires inside ``feed_blocks`` -- snapshots the
    producer-row progress that matches the engine state it rides with.
    """

    def __init__(
        self,
        engine: ButterflyEngine,
        controller: EpochController,
        num_threads: int,
    ) -> None:
        self.engine = engine
        self.controller = controller
        self.num_threads = num_threads
        self._pending: List[List[Block]] = []
        #: Producer rows folded into the wrapped engine.
        self.rows_folded = 0
        #: The boundary stream actually used, per thread (exclusive
        #: block-end offsets) -- what the report and checkpoints carry.
        self.recorded_boundaries: List[List[int]] = [
            [] for _ in range(num_threads)
        ]
        self._queue_depth = 0

    def __getattr__(self, name: str) -> Any:
        return getattr(self.engine, name)

    # -- the serve-facing surface --------------------------------------

    @property
    def resume_position(self) -> int:
        """Producer-row resume coordinate (see class docstring)."""
        return self.rows_folded

    def note_queue_depth(self, depth: int) -> None:
        """Latest queue-depth observation (rows waiting behind this
        one); sampled by the controller at each fold."""
        self._queue_depth = depth

    def feed_blocks(self, lid: int, row: List[Block]) -> None:
        expected = self.rows_folded + len(self._pending)
        if lid != expected:
            raise AnalysisError(
                f"producer epochs must arrive in order: expected "
                f"{expected}, got {lid}"
            )
        self._pending.append(row)
        if len(self._pending) >= self.controller.fold_factor:
            self._fold(len(self._pending))

    def finish(self) -> None:
        if self._pending:
            self._fold(len(self._pending))
        self.engine.finish()

    def extra_state(self) -> Dict[str, Any]:
        """The checkpoint rider reconstructing adaptive progress."""
        return {
            "rows_folded": self.rows_folded,
            "boundaries": [list(c) for c in self.recorded_boundaries],
        }

    def restore_extra(self, extra: Dict[str, Any]) -> None:
        self.rows_folded = extra["rows_folded"]
        self.recorded_boundaries = [
            list(c) for c in extra["boundaries"]
        ]

    # -- internals ------------------------------------------------------

    def _fold(self, count: int) -> None:
        rows = self._pending[:count]
        alid = self.engine._next_to_receive
        merged = [
            merge_block_run(alid, [rows[k][tid] for k in range(count)])
            for tid in range(self.num_threads)
        ]
        saved_rows = self.rows_folded
        saved_cut_lens = [len(c) for c in self.recorded_boundaries]
        for tid, blk in enumerate(merged):
            self.recorded_boundaries[tid].append(blk.start + len(blk))
        self.rows_folded += count
        del self._pending[:count]
        errors_before = ButterflyEngine._error_count(self.engine.analysis)
        started = time.perf_counter_ns()
        try:
            self.engine.feed_blocks(alid, merged)
        except Exception:
            # Mirror the engine's own epoch-boundary rollback so the
            # checkpointed/advertised progress never covers a feed that
            # did not commit.
            self.rows_folded = saved_rows
            for tid, n in enumerate(saved_cut_lens):
                del self.recorded_boundaries[tid][n:]
            self._pending[:0] = rows
            raise
        self.controller.observe(
            queue_depth=self._queue_depth,
            fold_ns=time.perf_counter_ns() - started,
            rows=count,
            errors_delta=(
                ButterflyEngine._error_count(self.engine.analysis)
                - errors_before
            ),
        )


# ---------------------------------------------------------------------------
# Offline sweep + curve fitting (``repro tune``)
# ---------------------------------------------------------------------------

#: Lifeguards ``repro tune``/``repro sweep`` can ground-truth: the
#: sweep's FP-rate column needs a sequential oracle for the *same*
#: lifeguard, and AddrCheck is the one the repo has.
ORACLE_LIFEGUARDS = ("addrcheck",)


@dataclass
class TunePoint:
    """One epoch size's measured position on the tradeoff curve."""

    epoch_size: int
    epochs: int
    flagged: int
    false_positives: int
    fp_rate: float
    mean_epoch_ms: float
    max_epoch_ms: float
    events_per_s: float


@dataclass
class TradeoffCurve:
    """The fitted FP-rate/latency tradeoff for one workload.

    ``fp_rate ~ fp_intercept + fp_slope * log2(h)`` and
    ``mean_epoch_ms ~ latency_intercept + latency_slope * h``: both
    least-squares over the sweep's points.  ``fp_monotone`` is the raw
    (not fitted) check CI asserts: measured FP rate never decreases as
    ``h`` grows.
    """

    points: List[TunePoint] = field(default_factory=list)
    fp_slope: float = 0.0
    fp_intercept: float = 0.0
    latency_slope: float = 0.0
    latency_intercept: float = 0.0
    fp_monotone: bool = True

    def to_record(self) -> Dict[str, Any]:
        return {
            "points": [asdict(p) for p in self.points],
            "fit": {
                "fp_rate_vs_log2_h": {
                    "slope": self.fp_slope,
                    "intercept": self.fp_intercept,
                },
                "mean_epoch_ms_vs_h": {
                    "slope": self.latency_slope,
                    "intercept": self.latency_intercept,
                },
            },
            "fp_monotone_nondecreasing": self.fp_monotone,
        }


def fit_line(xs: Sequence[float], ys: Sequence[float]) -> "tuple[float, float]":
    """Least-squares ``(slope, intercept)`` (pure Python; numpy-free)."""
    n = len(xs)
    if n == 0:
        return 0.0, 0.0
    if n == 1:
        return 0.0, float(ys[0])
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0.0:
        return 0.0, mean_y
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x


def measure_point(
    program: Any,
    epoch_size: int,
    truth_errors: Sequence[Any],
    make_guard: Callable[[], Any],
    backend: str = "serial",
) -> TunePoint:
    """Run one epoch size over ``program`` and measure its tradeoff
    position: per-epoch wall latency from timed feeds, FP rate against
    the precomputed sequential-oracle errors."""
    from repro.lifeguards.reports import compare_reports

    partition = partition_auto(program, epoch_size)
    guard = make_guard()
    epoch_ns: List[int] = []
    started = time.perf_counter_ns()
    with ButterflyEngine(guard, backend=backend) as engine:
        engine.attach(partition)
        for lid in range(partition.num_epochs):
            t0 = time.perf_counter_ns()
            engine.feed_epoch(lid)
            epoch_ns.append(time.perf_counter_ns() - t0)
        engine.finish()
    elapsed_s = (time.perf_counter_ns() - started) / 1e9
    precision = compare_reports(
        truth_errors, guard.errors, program.memory_op_count
    )
    total = program.total_instructions
    return TunePoint(
        epoch_size=epoch_size,
        epochs=partition.num_epochs,
        flagged=precision.flagged,
        false_positives=precision.false_positives,
        fp_rate=precision.false_positive_rate,
        mean_epoch_ms=sum(epoch_ns) / len(epoch_ns) / 1e6,
        max_epoch_ms=max(epoch_ns) / 1e6,
        events_per_s=total / elapsed_s if elapsed_s > 0 else 0.0,
    )


def fit_tradeoff(points: Sequence[TunePoint]) -> TradeoffCurve:
    """Fit the tradeoff curve over measured sweep points."""
    pts = sorted(points, key=lambda p: p.epoch_size)
    fp_slope, fp_icpt = fit_line(
        [math.log2(p.epoch_size) for p in pts],
        [p.fp_rate for p in pts],
    )
    lat_slope, lat_icpt = fit_line(
        [float(p.epoch_size) for p in pts],
        [p.mean_epoch_ms for p in pts],
    )
    monotone = all(
        a.fp_rate <= b.fp_rate for a, b in zip(pts, pts[1:])
    )
    return TradeoffCurve(
        points=list(pts),
        fp_slope=fp_slope,
        fp_intercept=fp_icpt,
        latency_slope=lat_slope,
        latency_intercept=lat_icpt,
        fp_monotone=monotone,
    )


def tune_workload(
    program: Any,
    epoch_sizes: Sequence[int],
    lifeguard: str = "addrcheck",
    backend: str = "serial",
) -> TradeoffCurve:
    """Sweep ``epoch_sizes`` over one workload; the fitted curve.

    Only oracle-backed lifeguards are tunable (the FP-rate axis *is*
    the oracle comparison); anything else raises :class:`ReproError`
    with the supported list.
    """
    if lifeguard not in ORACLE_LIFEGUARDS:
        raise ReproError(
            f"lifeguard {lifeguard!r} has no sequential oracle to "
            f"measure false positives against; tunable lifeguards: "
            f"{', '.join(ORACLE_LIFEGUARDS)}"
        )
    from repro.lifeguards.addrcheck import ButterflyAddrCheck
    from repro.lifeguards.sequential import SequentialAddrCheck

    truth = SequentialAddrCheck(program.preallocated)
    truth.run_order(program)
    points = [
        measure_point(
            program,
            h,
            truth.errors,
            lambda: ButterflyAddrCheck(
                initially_allocated=program.preallocated
            ),
            backend=backend,
        )
        for h in epoch_sizes
    ]
    return fit_tradeoff(points)
