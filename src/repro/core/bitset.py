"""Interned bitset summaries.

Butterfly meets are unions over wing summaries, and the element
universes the lifeguards actually see in one run are small (locations
touched, dynamic definition sites inside the window).  Interning each
element to a stable bit position turns those unions into single bitwise
ORs over Python ``int`` values -- C-speed word operations instead of a
Python-level loop per element -- while the interner keeps an exact,
loss-free mapping back to the original elements.

Determinism: bit positions are assigned in *commit order* -- summaries
are only interned on the engine's serial commit path, and new elements
within one summary are interned in sorted order -- so two runs over the
same trace assign identical positions regardless of execution backend.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

try:  # Python >= 3.10
    _popcount = int.bit_count

    def popcount(mask: int) -> int:
        """Number of set bits (``len`` of the encoded set)."""
        return _popcount(mask)

except AttributeError:  # pragma: no cover - Python 3.9 fallback

    def popcount(mask: int) -> int:
        """Number of set bits (``len`` of the encoded set)."""
        return bin(mask).count("1")


class BitInterner:
    """Bijection between hashable elements and bit positions.

    One interner is owned by one analysis instance; masks produced by
    different interners are not comparable.
    """

    __slots__ = ("_bit_of", "_elements", "hits", "misses")

    def __init__(self) -> None:
        self._bit_of: Dict[Any, int] = {}
        self._elements: List[Any] = []
        #: Lookup pressure counters (plain int adds, cheap enough to
        #: keep unconditionally): ``hits`` resolved to an existing bit,
        #: ``misses`` assigned a fresh one.  The observability layer
        #: reads them via :meth:`stats`.
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._elements)

    def bit(self, element: Any) -> int:
        """The bit position of ``element``, assigning one if new."""
        b = self._bit_of.get(element)
        if b is None:
            b = len(self._elements)
            self._bit_of[element] = b
            self._elements.append(element)
            self.misses += 1
        else:
            self.hits += 1
        return b

    def mask(
        self,
        elements: Iterable[Any],
        sort_key: Optional[Callable[[Any], Any]] = None,
    ) -> int:
        """Encode ``elements`` as a bitset.

        Unseen elements are interned in sorted order so that bit
        assignment is independent of the (hash-based) iteration order
        of the input set.
        """
        bit_of = self._bit_of
        out = 0
        fresh: List[Any] = []
        hits = 0
        for e in elements:
            b = bit_of.get(e)
            if b is None:
                fresh.append(e)
            else:
                out |= 1 << b
                hits += 1
        self.hits += hits
        if fresh:
            fresh.sort(key=sort_key)
            for e in fresh:
                out |= 1 << self.bit(e)
        return out

    def decode(self, mask: int) -> List[Any]:
        """The elements of ``mask``, in ascending bit order."""
        elements = self._elements
        out: List[Any] = []
        while mask:
            low = mask & -mask
            out.append(elements[low.bit_length() - 1])
            mask ^= low
        return out

    def contains(self, mask: int, element: Any) -> bool:
        """Whether ``element`` is encoded in ``mask``."""
        b = self._bit_of.get(element)
        return b is not None and bool(mask >> b & 1)

    def stats(self) -> Dict[str, Any]:
        """Intern-table pressure: size, lookups, and hit rate."""
        lookups = self.hits + self.misses
        return {
            "size": len(self._elements),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }
