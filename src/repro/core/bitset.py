"""Interned bitset summaries.

Butterfly meets are unions over wing summaries, and the element
universes the lifeguards actually see in one run are small (locations
touched, dynamic definition sites inside the window).  Interning each
element to a stable bit position turns those unions into single bitwise
ORs over Python ``int`` values -- C-speed word operations instead of a
Python-level loop per element -- while the interner keeps an exact,
loss-free mapping back to the original elements.

Determinism: bit positions are assigned in *commit order* -- summaries
are only interned on the engine's serial commit path, and new elements
within one summary are interned in sorted order -- so two runs over the
same trace assign identical positions regardless of execution backend.

Masks are plain Python ``int`` values at the API surface (arbitrary
width, hashable, picklable); when numpy is available the expensive
spots -- composing a mask from many bit positions and decoding a wide
mask back to elements -- run as word-wise kernels over the mask's
little-endian byte form instead of repeated big-int shifts.  The
:func:`mask_to_words` / :func:`mask_from_words` helpers expose the same
packed ``uint64`` form the process pool ships across task boundaries.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.core.columnar import HAVE_NUMPY, np

try:  # Python >= 3.10
    _popcount = int.bit_count

    def popcount(mask: int) -> int:
        """Number of set bits (``len`` of the encoded set)."""
        return _popcount(mask)

except AttributeError:  # pragma: no cover - Python 3.9 fallback

    def popcount(mask: int) -> int:
        """Number of set bits (``len`` of the encoded set)."""
        return bin(mask).count("1")


#: Below this many set bits the classic shift loop beats buffer setup.
_VECTOR_MIN_BITS = 64


def compose_mask(bits: List[int]) -> int:
    """OR together ``1 << b`` for every position in ``bits``.

    The naive loop is quadratic in mask width: each ``out |= 1 << b``
    copies the whole big int.  The vector path scatters the positions
    into a byte buffer (one pass, duplicates folded by ``bitwise_or``)
    and converts once.
    """
    if HAVE_NUMPY and len(bits) >= _VECTOR_MIN_BITS:
        pos = np.array(bits, dtype=np.int64)
        buf = np.zeros((int(pos.max()) >> 3) + 1, dtype=np.uint8)
        np.bitwise_or.at(buf, pos >> 3, np.left_shift(1, pos & 7).astype(np.uint8))
        return int.from_bytes(buf.tobytes(), "little")
    out = 0
    for b in bits:
        out |= 1 << b
    return out


def mask_to_words(mask: int) -> bytes:
    """The mask's packed little-endian 64-bit-word form (wire format)."""
    n = (mask.bit_length() + 63) // 64 * 8
    return mask.to_bytes(n, "little")


def mask_from_words(words: bytes) -> int:
    """Inverse of :func:`mask_to_words`."""
    return int.from_bytes(words, "little")


def popcount_words(words: bytes) -> int:
    """Set-bit count of a packed-word mask without big-int conversion."""
    if HAVE_NUMPY and len(words) >= 32:
        return int(np.bitwise_count(np.frombuffer(words, dtype=np.uint8)).sum())
    return popcount(int.from_bytes(words, "little"))


class BitInterner:
    """Bijection between hashable elements and bit positions.

    One interner is owned by one analysis instance; masks produced by
    different interners are not comparable.
    """

    __slots__ = ("_bit_of", "_elements", "hits", "misses")

    def __init__(self) -> None:
        self._bit_of: Dict[Any, int] = {}
        self._elements: List[Any] = []
        #: Lookup pressure counters (plain int adds, cheap enough to
        #: keep unconditionally): ``hits`` resolved to an existing bit,
        #: ``misses`` assigned a fresh one.  The observability layer
        #: reads them via :meth:`stats`.
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._elements)

    def bit(self, element: Any) -> int:
        """The bit position of ``element``, assigning one if new."""
        b = self._bit_of.get(element)
        if b is None:
            b = len(self._elements)
            self._bit_of[element] = b
            self._elements.append(element)
            self.misses += 1
        else:
            self.hits += 1
        return b

    def mask(
        self,
        elements: Iterable[Any],
        sort_key: Optional[Callable[[Any], Any]] = None,
    ) -> int:
        """Encode ``elements`` as a bitset.

        Unseen elements are interned in sorted order so that bit
        assignment is independent of the (hash-based) iteration order
        of the input set.
        """
        bit_of = self._bit_of
        bits: List[int] = []
        fresh: List[Any] = []
        hits = 0
        for e in elements:
            b = bit_of.get(e)
            if b is None:
                fresh.append(e)
            else:
                bits.append(b)
                hits += 1
        self.hits += hits
        if fresh:
            fresh.sort(key=sort_key)
            for e in fresh:
                bits.append(self.bit(e))
        return compose_mask(bits)

    def decode(self, mask: int) -> List[Any]:
        """The elements of ``mask``, in ascending bit order."""
        elements = self._elements
        if HAVE_NUMPY and mask.bit_length() >= _VECTOR_MIN_BITS:
            raw = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
            buf = np.frombuffer(raw, dtype=np.uint8)
            positions = np.flatnonzero(
                np.unpackbits(buf, bitorder="little")
            ).tolist()
            return [elements[b] for b in positions]
        out: List[Any] = []
        while mask:
            low = mask & -mask
            out.append(elements[low.bit_length() - 1])
            mask ^= low
        return out

    def contains(self, mask: int, element: Any) -> bool:
        """Whether ``element`` is encoded in ``mask``."""
        b = self._bit_of.get(element)
        return b is not None and bool(mask >> b & 1)

    def stats(self) -> Dict[str, Any]:
        """Intern-table pressure: size, lookups, and hit rate."""
        lookups = self.hits + self.misses
        return {
            "size": len(self._elements),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }


#: Backwards-compatible alias (pre-public name).
_compose_mask = compose_mask
