"""Dynamic parallel reaching expressions (paper Section 5.2).

Elements are :class:`~repro.core.dataflow.Expression` values.  An
expression reaches a point only if **no** valid ordering kills it on the
way (forall-semantics) -- the dual of reaching definitions:

- killing is *global*: a kill anywhere in a wing block may strike
  before the body (``KILL-SIDE-OUT`` is the union over instructions,
  and the meet over the wings is union, not the classic intersection);
- generating is *local*: no wing can promise an expression reaches
  along every path, so ``GEN-SIDE-OUT`` is empty.

AddrCheck (Section 6.1) instantiates this analysis with allocation as
GEN and deallocation as KILL.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.bitset import BitInterner
from repro.core.dataflow import (
    BlockFacts,
    Expression,
    ExpressionDomain,
    summarize_block,
    union_side_out_kill,
)
from repro.core.epoch import Block, BlockId, InstrId
from repro.core.framework import ButterflyAnalysis
from repro.core.reaching_defs import FactsScanner
from repro.core.state import SOSHistory
from repro.core.window import Butterfly

#: Per-instruction hook: (instr id, instruction, IN set).
InstrHook = Callable[[InstrId, object, FrozenSet[Expression]], None]


class ReachingExpressions(ButterflyAnalysis[BlockFacts, Set[int]]):
    """The generic reaching-expressions lifeguard of Section 5.2."""

    def __init__(
        self,
        on_instruction: Optional[InstrHook] = None,
        keep_history: bool = True,
    ) -> None:
        self.domain = ExpressionDomain()
        self.sos = SOSHistory()
        self.on_instruction = on_instruction
        self.keep_history = keep_history
        self.facts: Dict[BlockId, BlockFacts] = {}
        self.block_in: Dict[BlockId, FrozenSet[Expression]] = {}
        self.block_out: Dict[BlockId, FrozenSet[Expression]] = {}
        self.block_lsos: Dict[BlockId, FrozenSet[Expression]] = {}
        self.side_in: Dict[BlockId, FrozenSet[int]] = {}
        self._var_bits = BitInterner()
        # Hooks are arbitrary closures; only the hook-free analysis
        # advertises the parallel split (mirrors ReachingDefinitions).
        self.parallel_first_pass = on_instruction is None
        self.parallel_second_pass = on_instruction is None

    # -- step 1 ----------------------------------------------------------

    def make_scanner(self) -> FactsScanner:
        return FactsScanner(self.domain)

    def commit_scan(self, block: Block, scan: BlockFacts) -> BlockFacts:
        """Store the block facts; intern KILL-SIDE-OUT (a var set) so
        the wing meet is a bitwise OR."""
        scan.killed_mask = self._var_bits.mask(scan.killed_vars)
        self.facts[block.block_id] = scan
        return scan

    # -- step 2 ------------------------------------------------------------

    def meet(
        self, butterfly: Butterfly, wing_summaries: List[BlockFacts]
    ) -> Set[int]:
        """KILL-SIDE-IN as a symbolic var set: union of the wings'
        KILL-SIDE-OUT (Section 5.2: the meet is union)."""
        mask = 0
        for facts in wing_summaries:
            if facts.killed_mask is None:
                return union_side_out_kill(wing_summaries)
            mask |= facts.killed_mask
        return set(self._var_bits.decode(mask))

    # -- step 3 ------------------------------------------------------------

    def check_body(
        self, butterfly: Butterfly, side_in: Set[int]
    ) -> Tuple[Set[Expression], Set[Expression]]:
        """``IN_{l,t,i} = LSOS_{l,t,i} - KILL-SIDE-IN_{l,t}``.

        Pure stage: reads head facts and the SOS, both published before
        this epoch's second passes start."""
        body = butterfly.body
        lid, tid = body.block_id
        lsos = self._compute_lsos(lid, tid)
        running = self._walk_body(body, lsos, side_in)
        return lsos, running

    def commit_check(
        self, butterfly: Butterfly, side_in: Set[int], result: Any
    ) -> None:
        lsos, running = result
        if self.keep_history:
            block_id = butterfly.body.block_id
            self.block_lsos[block_id] = frozenset(lsos)
            self.side_in[block_id] = frozenset(side_in)
            self.block_in[block_id] = frozenset(
                e for e in lsos if not self._touches(e, side_in)
            )
            self.block_out[block_id] = frozenset(
                e
                for e in running
                if e in self.facts[block_id].gen
                or not self._touches(e, side_in)
            )

    def _walk_body(
        self, body: Block, lsos: Set[Expression], side_in: Set[int]
    ) -> Set[Expression]:
        running: Set[Expression] = set(lsos)
        for iid, instr in body.iter_ids():
            if self.on_instruction is not None:
                visible = frozenset(
                    e for e in running if not self._touches(e, side_in)
                )
                self.on_instruction(iid, instr, visible)
            killed_vars = set(self.domain.kill_vars_of(instr))
            if killed_vars:
                running = {
                    e
                    for e in running
                    if not any(
                        v in killed_vars
                        for v in self.domain.element_vars(e)
                    )
                }
            for element in self.domain.gen_of(instr, iid):
                running.add(element)
        return running

    # -- step 4 --------------------------------------------------------------

    def epoch_update(
        self, lid: int, summaries: Dict[BlockId, BlockFacts]
    ) -> None:
        """Publish ``SOS_{l+2} = GEN_l U (SOS_{l+1} - KILL_l)``.

        Dual of reaching definitions (Section 5.2): ``KILL_l`` is the
        easy union of block kills; ``GEN_l`` keeps only expressions some
        block downward-exposes *and* that every other thread either also
        window-exposes across ``(l-1, l)`` or never kills there.
        """
        num_threads = len(summaries)
        gen_l: Set[Expression] = set()
        for (l, t), facts in summaries.items():
            for e in facts.gen:
                if self._epoch_gen_holds(e, lid, t, num_threads):
                    gen_l.add(e)

        def killed(e: Expression) -> bool:
            return any(
                facts.kills(e, self.domain) for facts in summaries.values()
            )

        self.sos.advance(lid, gen_l, killed)
        if not self.keep_history:
            self._evict(lid - 2)

    def evict_history(self, before: int) -> None:
        self.sos.evict(before)

    def _epoch_gen_holds(
        self, e: Expression, lid: int, gen_thread: int, num_threads: int
    ) -> bool:
        for t in range(num_threads):
            if t == gen_thread:
                continue
            prev = self.facts.get((lid - 1, t)) if lid >= 1 else None
            cur = self.facts[(lid, t)]
            window_exposed = cur.gens(e) or (
                prev is not None
                and prev.gens(e)
                and not cur.kills(e, self.domain)
            )
            never_kills = not cur.kills(e, self.domain) and (
                prev is None or not prev.kills(e, self.domain)
            )
            if not (window_exposed or never_kills):
                return False
        return True

    # -- derived views ---------------------------------------------------------

    def _compute_lsos(self, lid: int, tid: int) -> Set[Expression]:
        """``LSOS_{l,t}`` (Section 5.2.1): SOS survivors of the head's
        kills, plus head GEN *unless* a sibling thread killed the
        expression in epoch ``l-2`` (the head may interleave before that
        kill, leaving a path on which the expression is dead)."""
        sos = self.sos.get(lid)
        head = self.facts.get((lid - 1, tid)) if lid >= 1 else None
        if head is None:
            return set(sos)
        lsos: Set[Expression] = set()
        for e in head.gen:
            if not self._sibling_killed(e, lid - 2, tid):
                lsos.add(e)
        for e in sos:
            if not head.kills(e, self.domain):
                lsos.add(e)
        return lsos

    def _sibling_killed(self, e: Expression, lid: int, tid: int) -> bool:
        if lid < 0:
            return False
        for (l, t), facts in self.facts.items():
            if l == lid and t != tid and facts.kills(e, self.domain):
                return True
        return False

    def _evict(self, older_than: int) -> None:
        for key in [k for k in self.facts if k[0] < older_than]:
            del self.facts[key]


    def _touches(self, e: Expression, vars_: Set[int]) -> bool:
        """Whether KILL-SIDE-IN strikes this element."""
        return any(v in vars_ for v in self.domain.element_vars(e))
