"""Epoch sources: bounded-memory input for the butterfly engine.

Butterfly analysis is a *sliding-window* algorithm (paper Sections 4.2
and 5.1.2): once epoch ``l+1`` has been received, everything older than
the head epoch ``l-1`` has been absorbed into the SOS and is dead
state.  Nothing about the algorithm needs the whole trace in memory --
only the engine's historical ``run(partition)`` entry point did.

An :class:`EpochSource` is the streaming alternative: anything that can
hand the engine one epoch of :class:`~repro.core.epoch.Block` rows at a
time, in order -- a materialized partition, a JSONL stream file
(:func:`repro.trace.serialize.iter_load`), a generator producing the
workload on the fly, or a socket.  The engine's
:meth:`~repro.core.framework.ButterflyEngine.run_source` /
``feed_blocks`` loop consumes it while holding at most the three-epoch
butterfly window resident, so traces far larger than RAM stream through
in bounded space.

The protocol is deliberately tiny:

``num_threads``
    Application thread count (every epoch row has one block per
    thread).
``num_epochs``
    Total epoch count when known up front (a file with a header, a
    partition), else ``None`` (an unbounded feed); only used for
    progress reporting and the ``run.attach`` event.
``preallocated``
    Locations allocated before the monitored window began -- lifeguards
    seed their metadata with these, so the source must surface them
    before the first epoch.
``epochs(start)``
    The epoch rows themselves, in order, beginning at epoch ``start``.
    ``start > 0`` is the resume seek: a file-backed source skips
    records without decoding them, a partition-backed source indexes
    directly.
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Optional

from repro.core.epoch import Block, EpochPartition

__all__ = ["EpochSource", "PartitionSource", "ShapeSource"]


class EpochSource(abc.ABC):
    """One epoch of blocks at a time, in epoch order (see module doc)."""

    @property
    @abc.abstractmethod
    def num_threads(self) -> int:
        """Application thread count (blocks per epoch row)."""

    @property
    def num_epochs(self) -> Optional[int]:
        """Total epochs when known up front, else ``None``."""
        return None

    @property
    def preallocated(self) -> frozenset:
        """Locations allocated before the monitored window began."""
        return frozenset()

    @abc.abstractmethod
    def epochs(self, start: int = 0) -> Iterator[List[Block]]:
        """Yield epoch rows (one :class:`Block` per thread) from epoch
        ``start`` onward.  ``start > 0`` is the checkpoint-resume seek."""

    def __iter__(self) -> Iterator[List[Block]]:
        return self.epochs()


class ShapeSource(EpochSource):
    """Metadata-only source for *push-driven* feeds.

    The serve daemon (``repro serve``) receives epoch rows from a
    socket and hands them to :meth:`ButterflyEngine.feed_blocks`
    directly -- there is no pullable iterator.  The engine still needs
    an attached source (shape for validation, ``num_epochs`` for the
    ``finish()`` completeness check, ``preallocated`` for lifeguard
    seeding, and source-attachment to enable streamed history
    eviction), which is exactly what this carries.  :meth:`epochs`
    raises: nothing may pull from a push-driven session.
    """

    def __init__(
        self,
        num_threads: int,
        num_epochs: Optional[int] = None,
        preallocated: frozenset = frozenset(),
    ) -> None:
        self._num_threads = num_threads
        self._num_epochs = num_epochs
        self._preallocated = frozenset(preallocated)

    @property
    def num_threads(self) -> int:
        return self._num_threads

    @property
    def num_epochs(self) -> Optional[int]:
        return self._num_epochs

    @property
    def preallocated(self) -> frozenset:
        return self._preallocated

    def epochs(self, start: int = 0) -> Iterator[List[Block]]:
        raise RuntimeError(
            "ShapeSource is push-driven: feed the engine with "
            "feed_blocks(), do not pull epochs from it"
        )


class PartitionSource(EpochSource):
    """Adapt a materialized :class:`EpochPartition` to the protocol.

    This is how generated workloads and legacy (version-1) trace files
    run through the streaming pipeline: the *trace* is in memory, but
    the engine's resident state still obeys the three-epoch window
    bound, and every downstream consumer (backends, checkpointing,
    observability) exercises the exact code path a file- or
    socket-backed source uses.

    The partition's block cache is evicted as epochs are yielded -- the
    engine keeps its own window of ``Block`` references, so the cache
    would only duplicate the window.
    """

    def __init__(self, partition: EpochPartition) -> None:
        self._partition = partition

    @property
    def partition(self) -> EpochPartition:
        return self._partition

    @property
    def num_threads(self) -> int:
        return self._partition.num_threads

    @property
    def num_epochs(self) -> Optional[int]:
        return self._partition.num_epochs

    @property
    def preallocated(self) -> frozenset:
        return frozenset(self._partition.program.preallocated)

    def epochs(self, start: int = 0) -> Iterator[List[Block]]:
        partition = self._partition
        for lid in range(start, partition.num_epochs):
            yield partition.epoch_blocks(lid)
            # The consumer holds its own references to the live window;
            # the cache behind us is dead weight.
            partition.evict_blocks(lid + 1)
