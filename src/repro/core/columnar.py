"""Columnar (structure-of-arrays) event blocks.

The per-event :class:`~repro.trace.events.Instr` dataclass is the right
unit for tests and reference implementations, but on million-event
traces the object representation *is* the bottleneck: every event costs
an allocation, an ``Op`` enum box, a ``__post_init__`` and a tuple of
sources, and every pass over a block pays Python-level attribute
dispatch per event.  A :class:`ColumnarBlock` stores the same
information as parallel arrays instead:

====================  ======================================================
column                meaning
====================  ======================================================
``op``                per-event op code (``OP_CODES[Op]``), unsigned byte
``dst``               destination location, or :data:`NO_DST` for ``None``
``size``              MALLOC/FREE extent (1 elsewhere)
``src_off``           CSR offsets into ``src_val`` (length ``n + 1``)
``src_val``           flattened source locations, in per-event order
====================  ======================================================

The CSR source layout is lossless for any source arity, so *every*
legal ``Instr`` round-trips exactly (``from_instrs`` then ``to_instrs``
is the identity).  Vector kernels (the AddrCheck first-pass scan, the
columnar workload generator, the stream decoder) operate on the raw
columns and never materialize ``Instr`` objects; everything else can
ask a columnar-backed :class:`~repro.core.epoch.Block` for ``.instrs``
and fall back to the object path transparently.

Backends: columns are numpy arrays when numpy is importable, and
:mod:`array`-module arrays otherwise -- same dtypes, same ``tobytes``
wire form, so pickled blocks are interchangeable between the two.  Set
``REPRO_NO_NUMPY=1`` to force the pure-Python fallback (the CI leg that
proves the fallback works runs the whole suite this way).
"""

from __future__ import annotations

import os
from array import array
from typing import TYPE_CHECKING, Iterable, List, Sequence, Tuple

from repro.trace.events import Instr, Op

if TYPE_CHECKING:  # pragma: no cover
    import numpy

try:  # pragma: no cover - exercised via the REPRO_NO_NUMPY CI leg
    if os.environ.get("REPRO_NO_NUMPY", "") not in ("", "0"):
        raise ImportError("numpy disabled via REPRO_NO_NUMPY")
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Stable op-code table (baked into pickled blocks; append-only).
OP_CODES = {
    Op.READ: 0,
    Op.WRITE: 1,
    Op.MALLOC: 2,
    Op.FREE: 3,
    Op.ASSIGN: 4,
    Op.TAINT: 5,
    Op.UNTAINT: 6,
    Op.JUMP: 7,
    Op.NOP: 8,
}
OPS_BY_CODE: Tuple[Op, ...] = tuple(
    op for op, _ in sorted(OP_CODES.items(), key=lambda kv: kv[1])
)
#: ``op.value`` -> code, for decoding raw stream rows without Op boxing.
CODE_OF_VALUE = {op.value: code for op, code in OP_CODES.items()}

OP_READ = OP_CODES[Op.READ]
OP_WRITE = OP_CODES[Op.WRITE]
OP_MALLOC = OP_CODES[Op.MALLOC]
OP_FREE = OP_CODES[Op.FREE]
OP_ASSIGN = OP_CODES[Op.ASSIGN]
OP_TAINT = OP_CODES[Op.TAINT]
OP_UNTAINT = OP_CODES[Op.UNTAINT]
OP_JUMP = OP_CODES[Op.JUMP]
OP_NOP = OP_CODES[Op.NOP]

#: Sentinel encoding ``dst=None`` (int64 minimum; never a real location).
NO_DST = -(2**63)

#: Ops whose sources/destination count as dereferences (mirrors
#: ``Instr.accessed``): READ/JUMP read their source; WRITE/ASSIGN read
#: their sources and write their destination.
_ACCESS_CODES = frozenset((OP_READ, OP_WRITE, OP_ASSIGN, OP_JUMP))
_DST_ACCESS_CODES = frozenset((OP_WRITE, OP_ASSIGN))

#: Ops that require a destination (mirrors ``Instr.__post_init__``).
_NEEDS_DST = frozenset(
    OP_CODES[op]
    for op in (Op.MALLOC, Op.FREE, Op.WRITE, Op.TAINT, Op.UNTAINT, Op.ASSIGN)
)


class RowDecodeError(ValueError):
    """A raw ``[op, dst, srcs, size]`` row failed validation.

    Carries the offending row so the stream reader can wrap it in the
    same :class:`~repro.errors.TraceError` message the object decoder
    produces.
    """

    def __init__(self, row: object, reason: str) -> None:
        super().__init__(reason)
        self.row = row


def _freeze_i64(values: List[int]):
    if HAVE_NUMPY:
        return np.array(values, dtype=np.int64)
    return array("q", values)


def _freeze_u8(values: List[int]):
    if HAVE_NUMPY:
        return np.array(values, dtype=np.uint8)
    return array("B", values)


class ColumnarBlock:
    """One block's events as parallel columns (see module docstring).

    Instances are immutable by convention: columns are built once by a
    constructor and never written afterwards, so a block may be shared
    across threads and cached alongside its materialized twin.
    """

    __slots__ = ("length", "op", "dst", "size", "src_off", "src_val")

    def __init__(self, length, op, dst, size, src_off, src_val) -> None:
        self.length = length
        self.op = op
        self.dst = dst
        self.size = size
        self.src_off = src_off
        self.src_val = src_val

    def __len__(self) -> int:
        return self.length

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_instrs(cls, instrs: Sequence[Instr]) -> "ColumnarBlock":
        """Convert materialized events (already validated) to columns."""
        op_codes = OP_CODES
        ops: List[int] = []
        dsts: List[int] = []
        sizes: List[int] = []
        src_off: List[int] = [0]
        src_val: List[int] = []
        for instr in instrs:
            ops.append(op_codes[instr.op])
            dsts.append(NO_DST if instr.dst is None else instr.dst)
            sizes.append(instr.size)
            src_val.extend(instr.srcs)
            src_off.append(len(src_val))
        return cls(
            len(ops),
            _freeze_u8(ops),
            _freeze_i64(dsts),
            _freeze_i64(sizes),
            _freeze_i64(src_off),
            _freeze_i64(src_val),
        )

    @classmethod
    def from_rows(cls, rows: Sequence[object]) -> "ColumnarBlock":
        """Decode raw ``[op, dst, srcs, size]`` stream rows to columns.

        This is the version 2 stream reader's fast path: it applies the
        same validation as ``Instr.__post_init__`` but touches no
        dataclass, no enum boxing, no per-event tuple.  A malformed row
        raises :class:`RowDecodeError` carrying the row.
        """
        code_of = CODE_OF_VALUE
        needs_dst = _NEEDS_DST
        ops: List[int] = []
        dsts: List[int] = []
        sizes: List[int] = []
        src_off: List[int] = [0]
        src_val: List[int] = []
        for row in rows:
            try:
                op_value, dst, srcs, size = row
                code = code_of[op_value]
            except (ValueError, TypeError, KeyError):
                raise RowDecodeError(row, "bad row shape or op") from None
            if not isinstance(size, int) or size < 1:
                raise RowDecodeError(row, f"size must be >= 1, got {size!r}")
            if dst is None:
                if code in needs_dst:
                    raise RowDecodeError(row, "op requires a destination")
                dst = NO_DST
            elif not isinstance(dst, int):
                raise RowDecodeError(row, f"bad destination {dst!r}")
            if not isinstance(srcs, list) or not all(
                isinstance(s, int) for s in srcs
            ):
                raise RowDecodeError(row, f"bad sources {srcs!r}")
            nsrc = len(srcs)
            if (code == OP_READ or code == OP_JUMP) and nsrc != 1:
                raise RowDecodeError(row, "op requires exactly one source")
            if code == OP_ASSIGN and nsrc > 2:
                raise RowDecodeError(row, "assign takes at most two sources")
            ops.append(code)
            dsts.append(dst)
            sizes.append(size)
            src_val.extend(srcs)
            src_off.append(len(src_val))
        return cls(
            len(ops),
            _freeze_u8(ops),
            _freeze_i64(dsts),
            _freeze_i64(sizes),
            _freeze_i64(src_off),
            _freeze_i64(src_val),
        )

    @classmethod
    def concat(cls, blocks: Sequence["ColumnarBlock"]) -> "ColumnarBlock":
        """Concatenate blocks' events in order, staying columnar.

        The adaptive serve path coalesces consecutive producer epochs
        into one analysis epoch; this is its merge primitive -- pure
        column appends (the CSR source offsets shift by each block's
        running total), no per-event objects.
        """
        blocks = [b for b in blocks]
        if not blocks:
            return cls.from_instrs(())
        if len(blocks) == 1:
            return blocks[0]
        if HAVE_NUMPY:
            op = np.concatenate([np.asarray(b.op) for b in blocks])
            dst = np.concatenate([np.asarray(b.dst) for b in blocks])
            size = np.concatenate([np.asarray(b.size) for b in blocks])
            src_val = np.concatenate(
                [np.asarray(b.src_val) for b in blocks]
            )
            parts = [np.zeros(1, dtype=np.int64)]
            base = 0
            for b in blocks:
                off = np.asarray(b.src_off)
                parts.append(off[1:] + base)
                base += int(off[-1])
            return cls(
                int(op.shape[0]),
                op.astype(np.uint8, copy=False),
                dst,
                size,
                np.concatenate(parts),
                src_val,
            )
        op = array("B")
        dst = array("q")
        size = array("q")
        src_off = array("q", [0])
        src_val = array("q")
        base = 0
        for b in blocks:
            op.extend(b.op)
            dst.extend(b.dst)
            size.extend(b.size)
            src_val.extend(b.src_val)
            offs = b.src_off
            for o in list(offs)[1:]:
                src_off.append(o + base)
            base += int(offs[-1]) if len(offs) else 0
        return cls(len(op), op, dst, size, src_off, src_val)

    # -- materialization ------------------------------------------------

    def instr(self, i: int) -> Instr:
        """Materialize event ``i`` as an :class:`Instr`."""
        dst = self.dst[i]
        lo, hi = self.src_off[i], self.src_off[i + 1]
        return Instr(
            OPS_BY_CODE[self.op[i]],
            dst=None if dst == NO_DST else int(dst),
            srcs=tuple(int(s) for s in self.src_val[lo:hi]),
            size=int(self.size[i]),
        )

    def to_instrs(self) -> Tuple[Instr, ...]:
        """Materialize the whole block (the slow/object path)."""
        ops_by_code = OPS_BY_CODE
        # .tolist() converts numpy scalars to plain ints in one C pass.
        ops = self.op.tolist()
        dsts = self.dst.tolist()
        sizes = self.size.tolist()
        offs = self.src_off.tolist()
        vals = self.src_val.tolist()
        return tuple(
            Instr(
                ops_by_code[ops[i]],
                dst=None if dsts[i] == NO_DST else dsts[i],
                srcs=tuple(vals[offs[i]:offs[i + 1]]),
                size=sizes[i],
            )
            for i in range(self.length)
        )

    def gather(self, idx) -> Tuple[List[int], List[int], List[int], List[int]]:
        """CSR-gather the rows at ``idx`` (a sorted numpy index array).

        Returns ``(codes, dsts, bounds, flat_srcs)`` as plain Python
        lists, where row ``k``'s sources are
        ``flat_srcs[bounds[k]:bounds[k + 1]]``.  This is the shared
        selection step of every vector kernel (AddrCheck, TaintCheck,
        the dataflow summarizer): one LUT pass picks the relevant rows,
        one gather materializes just those rows' fields, and only the
        (typically sparse) selection is ever touched from Python.
        Numpy path only -- pure-Python callers iterate the columns
        directly.
        """
        src_off = np.asarray(self.src_off)
        lo = src_off[idx]
        counts = src_off[idx + 1] - lo
        out_off = np.zeros(idx.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=out_off[1:])
        total = int(out_off[-1])
        if total:
            flat = np.repeat(lo - out_off[:-1], counts)
            flat += np.arange(total, dtype=np.int64)
            flat_srcs = np.asarray(self.src_val)[flat].tolist()
        else:
            flat_srcs = []
        return (
            np.asarray(self.op)[idx].tolist(),
            np.asarray(self.dst)[idx].tolist(),
            out_off.tolist(),
            flat_srcs,
        )

    def to_rows(self) -> List[list]:
        """Encode as raw ``[op, dst, srcs, size]`` stream rows."""
        ops = self.op.tolist()
        dsts = self.dst.tolist()
        sizes = self.size.tolist()
        offs = self.src_off.tolist()
        vals = self.src_val.tolist()
        return [
            [
                OPS_BY_CODE[ops[i]].value,
                None if dsts[i] == NO_DST else dsts[i],
                vals[offs[i]:offs[i + 1]],
                sizes[i],
            ]
            for i in range(self.length)
        ]

    # -- pickling (compact wire form, backend-agnostic) -----------------

    def __getstate__(self):
        # Raw little-endian bytes: identical for numpy and array-module
        # columns on every platform this runs on, and orders of
        # magnitude cheaper to pickle than per-event objects.
        return (
            self.length,
            self.op.tobytes(),
            self.dst.tobytes(),
            self.size.tobytes(),
            self.src_off.tobytes(),
            self.src_val.tobytes(),
        )

    def __setstate__(self, state) -> None:
        length, op_b, dst_b, size_b, off_b, val_b = state
        self.length = length
        if HAVE_NUMPY:
            self.op = np.frombuffer(op_b, dtype=np.uint8)
            self.dst = np.frombuffer(dst_b, dtype=np.int64)
            self.size = np.frombuffer(size_b, dtype=np.int64)
            self.src_off = np.frombuffer(off_b, dtype=np.int64)
            self.src_val = np.frombuffer(val_b, dtype=np.int64)
        else:
            self.op = array("B")
            self.op.frombytes(op_b)
            self.dst = array("q")
            self.dst.frombytes(dst_b)
            self.size = array("q")
            self.size.frombytes(size_b)
            self.src_off = array("q")
            self.src_off.frombytes(off_b)
            self.src_val = array("q")
            self.src_val.frombytes(val_b)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarBlock):
            return NotImplemented
        return self.length == other.length and self.__getstate__() == (
            other.__getstate__()
        )

    def __hash__(self) -> int:
        return hash(self.__getstate__())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backend = "numpy" if HAVE_NUMPY else "array"
        return f"ColumnarBlock(n={self.length}, backend={backend})"


class ColumnBuilder:
    """Incremental builder for generators that synthesize events
    directly as columns (no ``Instr`` on the fast path)."""

    __slots__ = ("ops", "dsts", "sizes", "src_off", "src_val")

    def __init__(self) -> None:
        self.ops: List[int] = []
        self.dsts: List[int] = []
        self.sizes: List[int] = []
        self.src_off: List[int] = [0]
        self.src_val: List[int] = []

    def emit(
        self,
        code: int,
        dst: int = NO_DST,
        srcs: Iterable[int] = (),
        size: int = 1,
    ) -> None:
        self.ops.append(code)
        self.dsts.append(dst)
        self.sizes.append(size)
        self.src_val.extend(srcs)
        self.src_off.append(len(self.src_val))

    def __len__(self) -> int:
        return len(self.ops)

    def freeze(self) -> ColumnarBlock:
        return ColumnarBlock(
            len(self.ops),
            _freeze_u8(self.ops),
            _freeze_i64(self.dsts),
            _freeze_i64(self.sizes),
            _freeze_i64(self.src_off),
            _freeze_i64(self.src_val),
        )
