"""Butterfly analysis core: epochs, windows, engine, canonical analyses.

Module map (paper section in parentheses):

- :mod:`repro.core.epoch` -- heartbeats, uncertainty epochs, blocks (4.1)
- :mod:`repro.core.window` -- butterflies: head/body/tail/wings (4.1-4.2)
- :mod:`repro.core.ordering` -- valid orderings, the correctness oracle (5)
- :mod:`repro.core.state` -- SOS and LSOS containers (4.2, 5.1.2, 5.2.1)
- :mod:`repro.core.framework` -- the generic two-pass engine (4.3)
- :mod:`repro.core.reaching_defs` -- dynamic parallel reaching definitions (5.1)
- :mod:`repro.core.reaching_exprs` -- dynamic parallel reaching expressions (5.2)
"""

from repro.core.epoch import (
    AutoHeartbeat,
    Block,
    BlockId,
    EpochPartition,
    ExplicitHeartbeat,
    FixedHeartbeat,
    GlobalOrderHeartbeat,
    HeartbeatPolicy,
    InstrId,
    SkewedHeartbeat,
    partition_fixed,
    partition_from_boundaries,
    partition_with_skew,
)
from repro.core.window import Butterfly, sliding_windows
from repro.core.framework import ButterflyEngine, ButterflyAnalysis

__all__ = [
    "Block",
    "BlockId",
    "InstrId",
    "EpochPartition",
    "HeartbeatPolicy",
    "FixedHeartbeat",
    "SkewedHeartbeat",
    "GlobalOrderHeartbeat",
    "AutoHeartbeat",
    "ExplicitHeartbeat",
    "partition_fixed",
    "partition_from_boundaries",
    "partition_with_skew",
    "Butterfly",
    "sliding_windows",
    "ButterflyEngine",
    "ButterflyAnalysis",
]
