"""ASCII rendering of butterflies and partitions (Figure 6/7 style).

Debugging aid and documentation generator: draws the epoch/thread grid
with the sliding window highlighted -- ``B`` body, ``H`` head, ``T``
tail, ``w`` wings, ``.`` strictly-ordered blocks outside the window.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.epoch import EpochPartition
from repro.core.window import butterfly_for


def render_partition(
    partition: EpochPartition, max_epochs: Optional[int] = None
) -> str:
    """The block grid with per-block sizes."""
    epochs = partition.num_epochs
    if max_epochs is not None:
        epochs = min(epochs, max_epochs)
    header = "epoch | " + " | ".join(
        f"t{t}".center(6) for t in range(partition.num_threads)
    )
    lines = [header, "-" * len(header)]
    for lid in range(epochs):
        cells = [
            str(len(partition.block(lid, t))).center(6)
            for t in range(partition.num_threads)
        ]
        lines.append(f"{lid:5d} | " + " | ".join(cells))
    if epochs < partition.num_epochs:
        lines.append(f"  ... ({partition.num_epochs - epochs} more epochs)")
    return "\n".join(lines)


def render_butterfly(
    partition: EpochPartition, lid: int, tid: int
) -> str:
    """The window of block ``(l, t)``: body, head, tail, and wings."""
    butterfly = butterfly_for(partition, lid, tid)
    wing_ids = set(butterfly.wing_ids())
    lo = max(0, lid - 2)
    hi = min(partition.num_epochs - 1, lid + 2)
    header = "epoch | " + " | ".join(
        f"t{t}".center(4) for t in range(partition.num_threads)
    )
    lines = [
        f"butterfly for block (l={lid}, t={tid})",
        header,
        "-" * len(header),
    ]
    for l in range(lo, hi + 1):
        cells: List[str] = []
        for t in range(partition.num_threads):
            if (l, t) == (lid, tid):
                mark = "B"
            elif butterfly.head is not None and (l, t) == butterfly.head.block_id:
                mark = "H"
            elif butterfly.tail is not None and (l, t) == butterfly.tail.block_id:
                mark = "T"
            elif (l, t) in wing_ids:
                mark = "w"
            else:
                mark = "."
            cells.append(mark.center(4))
        lines.append(f"{l:5d} | " + " | ".join(cells))
    lines.append("B body  H head  T tail  w wings  . strictly ordered")
    return "\n".join(lines)
