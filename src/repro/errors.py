"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class TraceError(ReproError):
    """A malformed trace or event sequence was supplied."""


class PartitionError(ReproError):
    """An epoch partition is inconsistent with its trace."""


class AnalysisError(ReproError):
    """The butterfly analysis engine was driven incorrectly."""


class SimulationError(ReproError):
    """The CMP/LBA timing substrate was configured incorrectly."""


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""


class ResilienceError(ReproError):
    """The resilience layer could not recover from a fault (retries
    exhausted, an unrecoverable backend failure, or a malformed
    fault-injection spec)."""


class CheckpointError(ResilienceError):
    """A checkpoint file is unreadable, incompatible, or was taken
    under a different configuration than the resuming run."""
