"""Trace persistence: save/load traces as JSON lines.

Traces are the interchange unit of this library (the LBA log, in
effect), so they deserve a stable on-disk form.  Two layouts share the
``repro-trace`` envelope:

Version 1 (thread-major, :func:`dump` / :func:`load`)
    A header, then one line per thread's whole event list, then the
    optional orders and pre-allocated set.  Compact and diff-able, but
    a reader must materialize every thread before the first epoch can
    be cut -- O(trace) memory.

Version 2 (epoch-major stream, :func:`dump_stream` / :func:`iter_load`)
    A header carrying the shape (threads, epochs, preallocated), then
    one line *per epoch* holding that epoch's blocks for every thread,
    then an ``epochs_written`` footer that distinguishes a complete
    stream from a truncated one.  A reader holds one epoch at a time,
    so the butterfly engine can analyze traces far larger than RAM
    (see ``docs/streaming.md``).  Epoch records carry each block's
    start offset, so checkpoint resume can skip already-processed
    records without decoding them.

Every structural defect in either format -- invalid JSON, truncation,
trailing garbage, out-of-order epochs -- raises :class:`TraceError`
with ``file:line`` context, never a raw ``JSONDecodeError``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterator, List, Optional, Union

from repro.core.columnar import ColumnarBlock, RowDecodeError
from repro.core.epoch import Block, EpochPartition
from repro.core.stream import EpochSource
from repro.errors import TraceError
from repro.trace.events import Instr, Op
from repro.trace.program import ThreadTrace, TraceProgram

FORMAT_VERSION = 1
STREAM_VERSION = 2


def _encode_instr(instr: Instr) -> list:
    # Positional, compact: [op, dst, srcs, size].
    return [instr.op.value, instr.dst, list(instr.srcs), instr.size]


def _decode_instr(raw: list) -> Instr:
    try:
        op, dst, srcs, size = raw
        return Instr(Op(op), dst=dst, srcs=tuple(srcs), size=size)
    except (ValueError, TypeError) as exc:
        raise TraceError(f"malformed instruction record: {raw!r}") from exc


def dump(program: TraceProgram, fp: IO[str]) -> None:
    """Write ``program`` to an open text file."""
    header = {
        "format": "repro-trace",
        "version": FORMAT_VERSION,
        "threads": program.num_threads,
    }
    fp.write(json.dumps(header) + "\n")
    for trace in program.threads:
        fp.write(
            json.dumps([_encode_instr(i) for i in trace.instrs]) + "\n"
        )
    fp.write(json.dumps({"true_order": program.true_order}) + "\n")
    fp.write(json.dumps({"timesliced_order": program.timesliced_order}) + "\n")
    fp.write(json.dumps({"preallocated": sorted(program.preallocated)}) + "\n")


def load(fp: IO[str], name: str = "<trace>") -> TraceProgram:
    """Read a program written by :func:`dump`.

    Every structural defect -- invalid JSON, a truncated file, missing
    keys, wrong record shapes -- raises :class:`TraceError` carrying
    ``name`` and the offending line number, never a raw ``KeyError`` or
    ``ValueError``.  ``name`` defaults to a placeholder; ``load_file``
    passes the path.
    """
    lineno = 0

    def next_record(what: str) -> object:
        nonlocal lineno
        lineno += 1
        line = fp.readline()
        if not line.strip():
            raise TraceError(
                f"{name}:{lineno}: unexpected end of file "
                f"(expected {what})"
            )
        try:
            return json.loads(line)
        except ValueError as exc:
            raise TraceError(
                f"{name}:{lineno}: invalid JSON ({what}): {exc}"
            ) from None

    def tail_field(key: str) -> object:
        record = next_record(key)
        if not isinstance(record, dict) or key not in record:
            raise TraceError(
                f"{name}:{lineno}: expected a {{{key!r}: ...}} record, "
                f"got {record!r}"
            )
        return record[key]

    header = next_record("header")
    if not isinstance(header, dict) or header.get("format") != "repro-trace":
        raise TraceError(f"{name}:{lineno}: not a repro trace file")
    if header.get("version") != FORMAT_VERSION:
        raise TraceError(
            f"{name}:{lineno}: unsupported trace version "
            f"{header.get('version')!r}"
        )
    num_threads = header.get("threads")
    if not isinstance(num_threads, int) or num_threads < 0:
        raise TraceError(
            f"{name}:{lineno}: bad thread count {num_threads!r}"
        )
    threads: List[ThreadTrace] = []
    for tid in range(num_threads):
        raw = next_record(f"thread {tid} events")
        if not isinstance(raw, list):
            raise TraceError(
                f"{name}:{lineno}: thread {tid} events must be a list, "
                f"got {type(raw).__name__}"
            )
        try:
            threads.append(ThreadTrace([_decode_instr(r) for r in raw]))
        except TraceError as exc:
            raise TraceError(f"{name}:{lineno}: {exc}") from None
    true_order = tail_field("true_order")
    ts_order = tail_field("timesliced_order")
    preallocated = tail_field("preallocated")
    # The preallocated record is the last one; anything but trailing
    # whitespace after it means a concatenated/corrupted file, and
    # silently ignoring it would hide real data loss.
    for extra in fp:
        lineno += 1
        if extra.strip():
            raise TraceError(
                f"{name}:{lineno}: trailing garbage after the final "
                f"record: {extra.strip()[:60]!r}"
            )
    try:
        program = TraceProgram(
            threads,
            true_order=(
                [tuple(x) for x in true_order] if true_order else None
            ),
            timesliced_order=(
                [tuple(x) for x in ts_order] if ts_order else None
            ),
            preallocated=frozenset(preallocated),
        )
        program.validate()
    except TraceError as exc:
        raise TraceError(f"{name}: {exc}") from None
    except (TypeError, ValueError) as exc:
        raise TraceError(f"{name}: malformed trace records: {exc}") from None
    return program


def save_file(program: TraceProgram, path: Union[str, Path]) -> None:
    """Write ``program`` to ``path``."""
    with open(path, "w") as fp:
        dump(program, fp)


def load_file(path: Union[str, Path]) -> TraceProgram:
    """Read a program from ``path`` (diagnostics carry the path)."""
    with open(path) as fp:
        return load(fp, name=str(path))


def file_version(path: Union[str, Path]) -> int:
    """Peek a trace file's format version (1 or 2) from its header.

    The CLI uses this to route ``--trace`` inputs: version 1 files are
    materialized with :func:`load_file`, version 2 files stream through
    :func:`iter_load`.
    """
    name = str(path)
    with open(path) as fp:
        line = fp.readline()
    try:
        header = json.loads(line)
    except ValueError as exc:
        raise TraceError(f"{name}:1: invalid JSON (header): {exc}") from None
    if not isinstance(header, dict) or header.get("format") != "repro-trace":
        raise TraceError(f"{name}:1: not a repro trace file")
    version = header.get("version")
    if version not in (FORMAT_VERSION, STREAM_VERSION):
        raise TraceError(
            f"{name}:1: unsupported trace version {version!r}"
        )
    return version


# ---------------------------------------------------------------------------
# Version 2: epoch-major stream format
# ---------------------------------------------------------------------------


def dump_stream(partition: EpochPartition, fp: IO[str]) -> None:
    """Write ``partition`` as an epoch-major (version 2) stream.

    One line per epoch, each carrying every thread's block for that
    epoch plus the blocks' start offsets, closed by an
    ``epochs_written`` footer.  The writer holds one epoch at a time
    (the partition's block cache is evicted in step), so dumping is
    O(epoch) resident like reading back is.

    Streams are cut once, at write time: the epoch geometry is baked
    into the file, so every reader -- and every resumed run -- sees
    identical blocks.  The recorded global orders are deliberately not
    written; a stream trades the sequential-oracle replay for bounded
    memory.
    """
    header = {
        "format": "repro-trace",
        "version": STREAM_VERSION,
        "threads": partition.num_threads,
        "epochs": partition.num_epochs,
        "preallocated": sorted(partition.program.preallocated),
    }
    fp.write(json.dumps(header) + "\n")
    for lid in range(partition.num_epochs):
        row = partition.epoch_blocks(lid)
        record = {
            "epoch": lid,
            "starts": [block.start for block in row],
            "blocks": [
                # Columnar-backed blocks encode straight from their
                # columns; only object-backed blocks walk Instr objects.
                block.columns.to_rows()
                if block.has_columns
                else [_encode_instr(i) for i in block.instrs]
                for block in row
            ],
        }
        fp.write(json.dumps(record) + "\n")
        partition.evict_blocks(lid + 1)
    fp.write(json.dumps({"epochs_written": partition.num_epochs}) + "\n")


def save_stream_file(
    partition: EpochPartition, path: Union[str, Path]
) -> None:
    """Write ``partition`` as a version 2 stream to ``path``."""
    with open(path, "w") as fp:
        dump_stream(partition, fp)


def stream_header(fp: IO[str], name: str) -> dict:
    """Read and validate a version 2 header (line 1 of ``fp``).

    Public because the serve client builds its ``HELLO`` frame from a
    stream file's header without decoding any epoch records.
    """
    line = fp.readline()
    if not line.strip():
        raise TraceError(f"{name}:1: unexpected end of file (expected header)")
    try:
        header = json.loads(line)
    except ValueError as exc:
        raise TraceError(f"{name}:1: invalid JSON (header): {exc}") from None
    if not isinstance(header, dict) or header.get("format") != "repro-trace":
        raise TraceError(f"{name}:1: not a repro trace file")
    if header.get("version") != STREAM_VERSION:
        raise TraceError(
            f"{name}:1: not a stream trace (version "
            f"{header.get('version')!r}, expected {STREAM_VERSION})"
        )
    threads = header.get("threads")
    if not isinstance(threads, int) or threads < 0:
        raise TraceError(f"{name}:1: bad thread count {threads!r}")
    epochs = header.get("epochs")
    if not isinstance(epochs, int) or epochs < 0:
        raise TraceError(f"{name}:1: bad epoch count {epochs!r}")
    prealloc = header.get("preallocated")
    if not isinstance(prealloc, list):
        raise TraceError(
            f"{name}:1: bad preallocated set {prealloc!r}"
        )
    return header


def decode_epoch_row(
    record: object, lid: int, num_threads: int, name: str, lineno: int
) -> List[Block]:
    """Turn one epoch record into a row of :class:`Block` objects.

    Shared by the version 2 file reader and the serve daemon's framed
    protocol (one ``EPOCH`` frame carries exactly one of these
    records), so a byte stream arriving over a socket is validated by
    the same code -- and rejected with the same diagnostics -- as a
    trace file.  For the daemon, ``name`` is the stream id and
    ``lineno`` the frame ordinal.
    """
    if not isinstance(record, dict):
        raise TraceError(
            f"{name}:{lineno}: expected an epoch record, got {record!r}"
        )
    if "epochs_written" in record:
        raise TraceError(
            f"{name}:{lineno}: truncated stream: footer arrived at "
            f"epoch {lid} (expected more epoch records)"
        )
    if record.get("epoch") != lid:
        raise TraceError(
            f"{name}:{lineno}: epochs must be recorded in order: "
            f"expected epoch {lid}, got {record.get('epoch')!r}"
        )
    starts = record.get("starts")
    blocks = record.get("blocks")
    if (
        not isinstance(starts, list)
        or not isinstance(blocks, list)
        or len(starts) != num_threads
        or len(blocks) != num_threads
    ):
        raise TraceError(
            f"{name}:{lineno}: epoch {lid} must carry 'starts' and "
            f"'blocks' lists with one entry per thread ({num_threads})"
        )
    row = []
    for tid, (start, raw) in enumerate(zip(starts, blocks)):
        if not isinstance(start, int) or not isinstance(raw, list):
            raise TraceError(
                f"{name}:{lineno}: epoch {lid} thread {tid}: malformed "
                f"block record"
            )
        # Fast path: decode raw rows straight into columns, so streamed
        # epochs reach the engine without materializing one Instr.  The
        # validation (and the error text) matches _decode_instr.
        try:
            cols = ColumnarBlock.from_rows(raw)
        except RowDecodeError as exc:
            raise TraceError(
                f"{name}:{lineno}: malformed instruction record: "
                f"{exc.row!r}"
            ) from None
        row.append(Block(lid, tid, start, columns=cols))
    return row


def stream_epochs(
    fp: IO[str], name: str = "<trace>", start: int = 0
) -> Iterator[List[Block]]:
    """Yield one epoch's row of blocks at a time from a version 2 stream.

    ``fp`` must be positioned at the start of the file; the header is
    consumed first.  ``start > 0`` is the checkpoint-resume seek:
    already-processed epoch records are skipped *without* JSON-decoding
    them (each epoch is exactly one line).  Truncation -- EOF before
    the header's epoch count, or a missing/mismatched footer -- raises
    :class:`TraceError` with ``file:line`` context, as does trailing
    garbage after the footer.
    """
    header = stream_header(fp, name)
    yield from _stream_rows(fp, header, name, start)


def _stream_rows(
    fp: IO[str], header: dict, name: str, start: int
) -> Iterator[List[Block]]:
    num_threads = header["threads"]
    num_epochs = header["epochs"]
    if not 0 <= start <= num_epochs:
        raise TraceError(
            f"{name}: cannot seek to epoch {start} of a "
            f"{num_epochs}-epoch stream"
        )
    lineno = 1
    for skipped in range(start):
        lineno += 1
        if not fp.readline():
            raise TraceError(
                f"{name}:{lineno}: unexpected end of file while seeking "
                f"(expected epoch {skipped})"
            )
    for lid in range(start, num_epochs):
        lineno += 1
        line = fp.readline()
        if not line.strip():
            raise TraceError(
                f"{name}:{lineno}: unexpected end of file "
                f"(expected epoch {lid})"
            )
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise TraceError(
                f"{name}:{lineno}: invalid JSON (epoch {lid}): {exc}"
            ) from None
        yield decode_epoch_row(record, lid, num_threads, name, lineno)
    lineno += 1
    line = fp.readline()
    if not line.strip():
        raise TraceError(
            f"{name}:{lineno}: unexpected end of file (expected the "
            f"epochs_written footer; the stream was truncated)"
        )
    try:
        footer = json.loads(line)
    except ValueError as exc:
        raise TraceError(
            f"{name}:{lineno}: invalid JSON (footer): {exc}"
        ) from None
    if (
        not isinstance(footer, dict)
        or footer.get("epochs_written") != num_epochs
    ):
        raise TraceError(
            f"{name}:{lineno}: bad footer {footer!r} (expected "
            f"{{'epochs_written': {num_epochs}}})"
        )
    for extra in fp:
        lineno += 1
        if extra.strip():
            raise TraceError(
                f"{name}:{lineno}: trailing garbage after the footer: "
                f"{extra.strip()[:60]!r}"
            )


class StreamTraceSource(EpochSource):
    """An :class:`EpochSource` over a version 2 stream file.

    Construction reads only the header (shape and preallocated set);
    each :meth:`epochs` call opens a fresh handle, so the source can be
    iterated more than once and a resumed run can seek past processed
    epochs.  At any instant one epoch record is decoded -- the trace
    never materializes.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = str(path)
        with open(self._path) as fp:
            self._header = stream_header(fp, self._path)

    @property
    def path(self) -> str:
        return self._path

    @property
    def num_threads(self) -> int:
        return self._header["threads"]

    @property
    def num_epochs(self) -> Optional[int]:
        return self._header["epochs"]

    @property
    def preallocated(self) -> frozenset:
        return frozenset(self._header["preallocated"])

    def epochs(self, start: int = 0) -> Iterator[List[Block]]:
        with open(self._path) as fp:
            fp.readline()  # the header, validated at construction
            yield from _stream_rows(fp, self._header, self._path, start)


def iter_load(path: Union[str, Path]) -> StreamTraceSource:
    """Open a version 2 stream as an :class:`EpochSource`.

    The counterpart of :func:`load_file` for traces larger than RAM:
    nothing beyond the header is read until the engine pulls epochs.
    """
    return StreamTraceSource(path)
