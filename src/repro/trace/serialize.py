"""Trace persistence: save/load :class:`TraceProgram` as JSON lines.

Traces are the interchange unit of this library (the LBA log, in
effect), so they deserve a stable on-disk form: one JSON object per
line -- a header, then one line per thread's events, then the optional
orders and pre-allocated set.  Compact, diff-able, and stream-parsable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, List, Union

from repro.errors import TraceError
from repro.trace.events import Instr, Op
from repro.trace.program import ThreadTrace, TraceProgram

FORMAT_VERSION = 1


def _encode_instr(instr: Instr) -> list:
    # Positional, compact: [op, dst, srcs, size].
    return [instr.op.value, instr.dst, list(instr.srcs), instr.size]


def _decode_instr(raw: list) -> Instr:
    try:
        op, dst, srcs, size = raw
        return Instr(Op(op), dst=dst, srcs=tuple(srcs), size=size)
    except (ValueError, TypeError) as exc:
        raise TraceError(f"malformed instruction record: {raw!r}") from exc


def dump(program: TraceProgram, fp: IO[str]) -> None:
    """Write ``program`` to an open text file."""
    header = {
        "format": "repro-trace",
        "version": FORMAT_VERSION,
        "threads": program.num_threads,
    }
    fp.write(json.dumps(header) + "\n")
    for trace in program.threads:
        fp.write(
            json.dumps([_encode_instr(i) for i in trace.instrs]) + "\n"
        )
    fp.write(json.dumps({"true_order": program.true_order}) + "\n")
    fp.write(json.dumps({"timesliced_order": program.timesliced_order}) + "\n")
    fp.write(json.dumps({"preallocated": sorted(program.preallocated)}) + "\n")


def load(fp: IO[str], name: str = "<trace>") -> TraceProgram:
    """Read a program written by :func:`dump`.

    Every structural defect -- invalid JSON, a truncated file, missing
    keys, wrong record shapes -- raises :class:`TraceError` carrying
    ``name`` and the offending line number, never a raw ``KeyError`` or
    ``ValueError``.  ``name`` defaults to a placeholder; ``load_file``
    passes the path.
    """
    lineno = 0

    def next_record(what: str) -> object:
        nonlocal lineno
        lineno += 1
        line = fp.readline()
        if not line.strip():
            raise TraceError(
                f"{name}:{lineno}: unexpected end of file "
                f"(expected {what})"
            )
        try:
            return json.loads(line)
        except ValueError as exc:
            raise TraceError(
                f"{name}:{lineno}: invalid JSON ({what}): {exc}"
            ) from None

    def tail_field(key: str) -> object:
        record = next_record(key)
        if not isinstance(record, dict) or key not in record:
            raise TraceError(
                f"{name}:{lineno}: expected a {{{key!r}: ...}} record, "
                f"got {record!r}"
            )
        return record[key]

    header = next_record("header")
    if not isinstance(header, dict) or header.get("format") != "repro-trace":
        raise TraceError(f"{name}:{lineno}: not a repro trace file")
    if header.get("version") != FORMAT_VERSION:
        raise TraceError(
            f"{name}:{lineno}: unsupported trace version "
            f"{header.get('version')!r}"
        )
    num_threads = header.get("threads")
    if not isinstance(num_threads, int) or num_threads < 0:
        raise TraceError(
            f"{name}:{lineno}: bad thread count {num_threads!r}"
        )
    threads: List[ThreadTrace] = []
    for tid in range(num_threads):
        raw = next_record(f"thread {tid} events")
        if not isinstance(raw, list):
            raise TraceError(
                f"{name}:{lineno}: thread {tid} events must be a list, "
                f"got {type(raw).__name__}"
            )
        try:
            threads.append(ThreadTrace([_decode_instr(r) for r in raw]))
        except TraceError as exc:
            raise TraceError(f"{name}:{lineno}: {exc}") from None
    true_order = tail_field("true_order")
    ts_order = tail_field("timesliced_order")
    preallocated = tail_field("preallocated")
    try:
        program = TraceProgram(
            threads,
            true_order=(
                [tuple(x) for x in true_order] if true_order else None
            ),
            timesliced_order=(
                [tuple(x) for x in ts_order] if ts_order else None
            ),
            preallocated=frozenset(preallocated),
        )
        program.validate()
    except TraceError as exc:
        raise TraceError(f"{name}: {exc}") from None
    except (TypeError, ValueError) as exc:
        raise TraceError(f"{name}: malformed trace records: {exc}") from None
    return program


def save_file(program: TraceProgram, path: Union[str, Path]) -> None:
    """Write ``program`` to ``path``."""
    with open(path, "w") as fp:
        dump(program, fp)


def load_file(path: Union[str, Path]) -> TraceProgram:
    """Read a program from ``path`` (diagnostics carry the path)."""
    with open(path) as fp:
        return load(fp, name=str(path))
