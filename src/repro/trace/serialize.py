"""Trace persistence: save/load :class:`TraceProgram` as JSON lines.

Traces are the interchange unit of this library (the LBA log, in
effect), so they deserve a stable on-disk form: one JSON object per
line -- a header, then one line per thread's events, then the optional
orders and pre-allocated set.  Compact, diff-able, and stream-parsable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, List, Union

from repro.errors import TraceError
from repro.trace.events import Instr, Op
from repro.trace.program import ThreadTrace, TraceProgram

FORMAT_VERSION = 1


def _encode_instr(instr: Instr) -> list:
    # Positional, compact: [op, dst, srcs, size].
    return [instr.op.value, instr.dst, list(instr.srcs), instr.size]


def _decode_instr(raw: list) -> Instr:
    try:
        op, dst, srcs, size = raw
        return Instr(Op(op), dst=dst, srcs=tuple(srcs), size=size)
    except (ValueError, TypeError) as exc:
        raise TraceError(f"malformed instruction record: {raw!r}") from exc


def dump(program: TraceProgram, fp: IO[str]) -> None:
    """Write ``program`` to an open text file."""
    header = {
        "format": "repro-trace",
        "version": FORMAT_VERSION,
        "threads": program.num_threads,
    }
    fp.write(json.dumps(header) + "\n")
    for trace in program.threads:
        fp.write(
            json.dumps([_encode_instr(i) for i in trace.instrs]) + "\n"
        )
    fp.write(json.dumps({"true_order": program.true_order}) + "\n")
    fp.write(json.dumps({"timesliced_order": program.timesliced_order}) + "\n")
    fp.write(json.dumps({"preallocated": sorted(program.preallocated)}) + "\n")


def load(fp: IO[str]) -> TraceProgram:
    """Read a program written by :func:`dump`."""
    header = json.loads(fp.readline())
    if header.get("format") != "repro-trace":
        raise TraceError("not a repro trace file")
    if header.get("version") != FORMAT_VERSION:
        raise TraceError(
            f"unsupported trace version {header.get('version')!r}"
        )
    threads: List[ThreadTrace] = []
    for _ in range(header["threads"]):
        raw = json.loads(fp.readline())
        threads.append(ThreadTrace([_decode_instr(r) for r in raw]))
    true_order = json.loads(fp.readline())["true_order"]
    ts_order = json.loads(fp.readline())["timesliced_order"]
    preallocated = json.loads(fp.readline())["preallocated"]
    program = TraceProgram(
        threads,
        true_order=[tuple(x) for x in true_order] if true_order else None,
        timesliced_order=(
            [tuple(x) for x in ts_order] if ts_order else None
        ),
        preallocated=frozenset(preallocated),
    )
    program.validate()
    return program


def save_file(program: TraceProgram, path: Union[str, Path]) -> None:
    """Write ``program`` to ``path``."""
    with open(path, "w") as fp:
        dump(program, fp)


def load_file(path: Union[str, Path]) -> TraceProgram:
    """Read a program from ``path``."""
    with open(path) as fp:
        return load(fp)
