"""Serializations of parallel traces under different consistency assumptions.

Butterfly analysis never sees an interleaving; these helpers exist to
(1) drive the *sequential* baseline lifeguards (the "timesliced" state of
the art in Figure 11 interleaves all threads onto one stream), and
(2) provide ground-truth oracles in tests: enumerating every sequentially
consistent interleaving of a small trace, or sampling relaxed-memory
reorderings, lets the suite check the paper's zero-false-negative
theorems against *all* possible executions.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.trace.events import Instr, Op
from repro.trace.program import GlobalRef, TraceProgram


def round_robin(program: TraceProgram, quantum: int = 1) -> List[GlobalRef]:
    """Interleave threads round-robin with a fixed quantum.

    This models the timesliced baseline: application threads share one
    core and the OS switches between them every ``quantum`` events.
    """
    if quantum < 1:
        raise ValueError("quantum must be >= 1")
    cursors = [0] * program.num_threads
    order: List[GlobalRef] = []
    remaining = program.total_instructions
    while remaining:
        progressed = False
        for t, trace in enumerate(program.threads):
            take = min(quantum, len(trace) - cursors[t])
            for _ in range(take):
                order.append((t, cursors[t]))
                cursors[t] += 1
                remaining -= 1
                progressed = True
        if not progressed:  # pragma: no cover - defensive
            break
    return order


def random_interleave(
    program: TraceProgram, rng: Optional[random.Random] = None
) -> List[GlobalRef]:
    """One uniformly random sequentially consistent interleaving."""
    rng = rng or random.Random()
    cursors = [0] * program.num_threads
    live = [t for t, tr in enumerate(program.threads) if len(tr) > 0]
    order: List[GlobalRef] = []
    while live:
        t = rng.choice(live)
        order.append((t, cursors[t]))
        cursors[t] += 1
        if cursors[t] == len(program.threads[t]):
            live.remove(t)
    return order


def all_interleavings(program: TraceProgram) -> Iterator[List[GlobalRef]]:
    """Every sequentially consistent interleaving (exhaustive; tests only).

    The count is multinomial in the thread lengths, so callers must keep
    traces tiny (the test-suite stays under ~10 total events).
    """
    lengths = [len(t) for t in program.threads]

    def rec(cursors: Tuple[int, ...]) -> Iterator[List[GlobalRef]]:
        if all(c == n for c, n in zip(cursors, lengths)):
            yield []
            return
        for t in range(program.num_threads):
            if cursors[t] < lengths[t]:
                advanced = tuple(
                    c + 1 if i == t else c for i, c in enumerate(cursors)
                )
                for rest in rec(advanced):
                    yield [(t, cursors[t])] + rest

    return rec(tuple(0 for _ in lengths))


def count_interleavings(program: TraceProgram) -> int:
    """Number of SC interleavings (multinomial coefficient)."""
    total = program.total_instructions
    result = 1
    used = 0
    for trace in program.threads:
        n = len(trace)
        for k in range(1, n + 1):
            used += 1
            result = result * used // k
    assert used == total
    return result


# ---------------------------------------------------------------------------
# Relaxed memory models
# ---------------------------------------------------------------------------


def _conflicts(a: Instr, b: Instr) -> bool:
    """Whether two same-thread instructions are ordered by an intra-thread
    dependence (shared location with at least one writer, in the coarse
    sense used by the paper's weak assumptions)."""
    a_writes = set(a.extent)
    b_writes = set(b.extent)
    a_all = set(a.locations)
    b_all = set(b.locations)
    return bool(a_writes & b_all) or bool(b_writes & a_all)


def relaxed_thread_orders(
    trace: Sequence[Instr], window: int = 2
) -> Iterator[List[int]]:
    """All per-thread instruction permutations a relaxed machine may commit.

    The paper assumes only that a memory model "respects its own
    intra-thread dependences" (Section 4.4).  We approximate hardware
    reordering by allowing an instruction to commit up to ``window``
    slots early, provided it never passes an instruction it conflicts
    with.  ``window=0`` degenerates to program order.
    """
    if window < 0:
        raise ValueError(f"reorder window must be >= 0, got {window}")

    n = len(trace)

    def rec(remaining: Tuple[int, ...]) -> Iterator[List[int]]:
        if not remaining:
            yield []
            return
        earliest = remaining[0]
        for pos, idx in enumerate(remaining):
            if idx - earliest > window:
                break
            # idx may commit now only if it doesn't conflict with any
            # not-yet-committed earlier instruction.
            if any(
                _conflicts(trace[idx], trace[j])
                for j in remaining[:pos]
            ):
                continue
            rest = remaining[:pos] + remaining[pos + 1 :]
            for tail in rec(rest):
                yield [idx] + tail

    return rec(tuple(range(n)))


def relaxed_interleavings(
    program: TraceProgram, window: int = 1
) -> Iterator[List[GlobalRef]]:
    """Every interleaving of every relaxed per-thread commit order.

    Exhaustive and exponential: strictly a test oracle for tiny traces.
    Yields global orders as ``(thread, original_index)`` refs, so the
    same ref vocabulary works for SC and relaxed oracles.
    """
    per_thread = [
        list(relaxed_thread_orders(trace.instrs, window=window))
        for trace in program.threads
    ]
    for combo in itertools.product(*per_thread):
        reordered = TraceProgram.from_lists(
            *[
                [program.threads[t][i] for i in order]
                for t, order in enumerate(combo)
            ]
        )
        for inter in all_interleavings(reordered):
            yield [(t, combo[t][k]) for t, k in inter]


def serialize(
    program: TraceProgram, order: Sequence[GlobalRef]
) -> List[Instr]:
    """Materialize an order as a flat instruction list."""
    return [program.instr_at(ref) for ref in order]


def is_valid_sc_order(
    program: TraceProgram, order: Sequence[GlobalRef]
) -> bool:
    """Check an order visits every instruction once, in program order
    within each thread."""
    cursors = [0] * program.num_threads
    for t, i in order:
        if not 0 <= t < program.num_threads:
            return False
        if i != cursors[t]:
            return False
        cursors[t] += 1
    return all(
        cursors[t] == len(program.threads[t]) for t in range(program.num_threads)
    )
