"""Dynamic trace substrate: per-thread event sequences and interleavings.

Lifeguards in the paper consume "a simple sequence of (user-level)
application events" per thread (Section 2).  This subpackage defines that
event vocabulary (:mod:`repro.trace.events`), the multi-threaded trace
container (:mod:`repro.trace.program`), serialization under various
consistency assumptions (:mod:`repro.trace.interleave`), and random trace
generation helpers used by the test-suite (:mod:`repro.trace.generator`).
"""

from repro.trace.events import Instr, Op
from repro.trace.program import ThreadTrace, TraceProgram

__all__ = ["Instr", "Op", "ThreadTrace", "TraceProgram"]
