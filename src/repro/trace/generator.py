"""Random trace generation used by tests and property-based checks.

Two flavours:

- *Raw* generators emit arbitrary event soup; useful for exercising the
  dataflow machinery where no well-formedness is required.
- *Simulated-execution* generators model an actual run: a scheduler picks
  a thread each step and the thread emits an event that is legal in the
  current global state (e.g. only freeing allocated memory).  These
  record the interleaving in ``TraceProgram.true_order``, giving tests a
  ground truth against which butterfly analysis can only ever produce
  false positives -- exactly the paper's setting.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence

from repro.core.columnar import (
    HAVE_NUMPY,
    NO_DST,
    OP_ASSIGN,
    OP_FREE,
    OP_JUMP,
    OP_MALLOC,
    OP_READ,
    OP_TAINT,
    OP_UNTAINT,
    OP_WRITE,
    ColumnarBlock,
    ColumnBuilder,
    np,
)
from repro.core.epoch import Block
from repro.core.stream import EpochSource
from repro.trace.events import Instr, Op
from repro.trace.program import GlobalRef, ThreadTrace, TraceProgram


def random_program(
    rng: random.Random,
    num_threads: int = 2,
    length: int = 4,
    num_locations: int = 4,
    ops: Sequence[Op] = (Op.WRITE, Op.READ, Op.ASSIGN, Op.NOP),
) -> TraceProgram:
    """Unconstrained random events; no ground-truth order recorded."""
    threads = []
    for _ in range(num_threads):
        instrs: List[Instr] = []
        for _ in range(length):
            op = rng.choice(list(ops))
            if op is Op.WRITE:
                instrs.append(Instr.write(rng.randrange(num_locations)))
            elif op is Op.READ:
                instrs.append(Instr.read(rng.randrange(num_locations)))
            elif op is Op.ASSIGN:
                dst = rng.randrange(num_locations)
                nsrc = rng.randint(1, 2)
                srcs = [rng.randrange(num_locations) for _ in range(nsrc)]
                instrs.append(Instr.assign(dst, *srcs))
            elif op is Op.MALLOC:
                instrs.append(Instr.malloc(rng.randrange(num_locations)))
            elif op is Op.FREE:
                instrs.append(Instr.free(rng.randrange(num_locations)))
            elif op is Op.TAINT:
                instrs.append(Instr.taint(rng.randrange(num_locations)))
            elif op is Op.UNTAINT:
                instrs.append(Instr.untaint(rng.randrange(num_locations)))
            elif op is Op.JUMP:
                instrs.append(Instr.jump(rng.randrange(num_locations)))
            else:
                instrs.append(Instr.nop())
        threads.append(ThreadTrace(instrs))
    return TraceProgram(threads)


def adversarial_instrs(
    rng: random.Random,
    length: int,
    num_locations: int = 4,
    ops: Sequence[Op] = (Op.WRITE, Op.READ, Op.MALLOC, Op.FREE, Op.NOP),
    hot_locations: Optional[Sequence[int]] = None,
    straddle_stride: int = 0,
    max_extent: int = 1,
) -> List[Instr]:
    """One thread's worth of deliberately hostile events.

    The knobs bias toward the cases that historically break analyses:

    - ``hot_locations`` concentrates every address choice on a tiny set,
      maximizing cross-thread conflicts (wing-heavy butterflies);
    - ``straddle_stride`` > 0 aligns sized MALLOC/FREE/range bases just
      *under* multiples of the stride so their extents straddle it
      (shadow-page and bitset-word boundaries);
    - ``max_extent`` > 1 enables sized allocation events at all.

    Unlike the simulated-execution generators this draws arbitrary
    event soup: illegal frees, double mallocs and reads of unallocated
    memory are all fair game, which is exactly what a differential
    harness wants (both sides of every pair must agree on the errors).
    """
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")

    def pick_loc() -> int:
        if hot_locations:
            return rng.choice(list(hot_locations))
        return rng.randrange(num_locations)

    def pick_base_size() -> "tuple[int, int]":
        size = rng.randint(1, max_extent)
        if straddle_stride > 0 and size > 1 and rng.random() < 0.75:
            # Start size-1..1 slots before a stride multiple so the
            # extent crosses it.
            k = rng.randrange(1, max(2, num_locations // straddle_stride + 1))
            base = max(0, k * straddle_stride - rng.randint(1, size - 1))
            return base, size
        return pick_loc(), size

    instrs: List[Instr] = []
    for _ in range(length):
        op = rng.choice(list(ops))
        if op is Op.WRITE:
            instrs.append(Instr.write(pick_loc()))
        elif op is Op.READ:
            instrs.append(Instr.read(pick_loc()))
        elif op is Op.MALLOC:
            base, size = pick_base_size()
            instrs.append(Instr.malloc(base, size))
        elif op is Op.FREE:
            base, size = pick_base_size()
            instrs.append(Instr.free(base, size))
        elif op is Op.ASSIGN:
            dst = pick_loc()
            srcs = [pick_loc() for _ in range(rng.randint(1, 2))]
            instrs.append(Instr.assign(dst, *srcs))
        elif op is Op.TAINT:
            instrs.append(Instr.taint(pick_loc()))
        elif op is Op.UNTAINT:
            instrs.append(Instr.untaint(pick_loc()))
        elif op is Op.JUMP:
            instrs.append(Instr.jump(pick_loc()))
        else:
            instrs.append(Instr.nop())
    return instrs


def simulated_alloc_program(
    rng: random.Random,
    num_threads: int = 2,
    total_events: int = 32,
    num_locations: int = 8,
    access_bias: float = 0.6,
    inject_error_rate: float = 0.0,
) -> TraceProgram:
    """Simulate a correct (or deliberately buggy) allocating execution.

    A global scheduler interleaves threads one event at a time.  Each
    event respects the *current* global allocation state: threads only
    access or free allocated locations and only allocate free ones, so
    the recorded execution contains no true AddrCheck errors -- unless
    ``inject_error_rate`` > 0, in which case illegal events (access to
    unallocated memory, double free, double malloc) are mixed in and any
    lifeguard must flag them.
    """
    allocated: set = set()
    traces: List[List[Instr]] = [[] for _ in range(num_threads)]
    order: List[GlobalRef] = []

    for _ in range(total_events):
        t = rng.randrange(num_threads)
        bad = rng.random() < inject_error_rate
        instr = _next_alloc_event(rng, allocated, num_locations, access_bias, bad)
        order.append((t, len(traces[t])))
        traces[t].append(instr)
        # Track state transitions regardless of legality (a double free
        # still leaves the location free, etc.).
        if instr.op is Op.MALLOC:
            allocated.update(instr.extent)
        elif instr.op is Op.FREE:
            allocated.difference_update(instr.extent)

    program = TraceProgram([ThreadTrace(tr) for tr in traces], true_order=order)
    program.validate()
    return program


def alloc_handoff_program(
    rng: random.Random,
    num_threads: int = 4,
    events_per_thread: int = 256,
    num_locations: int = 64,
    handoff_period: int = 12,
    recency_window: int = 4,
) -> TraceProgram:
    """An allocation-*handoff* execution: the epoch-size FP workload.

    One thread mallocs a location; the other threads immediately start
    using it.  In the recorded order every access is strictly after its
    malloc (zero true AddrCheck errors), but under butterfly analysis
    the malloc stays *concurrent* with roughly one epoch's worth of the
    accesses that follow it -- those accesses see the location outside
    the LSOS and are flagged.  The number of accesses inside that
    uncertainty window scales with the epoch size, so this workload's
    false-positive rate grows with ``h`` (the paper's Figure 13 shape),
    which is what ``repro tune`` sweeps and what makes epoch-size
    tuning a real precision/latency tradeoff.  (Contrast
    :func:`simulated_alloc_program`, whose uniform churn produces FPs
    dominated by stale *frees* instead.)

    Every ``handoff_period`` global events the scheduled thread
    allocates a fresh location; accesses always target the
    ``recency_window`` most recent allocations (recency is what keeps
    accesses near their malloc); retired locations are freed only after
    falling out of use, so frees are strictly ordered too.
    """
    traces: List[List[Instr]] = [[] for _ in range(num_threads)]
    order: List[GlobalRef] = []
    live: List[int] = []  # allocation order, oldest first
    next_loc = 0
    total_events = num_threads * events_per_thread

    def schedule() -> int:
        open_threads = [
            t for t in range(num_threads)
            if len(traces[t]) < events_per_thread
        ]
        return rng.choice(open_threads)

    for step in range(total_events):
        t = schedule()
        instr: Instr
        if step % handoff_period == 0 and len(live) < num_locations:
            free_choices = [
                loc for loc in range(num_locations) if loc not in live
            ]
            loc = free_choices[next_loc % len(free_choices)]
            next_loc += 1
            live.append(loc)
            instr = Instr.malloc(loc)
        elif len(live) > 2 * recency_window and rng.random() < 0.1:
            # Retire the oldest allocation: long strictly-ordered by
            # now, so the free itself is never uncertain.
            instr = Instr.free(live.pop(0))
        elif live:
            recent = live[-recency_window:]
            loc = rng.choice(recent)
            instr = (
                Instr.read(loc) if rng.random() < 0.5 else Instr.write(loc)
            )
        else:
            instr = Instr.nop()
        order.append((t, len(traces[t])))
        traces[t].append(instr)

    program = TraceProgram(
        [ThreadTrace(tr) for tr in traces], true_order=order
    )
    program.validate()
    return program


def _next_alloc_event(
    rng: random.Random,
    allocated: set,
    num_locations: int,
    access_bias: float,
    bad: bool,
) -> Instr:
    free_locs = [x for x in range(num_locations) if x not in allocated]
    alloc_locs = sorted(allocated)
    if bad:
        # Deliberately illegal event (true error under every ordering).
        choices = []
        if free_locs:
            choices.append("access_free")
            choices.append("double_free")
        if alloc_locs:
            choices.append("double_malloc")
        if not choices:
            return Instr.nop()
        kind = rng.choice(choices)
        if kind == "access_free":
            loc = rng.choice(free_locs)
            return Instr.read(loc) if rng.random() < 0.5 else Instr.write(loc)
        if kind == "double_free":
            return Instr.free(rng.choice(free_locs))
        return Instr.malloc(rng.choice(alloc_locs))

    if alloc_locs and rng.random() < access_bias:
        loc = rng.choice(alloc_locs)
        return Instr.read(loc) if rng.random() < 0.5 else Instr.write(loc)
    if free_locs and (not alloc_locs or rng.random() < 0.5):
        return Instr.malloc(rng.choice(free_locs))
    if alloc_locs:
        return Instr.free(rng.choice(alloc_locs))
    return Instr.nop()


class ColumnarAllocSource(EpochSource):
    """Columnar-native allocation workload for large-trace benchmarks.

    Synthesizes an AddrCheck-style workload *directly as column
    arrays*: no :class:`Instr` is ever created on this path, which is
    what lets the bench measure the vector kernels against traces of
    tens of millions of events without generator overhead dominating.

    Shape: every thread's block holds ``events_per_block`` events --
    mostly READ/WRITE over a preallocated pool of ``num_locations``
    addresses (always legal), with a MALLOC/FREE pair of the thread's
    private scratch location every ``change_period`` events (legal, and
    isolation-silent because no other thread touches it).  With
    ``error_rate`` > 0 a fraction of accesses target a never-allocated
    location instead, each a guaranteed first-pass error.

    Block ``(l, t)`` is a pure function of ``(seed, l, t)``, so
    ``epochs(start)`` regenerates identical blocks on checkpoint
    resume.  The numpy and pure-Python backends draw from different
    RNGs (so their workloads differ event-for-event across
    environments), but within one environment every consumer -- both
    kernels, ``as_objects``, a stream dump -- sees the same trace.
    """

    def __init__(
        self,
        seed: int,
        num_threads: int = 4,
        num_epochs: int = 16,
        events_per_block: int = 4096,
        num_locations: int = 256,
        change_period: int = 128,
        error_rate: float = 0.0,
    ) -> None:
        if events_per_block < 1 or num_epochs < 0 or num_threads < 1:
            raise ValueError("bad workload shape")
        if change_period < 2:
            raise ValueError("change_period must be >= 2")
        self.seed = seed
        self._num_threads = num_threads
        self._num_epochs = num_epochs
        self.events_per_block = events_per_block
        self.num_locations = num_locations
        self.change_period = change_period
        self.error_rate = error_rate
        #: One never-touched-by-others scratch location per thread.
        self._scratch_base = num_locations
        #: Accesses with injected errors hit this never-allocated slot.
        self._bad_loc = num_locations + num_threads

    @property
    def num_threads(self) -> int:
        return self._num_threads

    @property
    def num_epochs(self) -> Optional[int]:
        return self._num_epochs

    @property
    def total_events(self) -> int:
        return self._num_threads * self._num_epochs * self.events_per_block

    @property
    def preallocated(self) -> frozenset:
        return frozenset(range(self.num_locations))

    def _block_columns(self, lid: int, tid: int) -> ColumnarBlock:
        h = self.events_per_block
        scratch = self._scratch_base + tid
        # Change slots: one every change_period events, alternating
        # MALLOC/FREE.  Parity continues across blocks so the scratch
        # location's allocation state stays consistent for any h.
        per_block = h // self.change_period
        start_parity = (lid * per_block) % 2
        if HAVE_NUMPY:
            rng = np.random.default_rng((self.seed, lid, tid))
            is_write = rng.integers(0, 2, size=h, dtype=np.int64)
            loc = rng.integers(0, self.num_locations, size=h, dtype=np.int64)
            if self.error_rate > 0.0:
                loc[rng.random(h) < self.error_rate] = self._bad_loc
            ops = np.where(is_write, OP_WRITE, OP_READ).astype(np.uint8)
            dst = np.where(is_write, loc, NO_DST)
            change_pos = np.arange(
                self.change_period - 1, h, self.change_period, dtype=np.int64
            )
            parities = (np.arange(change_pos.shape[0]) + start_parity) % 2
            ops[change_pos] = np.where(parities == 0, OP_MALLOC, OP_FREE)
            dst[change_pos] = scratch
            is_read = ops == OP_READ
            src_off = np.zeros(h + 1, dtype=np.int64)
            np.cumsum(is_read.astype(np.int64), out=src_off[1:])
            src_val = loc[is_read]
            size = np.ones(h, dtype=np.int64)
            return ColumnarBlock(h, ops, dst, size, src_off, src_val)
        rng_py = random.Random((self.seed + 1) * 1_000_003 + lid * 8191 + tid)
        builder = ColumnBuilder()
        parity = start_parity
        for i in range(h):
            if (i + 1) % self.change_period == 0:
                code = OP_MALLOC if parity == 0 else OP_FREE
                builder.emit(code, dst=scratch)
                parity ^= 1
                continue
            if self.error_rate > 0.0 and rng_py.random() < self.error_rate:
                x = self._bad_loc
            else:
                x = rng_py.randrange(self.num_locations)
            if rng_py.random() < 0.5:
                builder.emit(OP_WRITE, dst=x)
            else:
                builder.emit(OP_READ, srcs=(x,))
        return builder.freeze()

    def epochs(self, start: int = 0) -> Iterator[List[Block]]:
        h = self.events_per_block
        for lid in range(start, self._num_epochs):
            yield [
                Block(lid, tid, lid * h, columns=self._block_columns(lid, tid))
                for tid in range(self._num_threads)
            ]

    def as_objects(self) -> "_ObjectView":
        """The same workload with object-backed blocks (reference path).

        Materialization cost is charged to the consumer, exactly as the
        pre-columnar pipeline paid it at generation time.
        """
        return _ObjectView(self)


class _ObjectView(EpochSource):
    """Object-backed view of a columnar source (alloc or taint)."""

    def __init__(self, source: EpochSource) -> None:
        self._source = source

    @property
    def num_threads(self) -> int:
        return self._source.num_threads

    @property
    def num_epochs(self) -> Optional[int]:
        return self._source.num_epochs

    @property
    def preallocated(self) -> frozenset:
        return self._source.preallocated

    def epochs(self, start: int = 0) -> Iterator[List[Block]]:
        for row in self._source.epochs(start):
            yield [
                Block(b.lid, b.tid, b.start, b.columns.to_instrs())
                for b in row
            ]


class ColumnarTaintSource(EpochSource):
    """Columnar-native TaintCheck workload for large-trace benchmarks.

    The taint analog of :class:`ColumnarAllocSource`: blocks are
    synthesized directly as column arrays, READ-heavy (READs never move
    taint, so they are exactly the rows the vector kernels skip) with a
    sparse taint chain every ``taint_period`` events.  The chain cycles
    through the four taint-relevant shapes on two thread-private
    scratch locations ``s``/``p``:

    ``TAINT s`` -> ``ASSIGN p := s`` -> ``JUMP`` -> ``UNTAINT s``

    The JUMP step targets a plain data location (never tainted, so the
    trace is error-free) unless ``error_rate`` rolls an injected error,
    in which case it targets ``p`` -- tainted in program order by the
    preceding ASSIGN and untouched by every other thread, hence a true
    TAINTED_JUMP under *every* valid ordering.

    Block ``(l, t)`` is a pure function of ``(seed, l, t)``; the numpy
    and pure-Python backends draw from different RNGs but are each
    internally consistent across kernels, ``as_objects`` and resume
    (see :class:`ColumnarAllocSource`).
    """

    def __init__(
        self,
        seed: int,
        num_threads: int = 4,
        num_epochs: int = 16,
        events_per_block: int = 4096,
        num_locations: int = 256,
        taint_period: int = 128,
        error_rate: float = 0.0,
    ) -> None:
        if events_per_block < 1 or num_epochs < 0 or num_threads < 1:
            raise ValueError("bad workload shape")
        if taint_period < 2:
            raise ValueError("taint_period must be >= 2")
        self.seed = seed
        self._num_threads = num_threads
        self._num_epochs = num_epochs
        self.events_per_block = events_per_block
        self.num_locations = num_locations
        self.taint_period = taint_period
        self.error_rate = error_rate

    @property
    def num_threads(self) -> int:
        return self._num_threads

    @property
    def num_epochs(self) -> Optional[int]:
        return self._num_epochs

    @property
    def total_events(self) -> int:
        return self._num_threads * self._num_epochs * self.events_per_block

    @property
    def preallocated(self) -> frozenset:
        return frozenset()

    def _scratch(self, tid: int) -> tuple:
        base = self.num_locations + 2 * tid
        return base, base + 1

    def _block_columns(self, lid: int, tid: int) -> ColumnarBlock:
        h = self.events_per_block
        s, p = self._scratch(tid)
        # The 4-step chain continues across blocks so each JUMP-at-p
        # slot is preceded (in program order) by its TAINT/ASSIGN pair.
        per_block = h // self.taint_period
        start_step = (lid * per_block) % 4
        if HAVE_NUMPY:
            rng = np.random.default_rng((self.seed, lid, tid))
            loc = rng.integers(0, self.num_locations, size=h, dtype=np.int64)
            ops = np.full(h, OP_READ, dtype=np.uint8)
            dst = np.full(h, NO_DST, dtype=np.int64)
            srcv = loc.copy()
            counts = np.ones(h, dtype=np.int64)
            slots = np.arange(
                self.taint_period - 1, h, self.taint_period, dtype=np.int64
            )
            steps = (np.arange(slots.shape[0]) + start_step) % 4
            ops[slots] = np.array(
                [OP_TAINT, OP_ASSIGN, OP_JUMP, OP_UNTAINT], dtype=np.uint8
            )[steps]
            dst[slots] = np.array([s, p, NO_DST, s], dtype=np.int64)[steps]
            counts[slots[(steps == 0) | (steps == 3)]] = 0
            srcv[slots[steps == 1]] = s
            jump_slots = slots[steps == 2]
            if self.error_rate > 0.0 and jump_slots.shape[0]:
                bad = rng.random(jump_slots.shape[0]) < self.error_rate
                targets = loc[jump_slots].copy()
                targets[bad] = p
                srcv[jump_slots] = targets
            src_off = np.zeros(h + 1, dtype=np.int64)
            np.cumsum(counts, out=src_off[1:])
            src_val = srcv[counts == 1]
            size = np.ones(h, dtype=np.int64)
            return ColumnarBlock(h, ops, dst, size, src_off, src_val)
        rng_py = random.Random((self.seed + 1) * 1_000_003 + lid * 8191 + tid)
        builder = ColumnBuilder()
        step = start_step
        for i in range(h):
            if (i + 1) % self.taint_period == 0:
                if step == 0:
                    builder.emit(OP_TAINT, dst=s)
                elif step == 1:
                    builder.emit(OP_ASSIGN, dst=p, srcs=(s,))
                elif step == 2:
                    if (
                        self.error_rate > 0.0
                        and rng_py.random() < self.error_rate
                    ):
                        target = p
                    else:
                        target = rng_py.randrange(self.num_locations)
                    builder.emit(OP_JUMP, srcs=(target,))
                else:
                    builder.emit(OP_UNTAINT, dst=s)
                step = (step + 1) % 4
                continue
            builder.emit(
                OP_READ, srcs=(rng_py.randrange(self.num_locations),)
            )
        return builder.freeze()

    def epochs(self, start: int = 0) -> Iterator[List[Block]]:
        h = self.events_per_block
        for lid in range(start, self._num_epochs):
            yield [
                Block(lid, tid, lid * h, columns=self._block_columns(lid, tid))
                for tid in range(self._num_threads)
            ]

    def as_objects(self) -> "_ObjectView":
        """The same workload with object-backed blocks (reference path)."""
        return _ObjectView(self)


def simulated_taint_program(
    rng: random.Random,
    num_threads: int = 2,
    total_events: int = 32,
    num_locations: int = 8,
    taint_rate: float = 0.1,
    untaint_rate: float = 0.1,
    jump_rate: float = 0.1,
) -> TraceProgram:
    """Simulate an execution mixing taint sources, propagation and uses.

    The recorded interleaving is the ground truth for whether each JUMP
    consumed tainted data; sequential TaintCheck over ``true_order``
    computes the true error set.
    """
    traces: List[List[Instr]] = [[] for _ in range(num_threads)]
    order: List[GlobalRef] = []

    for _ in range(total_events):
        t = rng.randrange(num_threads)
        r = rng.random()
        if r < taint_rate:
            instr = Instr.taint(rng.randrange(num_locations))
        elif r < taint_rate + untaint_rate:
            instr = Instr.untaint(rng.randrange(num_locations))
        elif r < taint_rate + untaint_rate + jump_rate:
            instr = Instr.jump(rng.randrange(num_locations))
        else:
            dst = rng.randrange(num_locations)
            nsrc = rng.randint(1, 2)
            srcs = [rng.randrange(num_locations) for _ in range(nsrc)]
            instr = Instr.assign(dst, *srcs)
        order.append((t, len(traces[t])))
        traces[t].append(instr)

    program = TraceProgram([ThreadTrace(tr) for tr in traces], true_order=order)
    program.validate()
    return program
