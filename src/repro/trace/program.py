"""Multi-threaded dynamic traces.

A :class:`TraceProgram` is the unit of input to every analysis in this
package: one event sequence per application thread, plus (optionally) the
ground-truth global interleaving recorded by the workload generator.  The
ground truth is *never* visible to butterfly analysis -- the whole point
of the paper is operating without it -- but it lets the harness compute
true error sets and therefore false-positive rates (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import TraceError
from repro.trace.events import Instr


@dataclass
class ThreadTrace:
    """The dynamic event sequence of a single application thread."""

    instrs: List[Instr] = field(default_factory=list)

    def append(self, instr: Instr) -> None:
        self.instrs.append(instr)

    def extend(self, instrs: Iterable[Instr]) -> None:
        self.instrs.extend(instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __getitem__(self, idx: int) -> Instr:
        return self.instrs[idx]


#: A global-order entry: (thread id, index within that thread's trace).
GlobalRef = Tuple[int, int]


@dataclass
class TraceProgram:
    """A parallel program's dynamic trace: one :class:`ThreadTrace` per thread.

    Parameters
    ----------
    threads:
        Per-thread event sequences, indexed by thread id.
    true_order:
        Optional ground-truth serialization as ``(thread, index)`` pairs.
        Generators that *simulate* an execution record the interleaving
        they actually produced here; analyses must not read it.
    preallocated:
        Locations allocated before the monitored window began (program
        startup happens outside the paper's measurement interval); both
        sequential and butterfly AddrCheck seed their metadata with
        these.
    timesliced_order:
        Optional legal serialization of the *timesliced* execution
        (threads run in long OS-quantum slices between synchronization
        points) used by the Figure 11 baseline.  Generators with
        barrier-phase structure record one; it is an alternative valid
        execution of the same program, not the ground truth.
    """

    threads: List[ThreadTrace] = field(default_factory=list)
    true_order: Optional[List[GlobalRef]] = None
    preallocated: FrozenSet[int] = frozenset()
    timesliced_order: Optional[List[GlobalRef]] = None

    # -- construction ---------------------------------------------------

    @staticmethod
    def from_lists(*thread_instrs: Sequence[Instr]) -> "TraceProgram":
        """Build a program from per-thread instruction lists."""
        return TraceProgram([ThreadTrace(list(seq)) for seq in thread_instrs])

    def validate(self) -> None:
        """Raise :class:`TraceError` on structural problems."""
        if not self.threads:
            raise TraceError("a trace program needs at least one thread")
        for label, order in (
            ("true_order", self.true_order),
            ("timesliced_order", self.timesliced_order),
        ):
            if order is None:
                continue
            counts = [0] * self.num_threads
            for t, i in order:
                if not 0 <= t < self.num_threads:
                    raise TraceError(f"{label} references unknown thread {t}")
                if i != counts[t]:
                    raise TraceError(
                        f"{label} violates program order in thread {t}: "
                        f"expected index {counts[t]}, saw {i}"
                    )
                counts[t] += 1
            for t, n in enumerate(counts):
                if n != len(self.threads[t]):
                    raise TraceError(
                        f"{label} covers {n} of {len(self.threads[t])} "
                        f"instructions in thread {t}"
                    )

    # -- shape ------------------------------------------------------------

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    @property
    def total_instructions(self) -> int:
        return sum(len(t) for t in self.threads)

    @property
    def memory_op_count(self) -> int:
        """Number of memory-accessing events (Figure 13's denominator)."""
        return sum(
            1 for trace in self.threads for instr in trace if instr.is_memory_op
        )

    def instr_at(self, ref: GlobalRef) -> Instr:
        t, i = ref
        return self.threads[t][i]

    # -- serializations ----------------------------------------------------

    def recorded_order(self) -> List[GlobalRef]:
        """The ground-truth interleaving; raises if none was recorded."""
        if self.true_order is None:
            raise TraceError("this trace has no recorded ground-truth order")
        return self.true_order

    def iter_recorded(self) -> Iterator[Tuple[GlobalRef, Instr]]:
        """Iterate ``((thread, index), instr)`` in ground-truth order."""
        for ref in self.recorded_order():
            yield ref, self.instr_at(ref)
