"""Instruction-level application events observed by lifeguards.

The paper's monitoring model (Section 2) delivers one event per retired
application instruction.  Lifeguards only care about a handful of event
classes; everything else is an opaque ``NOP`` that still consumes log
bandwidth and lifeguard dispatch time.

Abstract memory locations are plain ``int`` values.  A ``MALLOC``/``FREE``
of ``size`` locations covers the half-open range ``[dst, dst + size)``,
mirroring the paper's per-byte allocation metadata at a coarser grain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple


class Op(enum.Enum):
    """Event kinds a lifeguard can observe.

    The vocabulary covers both canonical analyses (Section 5) and the two
    concrete lifeguards (Section 6):

    - ``READ``/``WRITE``: data memory accesses (AddrCheck checks these;
      WRITE creates a reaching definition of its destination).
    - ``MALLOC``/``FREE``: allocation events (AddrCheck GEN/KILL).
    - ``ASSIGN``: ``dst := op(srcs)`` -- a unary/binary computation
      (TaintCheck inheritance; reaching-expressions GEN).
    - ``TAINT``/``UNTAINT``: system-call effects marking locations as
      (un)trusted (TaintCheck GEN of bottom / top).
    - ``JUMP``: use of a location in a critical way, e.g. an indirect
      jump target (TaintCheck raises an error when the location may be
      tainted).
    - ``NOP``: any instruction irrelevant to the current analysis.
    """

    READ = "read"
    WRITE = "write"
    MALLOC = "malloc"
    FREE = "free"
    ASSIGN = "assign"
    TAINT = "taint"
    UNTAINT = "untaint"
    JUMP = "jump"
    NOP = "nop"


#: Ops that dereference memory and therefore appear in AddrCheck's
#: ACCESS summaries.  ASSIGN both reads its sources and writes its
#: destination; JUMP reads its single source.
_ACCESSING_OPS = frozenset(
    {Op.READ, Op.WRITE, Op.ASSIGN, Op.JUMP}
)


@dataclass(frozen=True)
class Instr:
    """One dynamic instruction (event) in a thread's trace.

    Parameters
    ----------
    op:
        The event kind.
    dst:
        Destination location (written/allocated/tainted), or ``None``
        for events with no destination (``READ``, ``JUMP``, ``NOP``).
    srcs:
        Source locations read by the instruction.  ``READ`` and ``JUMP``
        carry their address here; ``ASSIGN`` carries its one or two
        operands.
    size:
        Number of consecutive locations covered, only meaningful for
        ``MALLOC``/``FREE`` (the allocated/freed extent).
    """

    op: Op
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = field(default=())
    size: int = 1

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"size must be >= 1, got {self.size}")
        if self.op in (Op.MALLOC, Op.FREE, Op.WRITE, Op.TAINT, Op.UNTAINT, Op.ASSIGN):
            if self.dst is None:
                raise ValueError(f"{self.op.value} requires a destination")
        if self.op in (Op.READ, Op.JUMP) and len(self.srcs) != 1:
            raise ValueError(f"{self.op.value} requires exactly one source")
        if self.op is Op.ASSIGN and not 0 <= len(self.srcs) <= 2:
            raise ValueError("assign takes zero, one, or two sources")

    # -- convenience constructors ------------------------------------

    @staticmethod
    def read(addr: int) -> "Instr":
        """A load from ``addr``."""
        return Instr(Op.READ, srcs=(addr,))

    @staticmethod
    def write(addr: int) -> "Instr":
        """A store to ``addr``."""
        return Instr(Op.WRITE, dst=addr)

    @staticmethod
    def malloc(base: int, size: int = 1) -> "Instr":
        """Allocate ``[base, base + size)``."""
        return Instr(Op.MALLOC, dst=base, size=size)

    @staticmethod
    def free(base: int, size: int = 1) -> "Instr":
        """Deallocate ``[base, base + size)``."""
        return Instr(Op.FREE, dst=base, size=size)

    @staticmethod
    def assign(dst: int, *srcs: int) -> "Instr":
        """``dst := unop/binop(srcs)`` -- taint inheritance edge."""
        return Instr(Op.ASSIGN, dst=dst, srcs=tuple(srcs))

    @staticmethod
    def taint(addr: int) -> "Instr":
        """Mark ``addr`` tainted (untrusted input arrived)."""
        return Instr(Op.TAINT, dst=addr)

    @staticmethod
    def untaint(addr: int) -> "Instr":
        """Mark ``addr`` untainted (overwritten with trusted data)."""
        return Instr(Op.UNTAINT, dst=addr)

    @staticmethod
    def jump(addr: int) -> "Instr":
        """Use ``addr`` as an indirect jump target (critical use)."""
        return Instr(Op.JUMP, srcs=(addr,))

    @staticmethod
    def nop() -> "Instr":
        """An instruction irrelevant to any analysis."""
        return Instr(Op.NOP)

    # -- derived views -------------------------------------------------

    @property
    def locations(self) -> Tuple[int, ...]:
        """Every location this instruction touches (reads or writes)."""
        locs = list(self.srcs)
        if self.dst is not None:
            if self.op in (Op.MALLOC, Op.FREE):
                locs.extend(range(self.dst, self.dst + self.size))
            else:
                locs.append(self.dst)
        return tuple(locs)

    @property
    def extent(self) -> Tuple[int, ...]:
        """Locations covered by a MALLOC/FREE, else the dst singleton."""
        if self.dst is None:
            return ()
        if self.op in (Op.MALLOC, Op.FREE):
            return tuple(range(self.dst, self.dst + self.size))
        return (self.dst,)

    @property
    def accessed(self) -> Tuple[int, ...]:
        """Locations *dereferenced* by this instruction.

        AddrCheck verifies these are allocated.  MALLOC/FREE are
        allocation-state changes, not accesses, so they return ``()``.
        """
        if self.op not in _ACCESSING_OPS:
            return ()
        locs = list(self.srcs)
        if self.op in (Op.WRITE, Op.ASSIGN) and self.dst is not None:
            locs.append(self.dst)
        return tuple(locs)

    @property
    def is_memory_op(self) -> bool:
        """True when the event counts as a memory access for Figure 13's
        denominator (false positives per memory access)."""
        return bool(self.accessed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.value]
        if self.dst is not None:
            parts.append(f"dst={self.dst}")
        if self.srcs:
            parts.append(f"srcs={self.srcs}")
        if self.size != 1:
            parts.append(f"size={self.size}")
        return f"Instr({', '.join(parts)})"


def expand_locations(instrs: "Iterator[Instr]") -> Iterator[int]:
    """Yield every location touched across an instruction stream."""
    for instr in instrs:
        yield from instr.locations
