"""Plain-text rendering of tables and figure series."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render_bars(
    title: str,
    series: Dict[str, float],
    width: int = 50,
    unit: str = "x",
) -> str:
    """Horizontal ASCII bar chart (one figure group)."""
    if not series:
        return title
    peak = max(series.values()) or 1.0
    label_w = max(len(k) for k in series)
    lines = [title]
    for label, value in series.items():
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"  {label.ljust(label_w)} {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def render_grouped_bars(
    title: str,
    groups: Dict[str, Dict[str, float]],
    unit: str = "x",
) -> str:
    """One chart per group (e.g. per benchmark), Figure 11 style."""
    out = [title]
    for group, series in groups.items():
        out.append(render_bars(f"[{group}]", series, unit=unit))
    return "\n\n".join(out)


def format_rate(rate: float) -> str:
    """False-positive rates as percentages on the paper's log scale."""
    if rate == 0.0:
        return "0 (below measurement floor)"
    return f"{rate * 100:.4g}%"
