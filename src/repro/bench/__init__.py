"""Experiment harness regenerating the paper's Table 1 and Figures 11-13.

- :mod:`repro.bench.harness` -- runs one (benchmark, threads, epoch
  size) configuration through all system models, with caching so the
  three figures share runs;
- :mod:`repro.bench.experiments` -- assembles each table/figure's rows
  or series from harness runs;
- :mod:`repro.bench.reporting` -- plain-text rendering of tables and
  bar series, mirroring the paper's presentation.
"""

from repro.bench.harness import ExperimentConfig, ExperimentSuite, RunRecord
from repro.bench.experiments import (
    figure11,
    figure12,
    figure13,
    table1,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentSuite",
    "RunRecord",
    "figure11",
    "figure12",
    "figure13",
    "table1",
]
