"""One function per table/figure of the paper's evaluation (Section 7).

Each returns structured data (for assertions and benches) and can
render itself as text in the paper's presentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.harness import ExperimentConfig, ExperimentSuite
from repro.bench.reporting import (
    format_rate,
    render_grouped_bars,
    render_table,
)
from repro.sim.config import MachineConfig
from repro.workloads.registry import BENCHMARKS, benchmark_table_rows


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


@dataclass
class Table1:
    """Simulator and benchmark parameters."""

    simulation_rows: List[Tuple[str, str]]
    benchmark_rows: List[Tuple[str, str, str]]

    def render(self) -> str:
        sim = render_table(("Parameter", "Value"), self.simulation_rows)
        bench = render_table(
            ("Application", "Suite", "Input Data Set"), self.benchmark_rows
        )
        return (
            "Table 1: Simulator and Benchmark Parameters\n\n"
            + sim
            + "\n\n"
            + bench
        )


def table1(cores: int = 4) -> Table1:
    """Regenerate Table 1 (the core count column shows {4,8,16})."""
    config = MachineConfig(cores=cores)
    rows = config.table_rows()
    # The paper's table shows the whole sweep in one row.
    rows[0] = ("Cores", "{4,8,16} cores")
    l2_row = (
        "L2",
        "{2,4,8}MB, 8-way set-assoc, 4 banks, 6 cycle latency",
    )
    rows[5] = l2_row
    return Table1(simulation_rows=rows, benchmark_rows=benchmark_table_rows())


# ---------------------------------------------------------------------------
# Figure 11: relative performance
# ---------------------------------------------------------------------------


@dataclass
class Figure11:
    """Execution time normalized to sequential unmonitored execution.

    ``data[benchmark][threads]`` holds the three bars:
    (timesliced, butterfly, parallel-no-monitoring).
    """

    epoch_size: int
    data: Dict[str, Dict[int, Tuple[float, float, float]]]

    def render(self) -> str:
        groups: Dict[str, Dict[str, float]] = {}
        for bench, per_threads in self.data.items():
            series: Dict[str, float] = {}
            for threads, (ts, bf, par) in sorted(per_threads.items()):
                series[f"{threads}t timesliced"] = ts
                series[f"{threads}t butterfly "] = bf
                series[f"{threads}t no-monitor"] = par
            groups[bench] = series
        return render_grouped_bars(
            "Figure 11: relative performance "
            "(normalized to sequential unmonitored; lower is better)",
            groups,
        )

    def wins(self, threads: int) -> List[str]:
        """Benchmarks where butterfly beats timesliced at a thread count."""
        return [
            bench
            for bench, per in self.data.items()
            if per[threads][1] < per[threads][0]
        ]


def figure11(
    suite: ExperimentSuite, epoch_size: Optional[int] = None
) -> Figure11:
    h = epoch_size if epoch_size is not None else suite.config.epoch_large
    data: Dict[str, Dict[int, Tuple[float, float, float]]] = {}
    for bench in BENCHMARKS:
        data[bench] = {}
        for threads in suite.config.thread_counts:
            record = suite.run(bench, threads, h)
            data[bench][threads] = (
                record.timesliced_norm,
                record.butterfly_norm,
                record.parallel_norm,
            )
    return Figure11(epoch_size=h, data=data)


# ---------------------------------------------------------------------------
# Figure 12: performance sensitivity to epoch size
# ---------------------------------------------------------------------------


@dataclass
class Figure12:
    """Butterfly execution time (normalized) at both epoch sizes.

    ``data[benchmark][threads]`` = (time at small h, time at large h).
    """

    epoch_small: int
    epoch_large: int
    data: Dict[str, Dict[int, Tuple[float, float]]]

    def render(self) -> str:
        rows = []
        for bench, per in self.data.items():
            for threads, (small, large) in sorted(per.items()):
                rows.append(
                    (
                        bench,
                        threads,
                        f"{small:.2f}x",
                        f"{large:.2f}x",
                        "larger epoch faster"
                        if large < small
                        else "smaller epoch faster",
                    )
                )
        return (
            "Figure 12: performance sensitivity to epoch size "
            f"(h={self.epoch_small} vs h={self.epoch_large} events; "
            "paper: 8K vs 64K instructions)\n"
            + render_table(
                ("Benchmark", "Threads", "h=8K", "h=64K", "Direction"), rows
            )
        )


def figure12(suite: ExperimentSuite) -> Figure12:
    cfg = suite.config
    data: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for bench in BENCHMARKS:
        data[bench] = {}
        for threads in cfg.thread_counts:
            small = suite.run(bench, threads, cfg.epoch_small)
            large = suite.run(bench, threads, cfg.epoch_large)
            data[bench][threads] = (
                small.butterfly_norm,
                large.butterfly_norm,
            )
    return Figure12(
        epoch_small=cfg.epoch_small, epoch_large=cfg.epoch_large, data=data
    )


# ---------------------------------------------------------------------------
# Figure 13: false-positive sensitivity to epoch size
# ---------------------------------------------------------------------------


@dataclass
class Figure13:
    """False positives as a fraction of memory accesses, both epoch sizes.

    ``data[benchmark][threads]`` = (rate at small h, rate at large h).
    """

    epoch_small: int
    epoch_large: int
    data: Dict[str, Dict[int, Tuple[float, float]]]

    def render(self) -> str:
        rows = []
        for bench, per in self.data.items():
            for threads, (small, large) in sorted(per.items()):
                rows.append(
                    (bench, threads, format_rate(small), format_rate(large))
                )
        return (
            "Figure 13: false positives as % of memory accesses "
            f"(h={self.epoch_small} vs h={self.epoch_large} events)\n"
            + render_table(
                ("Benchmark", "Threads", "h=8K", "h=64K"), rows
            )
        )

    def worst_large_epoch(self) -> str:
        """The benchmark with the highest large-epoch rate (paper: OCEAN)."""
        return max(
            self.data,
            key=lambda b: max(r[1] for r in self.data[b].values()),
        )


def figure13(suite: ExperimentSuite) -> Figure13:
    cfg = suite.config
    data: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for bench in BENCHMARKS:
        data[bench] = {}
        for threads in cfg.thread_counts:
            small = suite.run(bench, threads, cfg.epoch_small)
            large = suite.run(bench, threads, cfg.epoch_large)
            data[bench][threads] = (
                small.precision.false_positive_rate,
                large.precision.false_positive_rate,
            )
    return Figure13(
        epoch_small=cfg.epoch_small, epoch_large=cfg.epoch_large, data=data
    )
