"""Isolated runner for the 10M-event columnar BENCH workloads.

Peak RSS (``ru_maxrss``) is process-monotonic: once any config touches
N MB, every later measurement in the same process reads >= N MB.  To
report an honest per-configuration peak, each config runs in a fresh
``python -m repro.bench.bigtrace`` subprocess that prints a one-line
JSON result; :func:`run_isolated` is the parent-side wrapper
``repro.bench.perf`` fans configs out with.

AddrCheck configurations (all over the same
:class:`ColumnarAllocSource` trace):

``object_reference``
    Object-backed blocks, ``optimized=False`` -- the original
    per-instruction implementation, the denominator of the >=10x claim.
``object_optimized``
    Object-backed blocks, optimized scanner with the per-``Instr``
    kernel forced -- the best pre-columnar configuration.
``columnar_serial``
    Columnar blocks, vectorized kernels, serial backend.
``columnar_processes``
    Columnar blocks, vectorized kernels, process-pool first pass --
    pool tasks carry packed column bytes, never ``Instr`` objects or
    interner state.

TaintCheck configurations (over the same :class:`ColumnarTaintSource`
trace):

``taint_object``
    Object-backed blocks with the per-``Instr`` scanner forced -- the
    pre-vectorization TaintCheck path, the denominator of the >=3x
    claim.
``taint_columnar_serial`` / ``taint_columnar_processes``
    Columnar blocks, the vectorized TaintCheck scanner, serial vs.
    process-pool first pass.
"""

from __future__ import annotations

import json
import resource
import subprocess
import sys
import time
from typing import Any, Dict

CONFIG_NAMES = (
    "object_reference",
    "object_optimized",
    "columnar_serial",
    "columnar_processes",
)

TAINT_CONFIG_NAMES = (
    "taint_object",
    "taint_columnar_serial",
    "taint_columnar_processes",
)


def run_config(params: Dict[str, Any]) -> Dict[str, Any]:
    """Run one configuration in-process and return its measurements."""
    from repro.core.framework import ButterflyEngine
    from repro.lifeguards.addrcheck import ButterflyAddrCheck
    from repro.lifeguards.taintcheck import ButterflyTaintCheck
    from repro.trace.generator import ColumnarAllocSource, ColumnarTaintSource

    config = params["config"]
    if config in TAINT_CONFIG_NAMES:
        source = ColumnarTaintSource(
            seed=params.get("seed", 7),
            num_threads=params.get("num_threads", 4),
            num_epochs=params.get("num_epochs", 25),
            events_per_block=params.get("events_per_block", 100_000),
            num_locations=params.get("num_locations", 1024),
            taint_period=params.get("taint_period", 512),
            error_rate=params.get("error_rate", 0.0),
        )
        guard_kw: Dict[str, Any] = {}
        backend = "serial"
        if config == "taint_object":
            view = source.as_objects()
            guard_kw["use_columnar_kernel"] = False
        else:
            view = source
            if config == "taint_columnar_processes":
                backend = "processes"
        guard = ButterflyTaintCheck(**guard_kw)
    elif config in CONFIG_NAMES:
        source = ColumnarAllocSource(
            seed=params.get("seed", 7),
            num_threads=params.get("num_threads", 4),
            num_epochs=params.get("num_epochs", 25),
            events_per_block=params.get("events_per_block", 100_000),
            num_locations=params.get("num_locations", 1024),
            change_period=params.get("change_period", 512),
            error_rate=params.get("error_rate", 0.0),
        )
        guard_kw = {"initially_allocated": source.preallocated}
        backend = "serial"
        if config == "object_reference":
            view = source.as_objects()
            guard_kw["optimized"] = False
        elif config == "object_optimized":
            view = source.as_objects()
            guard_kw["use_columnar_kernel"] = False
        else:
            view = source
            if config == "columnar_processes":
                backend = "processes"
        guard = ButterflyAddrCheck(**guard_kw)
    else:
        raise ValueError(f"unknown config {config!r}")
    t0 = time.perf_counter()
    with ButterflyEngine(guard, backend=backend) as engine:
        stats = engine.run_source(view)
    elapsed = time.perf_counter() - t0
    return {
        "config": config,
        "backend": backend,
        "elapsed_s": elapsed,
        "events": source.total_events,
        "events_per_s": source.total_events / elapsed if elapsed else 0.0,
        "errors": len(guard.errors),
        "engine_stats": {
            "epochs_processed": stats.epochs_processed,
            "first_pass_instructions": stats.first_pass_instructions,
            "second_pass_instructions": stats.second_pass_instructions,
            "meets": stats.meets,
            "wing_summaries_combined": stats.wing_summaries_combined,
        },
        # Linux reports ru_maxrss in KiB.
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def run_isolated(params: Dict[str, Any]) -> Dict[str, Any]:
    """Run one configuration in a fresh subprocess (honest peak RSS)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench.bigtrace", json.dumps(params)],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"bigtrace config {params.get('config')!r} failed "
            f"(rc={proc.returncode}): {proc.stderr.strip()[-500:]}"
        )
    return json.loads(proc.stdout)


def main(argv=None) -> int:
    args = sys.argv[1:] if argv is None else argv
    params = json.loads(args[0]) if args else json.load(sys.stdin)
    json.dump(run_config(params), sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
