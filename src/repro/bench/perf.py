"""Wall-clock performance baseline: emits ``BENCH_<n>.json``.

Unlike :mod:`repro.bench.harness` (which *models* LBA hardware cycles),
this module measures how fast the analysis itself runs on the host --
the number future optimization PRs must beat.  Every configuration is
measured in the same process invocation so speedups compare like with
like; the reference configuration runs :class:`ButterflyAddrCheck` with
``optimized=False``, i.e. the original per-instruction implementation.

Workloads:

- ``microbench_core`` -- the AddrCheck workload of
  ``benchmarks/test_microbench_core.py`` (4 threads, 8000 events,
  h=512), run as reference-serial vs. optimized on each backend;
- ``reaching_defs`` -- the generic reaching-definitions analysis over
  the same trace, serial vs. threads;
- ``shadow_store_range`` -- bulk range writes vs. the equivalent
  per-address store loop.

Read a ``BENCH_*.json`` as: ``runs.<name>.best_s`` is the best-of-N
wall time in seconds (N = ``repeats``), ``engine_stats`` the exact work
counters of that run (identical across backends by design), and
``speedup_vs_baseline`` the reference-serial best divided by the
optimized-serial best.
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys
import time
from typing import Any, Callable, Dict, Optional

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.core.reaching_defs import ReachingDefinitions
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.shadow.shadow_memory import ShadowMemory
from repro.trace.generator import simulated_alloc_program

#: The workload ``benchmarks/test_microbench_core.py`` benchmarks.
CORE_SEED = 7
CORE_THREADS = 4
CORE_EVENTS = 8000
CORE_LOCATIONS = 256
CORE_EPOCH = 512


def _time_best(fn: Callable[[], Any], repeats: int) -> Dict[str, float]:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return {
        "best_s": min(times),
        "mean_s": sum(times) / len(times),
        "repeats": repeats,
    }


def _engine_run(partition, make_guard, backend: str):
    def run() -> None:
        guard = make_guard()
        with ButterflyEngine(guard, backend=backend) as engine:
            engine.run(partition)
        run.last = (guard, engine.stats)  # type: ignore[attr-defined]

    return run


def _stats_dict(stats) -> Dict[str, int]:
    return {
        "epochs_processed": stats.epochs_processed,
        "first_pass_instructions": stats.first_pass_instructions,
        "second_pass_instructions": stats.second_pass_instructions,
        "meets": stats.meets,
        "wing_summaries_combined": stats.wing_summaries_combined,
    }


def _bench_microbench_core(repeats: int) -> Dict[str, Any]:
    program = simulated_alloc_program(
        random.Random(CORE_SEED),
        num_threads=CORE_THREADS,
        total_events=CORE_EVENTS,
        num_locations=CORE_LOCATIONS,
    )
    partition = partition_fixed(program, CORE_EPOCH)
    runs: Dict[str, Any] = {}
    configs = [
        ("reference_serial", False, "serial"),
        ("optimized_serial", True, "serial"),
        ("optimized_threads", True, "threads"),
        ("optimized_processes", True, "processes"),
    ]
    for name, optimized, backend in configs:
        fn = _engine_run(
            partition,
            lambda optimized=optimized: ButterflyAddrCheck(
                optimized=optimized
            ),
            backend,
        )
        entry = _time_best(fn, repeats)
        guard, stats = fn.last  # type: ignore[attr-defined]
        entry["engine_stats"] = _stats_dict(stats)
        entry["errors"] = len(guard.errors)
        runs[name] = entry
    baseline = runs["reference_serial"]["best_s"]
    return {
        "description": "butterfly AddrCheck on the microbench core trace",
        "params": {
            "threads": CORE_THREADS,
            "events": CORE_EVENTS,
            "locations": CORE_LOCATIONS,
            "epoch_size": CORE_EPOCH,
            "seed": CORE_SEED,
        },
        "runs": runs,
        "speedup_vs_baseline": baseline / runs["optimized_serial"]["best_s"],
        "speedups": {
            name: baseline / entry["best_s"]
            for name, entry in runs.items()
            if name != "reference_serial"
        },
    }


def _bench_reaching_defs(repeats: int) -> Dict[str, Any]:
    program = simulated_alloc_program(
        random.Random(CORE_SEED),
        num_threads=CORE_THREADS,
        total_events=CORE_EVENTS,
        num_locations=CORE_LOCATIONS,
    )
    partition = partition_fixed(program, CORE_EPOCH)
    runs: Dict[str, Any] = {}
    for name, backend in (("serial", "serial"), ("threads", "threads")):
        fn = _engine_run(
            partition,
            lambda: ReachingDefinitions(keep_history=False),
            backend,
        )
        entry = _time_best(fn, repeats)
        _guard, stats = fn.last  # type: ignore[attr-defined]
        entry["engine_stats"] = _stats_dict(stats)
        runs[name] = entry
    return {
        "description": "generic reaching definitions (bitset meets)",
        "params": {
            "threads": CORE_THREADS,
            "events": CORE_EVENTS,
            "epoch_size": CORE_EPOCH,
        },
        "runs": runs,
    }


def _bench_shadow_store_range(repeats: int) -> Dict[str, Any]:
    bursts = 256
    span = 1024
    page = 4096

    def bulk() -> None:
        shadow = ShadowMemory(page_size=page)
        for b in range(bursts):
            shadow.store_range(b * span, span, 1)

    def scalar() -> None:
        shadow = ShadowMemory(page_size=page)
        for b in range(bursts):
            base = b * span
            for addr in range(base, base + span):
                shadow.store(addr, 1)

    runs = {
        "store_range_bulk": _time_best(bulk, repeats),
        "store_scalar_loop": _time_best(scalar, repeats),
    }
    return {
        "description": "shadow memory range writes: bulk vs per-address",
        "params": {"bursts": bursts, "span": span, "page_size": page},
        "runs": runs,
        "speedup_vs_baseline": (
            runs["store_scalar_loop"]["best_s"]
            / runs["store_range_bulk"]["best_s"]
        ),
    }


def run_perf(
    repeats: int = 5, output_path: Optional[str] = None
) -> Dict[str, Any]:
    """Run every perf workload; optionally write the JSON report."""
    report: Dict[str, Any] = {
        "schema": 1,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "workloads": {
            "microbench_core": _bench_microbench_core(repeats),
            "reaching_defs": _bench_reaching_defs(repeats),
            "shadow_store_range": _bench_shadow_store_range(repeats),
        },
    }
    if output_path is not None:
        with open(output_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


def main(argv: Optional[list] = None) -> int:  # pragma: no cover - thin CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_1.json")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)
    report = run_perf(repeats=args.repeats, output_path=args.output)
    core = report["workloads"]["microbench_core"]
    print(
        f"wrote {args.output}: microbench core "
        f"{core['speedup_vs_baseline']:.2f}x vs reference serial"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
