"""Wall-clock performance baseline: emits ``BENCH_<n>.json``.

Unlike :mod:`repro.bench.harness` (which *models* LBA hardware cycles),
this module measures how fast the analysis itself runs on the host --
the number future optimization PRs must beat.  Every configuration is
measured in the same process invocation so speedups compare like with
like; the reference configuration runs :class:`ButterflyAddrCheck` with
``optimized=False``, i.e. the original per-instruction implementation.

Workloads:

- ``microbench_core`` -- the AddrCheck workload of
  ``benchmarks/test_microbench_core.py`` (4 threads, 8000 events,
  h=512), run as reference-serial vs. optimized on each backend;
- ``reaching_defs`` -- the generic reaching-definitions analysis over
  the same trace, serial vs. threads;
- ``shadow_store_range`` -- bulk range writes vs. the equivalent
  per-address store loop;
- ``observability_overhead`` -- the core workload with the recorder
  off (the default everywhere else) vs. a live in-memory recorder;
- ``resilience_overhead`` -- the core workload on the bare serial
  backend vs. the same backend wrapped in the fault-free resilience
  supervisor (``benchmarks/test_resilience_overhead.py`` holds this
  within its budget).  With ``inject_faults`` set, an additional
  ``faulted`` run times the supervised backend recovering from the
  given deterministic fault schedule.
- ``streaming_overhead`` -- the core workload fed through
  ``engine.run(partition)`` vs. the bounded-memory
  ``run_source(PartitionSource(...))`` pipeline
  (``benchmarks/test_streaming_overhead.py`` holds this within its
  budget).  With ``stream_file`` set, an additional ``stream_file``
  run times reading a version 2 stream back from disk -- reported for
  context (it includes JSON decode), not budgeted.

- ``columnar_10m`` -- a large :class:`ColumnarAllocSource` trace (10M
  events by default, tunable via ``--big-events``) run under the four
  ``repro.bench.bigtrace`` configurations, each in its own subprocess
  so peak RSS is honest per config.  Records the columnar-vs-object
  speedups the PR-6 acceptance criteria gate on.  Skipped (with a
  reason) when numpy is unavailable.

- ``taint_columnar_10m`` -- the TaintCheck analog: a READ-heavy
  :class:`ColumnarTaintSource` trace of the same size run under the
  ``taint_*`` bigtrace configurations (object scanner forced vs. the
  vectorized columnar scanner, serial and process-pool), again one
  subprocess per config.  Records the >=3x first-pass speedup the PR-7
  acceptance criteria gate on.  Skipped when numpy is unavailable.

- ``serve_throughput`` -- end-to-end daemon throughput: N concurrent
  producers each push the core trace to one ``repro serve`` daemon,
  once per shard backend (``thread`` vs ``process``), recording
  elapsed wall time, streams/sec, and epochs/sec per backend plus the
  process-vs-thread speedup.  ``cpu_count`` is recorded alongside
  because the ordering claim only means anything with >=2 cores --
  on a single core process shards just add pickling and context
  switches.  Sized via ``--serve-streams`` (0 skips the workload).

- ``adaptive_epoch`` -- the heartbeat's FP-rate/latency tradeoff and
  the online controller navigating it.  ``tune`` is the offline
  ``repro tune`` sweep over the allocation-handoff workload (fitted
  curve: FP rate vs log2(h), fold latency vs h).  ``serve`` replays a
  bursty producer against the same fold loop the daemon shards run,
  in virtual time (arrivals follow the burst clock, service times are
  real measured folds, ``checkpoint_every=1`` makes per-epoch
  overhead real): ``fixed_small`` pays one checkpoint per producer
  row and falls behind the offered load, ``fixed_large`` keeps up by
  always analyzing at the large heartbeat (higher FP rate), and
  ``adaptive`` folds only under queue pressure -- holding the latency
  SLO the small heartbeat violates, at a lower FP rate than the
  large one pays for the same SLO.

Read a ``BENCH_*.json`` as: ``runs.<name>.best_s`` is the best-of-N
wall time in seconds (N = ``repeats``), ``engine_stats`` the exact work
counters of that run (identical across backends by design), and
``speedup_vs_baseline`` the reference-serial best divided by the
optimized-serial best.  Since schema 2 the ``microbench_core`` entry
also carries ``per_epoch``: deterministic per-epoch rows (instructions,
meets, error attribution) from one instrumented replay.  Schema 3 adds
the ``resilience_overhead`` workload; schema 4 adds
``streaming_overhead``; schema 5 adds ``columnar_10m``; schema 6 adds
``taint_columnar_10m``; schema 7 adds ``serve_throughput``; schema 8
adds ``adaptive_epoch``.
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys
import time
from typing import Any, Callable, Dict, Optional

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.core.reaching_defs import ReachingDefinitions
from repro.core.stream import PartitionSource
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.obs import JsonlSink, Recorder
from repro.shadow.shadow_memory import ShadowMemory
from repro.trace.generator import simulated_alloc_program

#: The workload ``benchmarks/test_microbench_core.py`` benchmarks.
CORE_SEED = 7
CORE_THREADS = 4
CORE_EVENTS = 8000
CORE_LOCATIONS = 256
CORE_EPOCH = 512


def _time_best(fn: Callable[[], Any], repeats: int) -> Dict[str, float]:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return {
        "best_s": min(times),
        "mean_s": sum(times) / len(times),
        "repeats": repeats,
    }


def _engine_run(partition, make_guard, backend: str):
    def run() -> None:
        guard = make_guard()
        with ButterflyEngine(guard, backend=backend) as engine:
            engine.run(partition)
        run.last = (guard, engine.stats)  # type: ignore[attr-defined]

    return run


def _stats_dict(stats) -> Dict[str, int]:
    return {
        "epochs_processed": stats.epochs_processed,
        "first_pass_instructions": stats.first_pass_instructions,
        "second_pass_instructions": stats.second_pass_instructions,
        "meets": stats.meets,
        "wing_summaries_combined": stats.wing_summaries_combined,
    }


def _core_partition():
    program = simulated_alloc_program(
        random.Random(CORE_SEED),
        num_threads=CORE_THREADS,
        total_events=CORE_EVENTS,
        num_locations=CORE_LOCATIONS,
    )
    return partition_fixed(program, CORE_EPOCH)


def _bench_microbench_core(
    repeats: int, events_path: Optional[str] = None
) -> Dict[str, Any]:
    partition = _core_partition()
    runs: Dict[str, Any] = {}
    configs = [
        ("reference_serial", False, "serial"),
        ("optimized_serial", True, "serial"),
        ("optimized_threads", True, "threads"),
        ("optimized_processes", True, "processes"),
    ]
    for name, optimized, backend in configs:
        fn = _engine_run(
            partition,
            lambda optimized=optimized: ButterflyAddrCheck(
                optimized=optimized
            ),
            backend,
        )
        entry = _time_best(fn, repeats)
        guard, stats = fn.last  # type: ignore[attr-defined]
        entry["engine_stats"] = _stats_dict(stats)
        entry["errors"] = len(guard.errors)
        runs[name] = entry
    baseline = runs["reference_serial"]["best_s"]
    return {
        "description": "butterfly AddrCheck on the microbench core trace",
        "params": {
            "threads": CORE_THREADS,
            "events": CORE_EVENTS,
            "locations": CORE_LOCATIONS,
            "epoch_size": CORE_EPOCH,
            "seed": CORE_SEED,
        },
        "per_epoch": _core_per_epoch_metrics(partition, events_path),
        "runs": runs,
        "speedup_vs_baseline": baseline / runs["optimized_serial"]["best_s"],
        "speedups": {
            name: baseline / entry["best_s"]
            for name, entry in runs.items()
            if name != "reference_serial"
        },
    }


def _core_per_epoch_metrics(
    partition, events_path: Optional[str] = None
) -> list:
    """One untimed instrumented replay of the optimized-serial config.

    Yields the deterministic per-epoch rows (instructions, meets, error
    attribution) for the report; when ``events_path`` is given the full
    event log of the same run lands there as JSONL.
    """
    sink = JsonlSink.open(events_path) if events_path else None
    with Recorder(sink=sink) as rec:
        guard = ButterflyAddrCheck(optimized=True)
        with ButterflyEngine(guard, recorder=rec) as engine:
            engine.run(partition)
    return [
        {k: v for k, v in ev.items() if k not in ("seq", "ev")}
        for ev in rec.events
        if ev["ev"] == "epoch.summary"
    ]


def _bench_observability_overhead(repeats: int) -> Dict[str, Any]:
    """Same workload, recorder off vs. on -- the cost of watching.

    ``disabled`` is the default NULL-recorder path (what every other
    number in this report uses); ``enabled`` keeps a live in-memory
    recorder attached.  ``overhead_ratio`` > 1 is the slowdown.
    """
    partition = _core_partition()

    def disabled() -> None:
        guard = ButterflyAddrCheck(optimized=True)
        with ButterflyEngine(guard, backend="serial") as engine:
            engine.run(partition)

    def enabled() -> None:
        guard = ButterflyAddrCheck(optimized=True)
        with ButterflyEngine(
            guard, backend="serial", recorder=Recorder()
        ) as engine:
            engine.run(partition)

    runs = {
        "disabled": _time_best(disabled, repeats),
        "enabled": _time_best(enabled, repeats),
    }
    return {
        "description": "microbench core with the recorder off vs. on",
        "params": {"backend": "serial", "optimized": True},
        "runs": runs,
        "overhead_ratio": (
            runs["enabled"]["best_s"] / runs["disabled"]["best_s"]
        ),
    }


def _bench_resilience_overhead(
    repeats: int, inject_faults: Optional[str] = None
) -> Dict[str, Any]:
    """Bare serial backend vs. the fault-free supervisor around it.

    The supervisor's fault-free path is one ``isinstance`` check and a
    validity scan per batch; ``overhead_ratio`` is the measured price.
    With a fault spec, ``faulted`` additionally times recovery (retries,
    backoff, pool recycling) -- reported for context, not budgeted.
    """
    from repro.resilience import FaultPlan, RetryPolicy, SupervisedBackend

    partition = _core_partition()

    def bare() -> None:
        guard = ButterflyAddrCheck(optimized=True)
        with ButterflyEngine(guard, backend="serial") as engine:
            engine.run(partition)

    def supervised() -> None:
        guard = ButterflyAddrCheck(optimized=True)
        backend = SupervisedBackend("serial")
        try:
            with ButterflyEngine(guard, backend=backend) as engine:
                engine.run(partition)
        finally:
            backend.close()

    runs = {
        "bare_serial": _time_best(bare, repeats),
        "supervised_serial": _time_best(supervised, repeats),
    }
    params: Dict[str, Any] = {"backend": "serial", "optimized": True}
    if inject_faults:
        plan = FaultPlan.parse(inject_faults)
        params["inject_faults"] = inject_faults

        def faulted() -> None:
            guard = ButterflyAddrCheck(optimized=True)
            backend = SupervisedBackend(
                "serial", policy=RetryPolicy(), plan=plan
            )
            try:
                with ButterflyEngine(guard, backend=backend) as engine:
                    engine.run(partition)
            finally:
                backend.close()

        runs["faulted_serial"] = _time_best(faulted, repeats)
    return {
        "description": "microbench core bare vs. supervised (fault-free)",
        "params": params,
        "runs": runs,
        "overhead_ratio": (
            runs["supervised_serial"]["best_s"]
            / runs["bare_serial"]["best_s"]
        ),
    }


def _bench_streaming_overhead(
    repeats: int, stream_file: bool = False
) -> Dict[str, Any]:
    """Materialized ``run(partition)`` vs. the streaming pipeline.

    ``streamed`` feeds the identical partition through
    ``run_source(PartitionSource(...))`` -- same trace in memory, but
    the engine runs the bounded-window attach/feed path the streaming
    pipeline uses; the ratio is the pipeline's pure bookkeeping cost.
    ``stream_file`` additionally round-trips the partition through a
    version 2 stream file on disk and times reading it back (JSON
    decode included), which is the honest large-trace number but not a
    like-for-like engine comparison.
    """
    import tempfile

    from repro.trace.serialize import iter_load, save_stream_file

    partition = _core_partition()

    def materialized() -> None:
        guard = ButterflyAddrCheck(optimized=True)
        with ButterflyEngine(guard, backend="serial") as engine:
            engine.run(partition)

    last: Dict[str, Any] = {}

    def streamed() -> None:
        guard = ButterflyAddrCheck(optimized=True)
        with ButterflyEngine(guard, backend="serial") as engine:
            engine.run_source(PartitionSource(partition))
        last["high_water"] = engine.window_high_water

    runs = {
        "materialized": _time_best(materialized, repeats),
        "streamed": _time_best(streamed, repeats),
    }
    if stream_file:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            path = os.path.join(tmp, "core.stream.jsonl")
            save_stream_file(_core_partition(), path)

            def from_file() -> None:
                guard = ButterflyAddrCheck(optimized=True)
                with ButterflyEngine(guard, backend="serial") as engine:
                    engine.run_source(iter_load(path))

            runs["stream_file"] = _time_best(from_file, repeats)
    return {
        "description": "microbench core materialized vs. streamed",
        "params": {"backend": "serial", "optimized": True},
        "runs": runs,
        "overhead_ratio": (
            runs["streamed"]["best_s"] / runs["materialized"]["best_s"]
        ),
        "window_high_water": last["high_water"],
        "window_bound": 3 * CORE_THREADS,
    }


def _bench_columnar_10m(big_events: int) -> Dict[str, Any]:
    """Columnar vs. object kernels on a large trace, per-config RSS.

    Each configuration runs exactly once in a fresh subprocess (see
    :mod:`repro.bench.bigtrace`); at tens of seconds per run, best-of-N
    timing buys nothing and would multiply a minutes-long workload.
    """
    from repro.core.columnar import HAVE_NUMPY
    from repro.bench.bigtrace import CONFIG_NAMES, run_isolated

    num_threads = 4
    num_epochs = 25
    events_per_block = max(1, big_events // (num_threads * num_epochs))
    params = {
        "seed": 7,
        "num_threads": num_threads,
        "num_epochs": num_epochs,
        "events_per_block": events_per_block,
        "num_locations": 1024,
        "change_period": 512,
        "error_rate": 0.0,
    }
    result: Dict[str, Any] = {
        "description": (
            "columnar vs object kernels on a large generated trace "
            "(one subprocess per config; peak RSS is per-config)"
        ),
        "params": dict(params, total_events=(
            num_threads * num_epochs * events_per_block
        )),
    }
    if not HAVE_NUMPY:
        result["skipped"] = (
            "numpy unavailable; the columnar configs would fall back to "
            "the scalar kernels and measure nothing"
        )
        return result
    runs: Dict[str, Any] = {}
    for config in CONFIG_NAMES:
        runs[config] = run_isolated(dict(params, config=config))
    result["runs"] = runs
    reference = runs["object_reference"]["elapsed_s"]
    optimized = runs["object_optimized"]["elapsed_s"]
    columnar = runs["columnar_serial"]["elapsed_s"]
    processes = runs["columnar_processes"]["elapsed_s"]
    result["speedups"] = {
        "columnar_serial_vs_reference": reference / columnar,
        "columnar_serial_vs_object_optimized": optimized / columnar,
        "columnar_processes_vs_reference": reference / processes,
        "columnar_processes_vs_object_optimized": optimized / processes,
    }
    return result


def _bench_taint_columnar_10m(big_events: int) -> Dict[str, Any]:
    """TaintCheck columnar vs. object scanners on a large READ-heavy
    trace, per-config subprocess RSS (see :mod:`repro.bench.bigtrace`)."""
    from repro.core.columnar import HAVE_NUMPY
    from repro.bench.bigtrace import TAINT_CONFIG_NAMES, run_isolated

    num_threads = 4
    num_epochs = 25
    events_per_block = max(1, big_events // (num_threads * num_epochs))
    params = {
        "seed": 7,
        "num_threads": num_threads,
        "num_epochs": num_epochs,
        "events_per_block": events_per_block,
        "num_locations": 1024,
        "taint_period": 512,
        "error_rate": 0.0,
    }
    result: Dict[str, Any] = {
        "description": (
            "vectorized vs object TaintCheck scanners on a READ-heavy "
            "generated trace (one subprocess per config; peak RSS is "
            "per-config)"
        ),
        "params": dict(params, total_events=(
            num_threads * num_epochs * events_per_block
        )),
    }
    if not HAVE_NUMPY:
        result["skipped"] = (
            "numpy unavailable; the columnar configs would fall back to "
            "the scalar kernels and measure nothing"
        )
        return result
    runs: Dict[str, Any] = {}
    for config in TAINT_CONFIG_NAMES:
        runs[config] = run_isolated(dict(params, config=config))
    result["runs"] = runs
    reference = runs["taint_object"]["elapsed_s"]
    serial = runs["taint_columnar_serial"]["elapsed_s"]
    processes = runs["taint_columnar_processes"]["elapsed_s"]
    result["speedups"] = {
        "taint_columnar_serial_vs_object": reference / serial,
        "taint_columnar_processes_vs_object": reference / processes,
    }
    result["rss_ratio_columnar_vs_object"] = (
        runs["taint_columnar_serial"]["peak_rss_kb"]
        / runs["taint_object"]["peak_rss_kb"]
    )
    return result


def _bench_reaching_defs(repeats: int) -> Dict[str, Any]:
    partition = _core_partition()
    runs: Dict[str, Any] = {}
    for name, backend in (("serial", "serial"), ("threads", "threads")):
        fn = _engine_run(
            partition,
            lambda: ReachingDefinitions(keep_history=False),
            backend,
        )
        entry = _time_best(fn, repeats)
        _guard, stats = fn.last  # type: ignore[attr-defined]
        entry["engine_stats"] = _stats_dict(stats)
        runs[name] = entry
    return {
        "description": "generic reaching definitions (bitset meets)",
        "params": {
            "threads": CORE_THREADS,
            "events": CORE_EVENTS,
            "epoch_size": CORE_EPOCH,
        },
        "runs": runs,
    }


def _bench_shadow_store_range(repeats: int) -> Dict[str, Any]:
    bursts = 256
    span = 1024
    page = 4096

    def bulk() -> None:
        shadow = ShadowMemory(page_size=page)
        for b in range(bursts):
            shadow.store_range(b * span, span, 1)

    def scalar() -> None:
        shadow = ShadowMemory(page_size=page)
        for b in range(bursts):
            base = b * span
            for addr in range(base, base + span):
                shadow.store(addr, 1)

    runs = {
        "store_range_bulk": _time_best(bulk, repeats),
        "store_scalar_loop": _time_best(scalar, repeats),
    }
    return {
        "description": "shadow memory range writes: bulk vs per-address",
        "params": {"bursts": bursts, "span": span, "page_size": page},
        "runs": runs,
        "speedup_vs_baseline": (
            runs["store_scalar_loop"]["best_s"]
            / runs["store_range_bulk"]["best_s"]
        ),
    }


#: Default producer count for the ``serve_throughput`` workload.
SERVE_STREAMS = 4
#: Shard count the throughput daemons run with.
SERVE_WORKERS = 2


def _bench_serve_throughput(
    streams: int = SERVE_STREAMS,
    events_per_stream: int = CORE_EVENTS,
) -> Dict[str, Any]:
    """Time ``streams`` concurrent producers against one daemon per
    shard backend.  Each backend gets a warm-up push first so process
    shards pay their worker-spawn cost outside the timed window --
    the steady state is what the ratio compares."""
    import tempfile
    import threading

    from repro.serve import ServeConfig, ServerThread, push_trace
    from repro.serve.shards import SHARD_BACKEND_CHOICES
    from repro.trace.serialize import save_stream_file, stream_header

    program = simulated_alloc_program(
        random.Random(CORE_SEED),
        num_threads=CORE_THREADS,
        total_events=events_per_stream,
        num_locations=CORE_LOCATIONS,
    )
    partition = partition_fixed(program, CORE_EPOCH)
    runs: Dict[str, Any] = {}
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        trace = os.path.join(tmp, "core.stream.jsonl")
        save_stream_file(partition, trace)
        with open(trace) as fp:
            epochs = stream_header(fp, trace)["epochs"]
        for backend in SHARD_BACKEND_CHOICES:
            config = ServeConfig(
                unix_path=os.path.join(tmp, f"{backend}.sock"),
                workers=SERVE_WORKERS,
                shard_backend=backend,
            )
            with ServerThread(config) as daemon:
                push_trace(
                    daemon.address, trace, f"warmup-{backend}"
                )
                failures: list = []

                def push(sid: str) -> None:
                    try:
                        push_trace(daemon.address, trace, sid)
                    except Exception as exc:  # pragma: no cover
                        failures.append(f"{sid}: {exc}")

                producers = [
                    threading.Thread(
                        target=push, args=(f"{backend}-{i}",)
                    )
                    for i in range(streams)
                ]
                t0 = time.perf_counter()
                for producer in producers:
                    producer.start()
                for producer in producers:
                    producer.join()
                elapsed = time.perf_counter() - t0
                if failures:  # pragma: no cover - assertion aid
                    raise RuntimeError(
                        "serve throughput streams failed: "
                        + "; ".join(failures)
                    )
            runs[backend] = {
                "elapsed_s": elapsed,
                "streams_per_s": streams / elapsed,
                "epochs_per_s": streams * epochs / elapsed,
            }
    return {
        "description": (
            "concurrent producers vs one daemon: "
            "thread shards vs process shards"
        ),
        "params": {
            "streams": streams,
            "events_per_stream": events_per_stream,
            "epochs_per_stream": epochs,
            "threads": CORE_THREADS,
            "epoch_size": CORE_EPOCH,
            "workers": SERVE_WORKERS,
            "cpu_count": os.cpu_count(),
        },
        "runs": runs,
        "speedup_process_vs_thread": (
            runs["thread"]["elapsed_s"] / runs["process"]["elapsed_s"]
        ),
    }


#: Parameters of the ``adaptive_epoch`` workload.
ADAPTIVE_THREADS = 4
ADAPTIVE_EVENTS = 1024        # events per thread
ADAPTIVE_H_SMALL = 4          # the producer's heartbeat
ADAPTIVE_BURST = 16           # producer rows arriving per burst
#: Controller ceiling: effective heartbeat 16, which sits in the FP
#: curve's rising regime -- fixed_large (effective heartbeat 64) is in
#: its saturated tail, so the cap is what buys the lower FP rate.
ADAPTIVE_MAX_FOLD = 4
ADAPTIVE_TUNE_SIZES = (2, 4, 8, 16, 32)


def _percentile(values: list, q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def _bench_adaptive_epoch(
    events: int = ADAPTIVE_EVENTS,
) -> Dict[str, Any]:
    """Tune curve plus a bursty serve-loop A/B for the adaptive epoch.

    The ``serve`` section is a trace-driven queueing replay of the
    fold loop the daemon shards run: producer rows arrive on a
    *virtual* burst clock (so the result is a property of the
    schedule, not of sleeps), each fold's service time is the real
    measured wall time of feeding it through a checkpointing engine,
    and a row's latency is its fold-completion time minus its arrival
    time.  The burst interval is calibrated to ~1.7x the small
    heartbeat's measured capacity, which is exactly the regime the
    controller exists for.  Runs once -- it is a queueing simulation
    with hundreds of internally-timed folds, not a microbenchmark.
    """
    import tempfile

    from repro.core.stream import ShapeSource
    from repro.core.tune import (
        AdaptiveEngine,
        EpochController,
        SloConfig,
        tune_workload,
    )
    from repro.lifeguards.reports import compare_reports
    from repro.lifeguards.sequential import SequentialAddrCheck
    from repro.resilience import Checkpointer
    from repro.trace.generator import alloc_handoff_program

    program = alloc_handoff_program(
        random.Random(CORE_SEED),
        num_threads=ADAPTIVE_THREADS,
        events_per_thread=events,
    )
    curve = tune_workload(program, list(ADAPTIVE_TUNE_SIZES))
    truth = SequentialAddrCheck(program.preallocated)
    truth.run_order(program)

    h_large = ADAPTIVE_H_SMALL * ADAPTIVE_BURST
    small = partition_fixed(program, ADAPTIVE_H_SMALL)
    large = partition_fixed(program, h_large)
    rows_small = [
        small.epoch_blocks(lid) for lid in range(small.num_epochs)
    ]
    rows_large = [
        large.epoch_blocks(lid) for lid in range(large.num_epochs)
    ]

    with tempfile.TemporaryDirectory(prefix="repro-adaptive-") as tmp:

        def build(name: str, num_rows: int, slo_ms: Optional[float]):
            guard = ButterflyAddrCheck(
                initially_allocated=program.preallocated
            )
            engine: Any = ButterflyEngine(guard, backend="serial")
            engine.attach_source(ShapeSource(
                ADAPTIVE_THREADS,
                num_epochs=None if slo_ms is not None else num_rows,
                preallocated=program.preallocated,
            ))
            if slo_ms is not None:
                # error_bias off: the handoff workload flags on almost
                # every epoch by construction, and the bias rule would
                # pin the controller at min_fold -- this A/B isolates
                # the queue-pressure/latency loop the SLO claim is
                # about.
                controller = EpochController(SloConfig(
                    target_fold_ms=slo_ms,
                    max_fold=ADAPTIVE_MAX_FOLD,
                    error_bias=False,
                ))
                engine = AdaptiveEngine(
                    engine, controller, ADAPTIVE_THREADS
                )
            engine.enable_checkpoints(Checkpointer(
                os.path.join(tmp, f"{name}.ckpt"),
                {"bench": "adaptive_epoch", "config": name},
            ))
            return engine, guard

        def row_progress(engine: Any) -> int:
            folded = getattr(engine, "rows_folded", None)
            return engine._next_to_receive if folded is None else folded

        # Calibrate: the small heartbeat's back-to-back service rate,
        # checkpoint included, sets the offered load and the SLO.
        engine, _guard = build("calibrate", len(rows_small), None)
        t0 = time.perf_counter()
        for lid, row in enumerate(rows_small):
            engine.feed_blocks(lid, row)
        engine.finish()
        row_ms = (time.perf_counter() - t0) * 1e3 / len(rows_small)
        engine.close()
        burst_interval_ms = 0.6 * ADAPTIVE_BURST * row_ms
        slo_target_ms = 2.0 * burst_interval_ms

        def arrival_times(num_rows: int, per_burst: int) -> list:
            # Alternate phases: even groups land as one instantaneous
            # burst, odd groups are paced across their interval.  The
            # offered load is ~1.7x the small heartbeat's capacity in
            # BOTH phases (so fixed_small falls behind everywhere),
            # but only the bursts need a large fold -- the paced
            # stretches are where the controller earns its lower
            # average heartbeat, and with it a lower FP rate than
            # fixed_large.
            out = []
            for i in range(num_rows):
                group, offset = divmod(i, per_burst)
                base = group * burst_interval_ms
                if group % 2 == 0:
                    out.append(base)
                else:
                    out.append(
                        base
                        + offset * (burst_interval_ms / per_burst)
                    )
            return out

        def simulate(name: str, rows: list, per_burst: int,
                     adaptive: bool) -> Dict[str, Any]:
            arrivals = arrival_times(len(rows), per_burst)
            engine, guard = build(
                name, len(rows), slo_target_ms if adaptive else None
            )
            completions = [0.0] * len(rows)
            fold_ms: list = []
            max_rows_per_fold = 0
            now = 0.0
            fed = done = arrived = 0
            finished = False
            try:
                while done < len(rows):
                    if fed < len(rows):
                        now = max(now, arrivals[fed])
                        while (arrived < len(rows)
                               and arrivals[arrived] <= now):
                            arrived += 1
                        if adaptive:
                            engine.note_queue_depth(arrived - fed)
                        t0 = time.perf_counter()
                        engine.feed_blocks(fed, rows[fed])
                        fed += 1
                    else:
                        t0 = time.perf_counter()
                        engine.finish()
                        finished = True
                    dt = (time.perf_counter() - t0) * 1e3
                    now += dt
                    progress = row_progress(engine)
                    if progress > done:
                        fold_ms.append(dt)
                        max_rows_per_fold = max(
                            max_rows_per_fold, progress - done
                        )
                        for i in range(done, progress):
                            completions[i] = now
                        done = progress
                if not finished:
                    engine.finish()
                stats = engine.stats
                latency = [
                    completions[i] - arrivals[i]
                    for i in range(len(rows))
                ]
                precision = compare_reports(
                    truth.errors, guard.errors,
                    program.memory_op_count,
                )
            finally:
                engine.close()
            p95 = _percentile(latency, 0.95)
            return {
                "rows": len(rows),
                "analysis_epochs": stats.epochs_processed,
                "elapsed_virtual_ms": now,
                "mean_fold_ms": sum(fold_ms) / len(fold_ms),
                "p95_fold_ms": _percentile(fold_ms, 0.95),
                "max_rows_per_fold": max_rows_per_fold,
                "p95_row_latency_ms": p95,
                "max_row_latency_ms": max(latency),
                "meets_slo": p95 <= slo_target_ms,
                "false_positives": precision.false_positives,
                "fp_rate": precision.false_positive_rate,
            }

        runs = {
            "fixed_small": simulate(
                "fixed_small", rows_small, ADAPTIVE_BURST, False
            ),
            "fixed_large": simulate(
                "fixed_large", rows_large, 1, False
            ),
            "adaptive": simulate(
                "adaptive", rows_small, ADAPTIVE_BURST, True
            ),
        }
    tune_record = {
        "workload": "handoff",
        "threads": ADAPTIVE_THREADS,
        "events_per_thread": events,
        "seed": CORE_SEED,
        "sizes": list(ADAPTIVE_TUNE_SIZES),
    }
    tune_record.update(curve.to_record())
    return {
        "description": (
            "heartbeat FP/latency tradeoff (offline tune sweep) and a "
            "bursty virtual-time serve-loop A/B: fixed small vs fixed "
            "large vs adaptive heartbeat"
        ),
        "tune": tune_record,
        "serve": {
            "params": {
                "threads": ADAPTIVE_THREADS,
                "events_per_thread": events,
                "seed": CORE_SEED,
                "h_small": ADAPTIVE_H_SMALL,
                "h_large": h_large,
                "burst_rows": ADAPTIVE_BURST,
                "max_fold": ADAPTIVE_MAX_FOLD,
                "burst_interval_ms": burst_interval_ms,
                "slo_target_ms": slo_target_ms,
                "calibrated_row_ms": row_ms,
                "checkpoint_every": 1,
            },
            "runs": runs,
        },
    }


def run_perf(
    repeats: int = 5,
    output_path: Optional[str] = None,
    events_path: Optional[str] = None,
    inject_faults: Optional[str] = None,
    stream_file: bool = False,
    big_events: int = 10_000_000,
    serve_streams: int = SERVE_STREAMS,
    adaptive_events: int = ADAPTIVE_EVENTS,
) -> Dict[str, Any]:
    """Run every perf workload; optionally write the JSON report.

    ``events_path`` additionally captures the instrumented replay's
    JSONL event log (the run feeding the ``per_epoch`` section);
    ``inject_faults`` adds a faulted run to ``resilience_overhead``;
    ``stream_file`` adds an on-disk run to ``streaming_overhead``;
    ``big_events`` sizes the ``columnar_10m`` and ``taint_columnar_10m``
    workloads (0 skips them -- the full 10M-event default takes minutes
    on the object paths); ``serve_streams`` sizes the
    ``serve_throughput`` workload's producer count (0 skips it);
    ``adaptive_events`` sizes the ``adaptive_epoch`` workload's trace
    (events per thread; 0 skips it).
    """
    workloads = {
        "microbench_core": _bench_microbench_core(repeats, events_path),
        "reaching_defs": _bench_reaching_defs(repeats),
        "shadow_store_range": _bench_shadow_store_range(repeats),
        "observability_overhead": _bench_observability_overhead(repeats),
        "resilience_overhead": _bench_resilience_overhead(
            repeats, inject_faults
        ),
        "streaming_overhead": _bench_streaming_overhead(
            repeats, stream_file
        ),
    }
    if big_events > 0:
        workloads["columnar_10m"] = _bench_columnar_10m(big_events)
        workloads["taint_columnar_10m"] = _bench_taint_columnar_10m(
            big_events
        )
    if serve_streams > 0:
        workloads["serve_throughput"] = _bench_serve_throughput(
            serve_streams
        )
    if adaptive_events > 0:
        workloads["adaptive_epoch"] = _bench_adaptive_epoch(
            adaptive_events
        )
    report: Dict[str, Any] = {
        "schema": 8,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "workloads": workloads,
    }
    if output_path is not None:
        with open(output_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


def main(argv: Optional[list] = None) -> int:  # pragma: no cover - thin CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_1.json")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--big-events", type=int, default=10_000_000)
    parser.add_argument(
        "--serve-streams", type=int, default=SERVE_STREAMS
    )
    parser.add_argument(
        "--adaptive-events", type=int, default=ADAPTIVE_EVENTS
    )
    args = parser.parse_args(argv)
    report = run_perf(
        repeats=args.repeats,
        output_path=args.output,
        big_events=args.big_events,
        serve_streams=args.serve_streams,
        adaptive_events=args.adaptive_events,
    )
    core = report["workloads"]["microbench_core"]
    print(
        f"wrote {args.output}: microbench core "
        f"{core['speedup_vs_baseline']:.2f}x vs reference serial"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
