"""Runs benchmark x system x parameter configurations, with caching.

The scaling rule (DESIGN.md section 3): all event counts are 1/16 of
the paper's instruction counts, so the paper's epoch sizes h in {8K,
64K} instructions become {512, 4096} events while preserving the
epochs-per-run and gap-vs-window ratios that drive both performance
amortization and false-positive behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.epoch import partition_by_global_order
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.reports import PrecisionReport, compare_reports
from repro.lifeguards.sequential import SequentialAddrCheck
from repro.sim.config import LifeguardCostModel
from repro.sim.lba import ButterflyRun, LBASystem, SimResult
from repro.trace.program import TraceProgram
from repro.workloads.registry import BENCHMARKS, get_benchmark

#: Scale factor between the paper's instruction counts and our event
#: counts (16x smaller traces, same structure).
SCALE = 16

#: The paper's epoch sizes, in monitored instructions.
PAPER_EPOCHS = {"8K": 8 * 1024, "64K": 64 * 1024}


@dataclass(frozen=True)
class ExperimentConfig:
    """Suite-wide knobs."""

    events_per_thread: int = 8192
    thread_counts: Tuple[int, ...] = (2, 4, 8)
    #: Scaled stand-ins for the paper's h = 8K and 64K.
    epoch_small: int = PAPER_EPOCHS["8K"] // SCALE
    epoch_large: int = PAPER_EPOCHS["64K"] // SCALE
    seed: int = 1
    costs: LifeguardCostModel = field(default_factory=LifeguardCostModel)
    #: Execution backend the butterfly engine fans out on ("serial",
    #: "threads", or "processes") -- results are backend-independent.
    backend: str = "serial"

    def epoch_label(self, h: int) -> str:
        """Report epoch sizes in the paper's units."""
        for label, paper_h in PAPER_EPOCHS.items():
            if paper_h // SCALE == h:
                return label
        return str(h)


@dataclass
class RunRecord:
    """Everything measured for one (benchmark, threads, h)."""

    benchmark: str
    threads: int
    epoch_size: int
    seq_unmonitored: SimResult
    par_unmonitored: SimResult
    timesliced: SimResult
    butterfly: SimResult
    precision: PrecisionReport

    def normalized(self, result: SimResult) -> float:
        """Execution time normalized to sequential unmonitored."""
        return result.cycles / self.seq_unmonitored.cycles

    @property
    def timesliced_norm(self) -> float:
        return self.normalized(self.timesliced)

    @property
    def butterfly_norm(self) -> float:
        return self.normalized(self.butterfly)

    @property
    def parallel_norm(self) -> float:
        return self.normalized(self.par_unmonitored)


class ExperimentSuite:
    """Caches traces and per-configuration runs across figures."""

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config or ExperimentConfig()
        self._programs: Dict[Tuple[str, int], TraceProgram] = {}
        self._baselines: Dict[Tuple[str, int], Tuple[SimResult, SimResult, SimResult]] = {}
        self._runs: Dict[Tuple[str, int, int], RunRecord] = {}
        self._system = LBASystem(costs=self.config.costs)

    # -- building blocks --------------------------------------------------

    def program(self, benchmark: str, threads: int) -> TraceProgram:
        key = (benchmark, threads)
        if key not in self._programs:
            gen = get_benchmark(benchmark)
            self._programs[key] = gen.generate(
                threads, self.config.events_per_thread, seed=self.config.seed
            )
        return self._programs[key]

    def baselines(
        self, benchmark: str, threads: int
    ) -> Tuple[SimResult, SimResult, SimResult]:
        """(sequential unmonitored, parallel unmonitored, timesliced) --
        epoch-size independent, shared across Figure 12's h sweep."""
        key = (benchmark, threads)
        if key not in self._baselines:
            program = self.program(benchmark, threads)
            self._baselines[key] = (
                self._system.unmonitored_sequential(program),
                self._system.unmonitored_parallel(program),
                self._system.timesliced(program),
            )
        return self._baselines[key]

    # -- full runs -----------------------------------------------------------

    def run(self, benchmark: str, threads: int, epoch_size: int) -> RunRecord:
        key = (benchmark, threads, epoch_size)
        if key in self._runs:
            return self._runs[key]
        program = self.program(benchmark, threads)
        seq_res, par_res, ts_res = self.baselines(benchmark, threads)

        partition = partition_by_global_order(program, epoch_size)
        guard = ButterflyAddrCheck(initially_allocated=program.preallocated)
        bf: ButterflyRun = self._system.butterfly(
            program, epoch_size, partition=partition, guard=guard,
            backend=self.config.backend,
        )

        truth = SequentialAddrCheck(program.preallocated)
        truth.run_order(program)
        precision = compare_reports(
            truth.errors, guard.errors, program.memory_op_count
        )

        record = RunRecord(
            benchmark=benchmark,
            threads=threads,
            epoch_size=epoch_size,
            seq_unmonitored=seq_res,
            par_unmonitored=par_res,
            timesliced=ts_res,
            butterfly=bf.result,
            precision=precision,
        )
        self._runs[key] = record
        return record

    def run_all(self, epoch_size: Optional[int] = None) -> Dict[Tuple[str, int, int], RunRecord]:
        """Run the full benchmark x thread-count grid at one epoch size."""
        h = epoch_size if epoch_size is not None else self.config.epoch_large
        for benchmark in BENCHMARKS:
            for threads in self.config.thread_counts:
                self.run(benchmark, threads, h)
        return dict(self._runs)
