"""The original sequential lifeguards (paper Section 2).

These play two roles in the reproduction:

1. **Timesliced baseline** (Figure 11's state of the art): all
   application threads are interleaved onto one event stream and a
   single sequential lifeguard consumes it.
2. **Ground-truth oracle**: run over a *recorded* interleaving, the
   sequential lifeguard defines the true error set for that execution;
   butterfly reports are scored against it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lifeguards.reports import ErrorKind, ErrorLog, ErrorReport
from repro.trace.events import Instr, Op
from repro.trace.program import GlobalRef, TraceProgram


class SequentialAddrCheck:
    """AddrCheck over a single serialized event stream.

    Maintains per-location allocation metadata; flags accesses to
    unallocated memory, double frees, and double allocations.
    """

    def __init__(self, initially_allocated: Iterable[int] = ()) -> None:
        self.allocated: Set[int] = set(initially_allocated)
        self.errors = ErrorLog()
        self.events_processed = 0

    def process(self, ref: Optional[GlobalRef], instr: Instr) -> None:
        """Consume one event; ``ref`` labels error reports."""
        self.events_processed += 1
        if instr.op is Op.MALLOC:
            for loc in instr.extent:
                if loc in self.allocated:
                    self.errors.flag(
                        ErrorReport(
                            ErrorKind.MALLOC_ALLOCATED, loc, ref=ref,
                            detail="malloc of already-allocated location",
                        )
                    )
                self.allocated.add(loc)
        elif instr.op is Op.FREE:
            for loc in instr.extent:
                if loc not in self.allocated:
                    self.errors.flag(
                        ErrorReport(
                            ErrorKind.FREE_UNALLOCATED, loc, ref=ref,
                            detail="free of unallocated location",
                        )
                    )
                self.allocated.discard(loc)
        else:
            for loc in instr.accessed:
                if loc not in self.allocated:
                    self.errors.flag(
                        ErrorReport(
                            ErrorKind.ACCESS_UNALLOCATED, loc, ref=ref,
                            detail="access to unallocated location",
                        )
                    )

    def run(
        self, stream: Iterable[Tuple[Optional[GlobalRef], Instr]]
    ) -> ErrorLog:
        for ref, instr in stream:
            self.process(ref, instr)
        return self.errors

    def run_order(self, program: TraceProgram) -> ErrorLog:
        """Run over the program's recorded ground-truth interleaving."""
        return self.run(program.iter_recorded())


class SequentialTaintCheck:
    """TaintCheck over a single serialized event stream.

    Tracks a tainted-location set; ASSIGN propagates the OR of its
    sources into the destination; WRITE stores trusted data (untaints);
    JUMP on a tainted location is an error.
    """

    def __init__(self) -> None:
        self.tainted: Set[int] = set()
        self.errors = ErrorLog()
        self.events_processed = 0

    def process(self, ref: Optional[GlobalRef], instr: Instr) -> None:
        self.events_processed += 1
        if instr.op is Op.TAINT:
            self.tainted.add(instr.dst)
        elif instr.op in (Op.UNTAINT, Op.WRITE):
            if instr.dst is not None:
                self.tainted.discard(instr.dst)
        elif instr.op is Op.ASSIGN:
            if any(s in self.tainted for s in instr.srcs):
                self.tainted.add(instr.dst)
            else:
                self.tainted.discard(instr.dst)
        elif instr.op is Op.JUMP:
            loc = instr.srcs[0]
            if loc in self.tainted:
                self.errors.flag(
                    ErrorReport(
                        ErrorKind.TAINTED_JUMP, loc, ref=ref,
                        detail="tainted data used as jump target",
                    )
                )

    def run(
        self, stream: Iterable[Tuple[Optional[GlobalRef], Instr]]
    ) -> ErrorLog:
        for ref, instr in stream:
            self.process(ref, instr)
        return self.errors

    def run_order(self, program: TraceProgram) -> ErrorLog:
        return self.run(program.iter_recorded())


def true_errors_under_any_ordering(
    program: TraceProgram,
    orders: Iterable[List[GlobalRef]],
    lifeguard: str = "addrcheck",
) -> Dict[Tuple, ErrorReport]:
    """Union of sequential-lifeguard errors over a set of orderings.

    The zero-false-negative theorems quantify over *valid orderings*;
    this helper computes, for small traces, every error any ordering
    exhibits, keyed by identity, so tests can assert butterfly coverage.
    """
    out: Dict[Tuple, ErrorReport] = {}
    for order in orders:
        guard = (
            SequentialAddrCheck()
            if lifeguard == "addrcheck"
            else SequentialTaintCheck()
        )
        for ref in order:
            guard.process(ref, program.instr_at(ref))
        for report in guard.errors:
            out.setdefault(report.identity(), report)
    return out
