"""The original sequential lifeguards (paper Section 2).

These play two roles in the reproduction:

1. **Timesliced baseline** (Figure 11's state of the art): all
   application threads are interleaved onto one event stream and a
   single sequential lifeguard consumes it.
2. **Ground-truth oracle**: run over a *recorded* interleaving, the
   sequential lifeguard defines the true error set for that execution;
   butterfly reports are scored against it.

Both guards expose two consumption grains.  :meth:`process` handles one
``Instr`` at a time (the oracle's per-ordering replay).  :meth:`process_block`
consumes a whole :class:`~repro.core.epoch.Block`; when numpy is present
and the block is columnar-backed it runs a vector fast path -- one LUT
pass over the op column selects the analysis-relevant rows and a CSR
gather pulls just their fields -- with bit-identical errors, state, and
``events_processed``.  The fast path keeps the differential oracle and
the timesliced baseline from dominating fuzz/bench wall-clock on
READ-heavy traces.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.columnar import (
    HAVE_NUMPY,
    OP_ASSIGN,
    OP_FREE,
    OP_JUMP,
    OP_MALLOC,
    OP_READ,
    OP_TAINT,
    OP_UNTAINT,
    OP_WRITE,
    np,
)
from repro.core.epoch import Block
from repro.lifeguards.reports import ErrorKind, ErrorLog, ErrorReport
from repro.trace.events import Instr, Op
from repro.trace.program import GlobalRef, TraceProgram

if HAVE_NUMPY:
    #: Rows AddrCheck must look at: allocation-state changes plus the
    #: dereferencing ops (``Instr.accessed`` is empty for everything
    #: else, srcs or no srcs).
    _ADDR_EVENT_LUT = np.zeros(256, dtype=bool)
    _ADDR_EVENT_LUT[
        [OP_MALLOC, OP_FREE, OP_READ, OP_WRITE, OP_ASSIGN, OP_JUMP]
    ] = True
    #: Rows TaintCheck must look at (READs never move taint).
    _SEQ_TAINT_LUT = np.zeros(256, dtype=bool)
    _SEQ_TAINT_LUT[
        [OP_TAINT, OP_UNTAINT, OP_WRITE, OP_ASSIGN, OP_JUMP]
    ] = True
else:  # pragma: no cover - exercised under REPRO_NO_NUMPY=1
    _ADDR_EVENT_LUT = None
    _SEQ_TAINT_LUT = None


class _SequentialBase:
    """Shared stream/block plumbing for the two sequential guards."""

    def __init__(self) -> None:
        self.errors = ErrorLog()
        self.events_processed = 0

    def process(self, ref: Optional[GlobalRef], instr: Instr) -> None:
        raise NotImplementedError

    def _process_columns(self, block: Block) -> None:
        raise NotImplementedError

    def process_block(self, block: Block) -> None:
        """Consume one thread-local block in program order.

        Events are labelled ``(block.tid, block.start + i)`` -- exactly
        the refs :meth:`run_order` passes for this thread's slice.
        Columnar-backed blocks take the vector fast path under numpy;
        otherwise the block replays through :meth:`process`.
        """
        if HAVE_NUMPY and block.has_columns:
            self._process_columns(block)
            return
        tid, base = block.tid, block.start
        for i, instr in enumerate(block.instrs):
            self.process((tid, base + i), instr)

    def run(
        self, stream: Iterable[Tuple[Optional[GlobalRef], Instr]]
    ) -> ErrorLog:
        for ref, instr in stream:
            self.process(ref, instr)
        return self.errors

    def run_order(self, program: TraceProgram) -> ErrorLog:
        """Run over the program's recorded ground-truth interleaving."""
        return self.run(program.iter_recorded())

    def run_blocks(self, blocks: Iterable[Block]) -> ErrorLog:
        """Consume blocks back to back (a timesliced schedule)."""
        for block in blocks:
            self.process_block(block)
        return self.errors


class SequentialAddrCheck(_SequentialBase):
    """AddrCheck over a single serialized event stream.

    Maintains per-location allocation metadata; flags accesses to
    unallocated memory, double frees, and double allocations.
    """

    def __init__(self, initially_allocated: Iterable[int] = ()) -> None:
        super().__init__()
        self.allocated: Set[int] = set(initially_allocated)

    def process(self, ref: Optional[GlobalRef], instr: Instr) -> None:
        """Consume one event; ``ref`` labels error reports."""
        self.events_processed += 1
        if instr.op is Op.MALLOC:
            for loc in instr.extent:
                if loc in self.allocated:
                    self.errors.flag(
                        ErrorReport(
                            ErrorKind.MALLOC_ALLOCATED, loc, ref=ref,
                            detail="malloc of already-allocated location",
                        )
                    )
                self.allocated.add(loc)
        elif instr.op is Op.FREE:
            for loc in instr.extent:
                if loc not in self.allocated:
                    self.errors.flag(
                        ErrorReport(
                            ErrorKind.FREE_UNALLOCATED, loc, ref=ref,
                            detail="free of unallocated location",
                        )
                    )
                self.allocated.discard(loc)
        else:
            for loc in instr.accessed:
                if loc not in self.allocated:
                    self.errors.flag(
                        ErrorReport(
                            ErrorKind.ACCESS_UNALLOCATED, loc, ref=ref,
                            detail="access to unallocated location",
                        )
                    )

    # -- snapshot/restore (oracle prefix memoization) ------------------

    def snapshot_state(self) -> FrozenSet[int]:
        """Copy of the mutable metadata (the error log is append-only
        and deduplicating, so it is never rolled back)."""
        return frozenset(self.allocated)

    def restore_state(self, state: FrozenSet[int]) -> None:
        self.allocated = set(state)

    # -- columnar fast path --------------------------------------------

    def _process_columns(self, block: Block) -> None:
        """Vectorized block scan.

        The allocated set only changes at MALLOC/FREE rows, so the scan
        splits the relevant rows into segments between allocation-state
        changes.  Within a segment every dereferenced location is
        membership-tested in one C-level ``issuperset`` sweep; only a
        segment that actually contains an error is replayed row by row
        (to emit reports in exact event order).
        """
        cols = block.columns
        self.events_processed += cols.length
        if cols.length == 0:
            return
        ops_arr = np.asarray(cols.op)
        idx = np.flatnonzero(_ADDR_EVENT_LUT[ops_arr])
        if idx.shape[0] == 0:
            return
        sel = ops_arr[idx]
        alloc_pos = np.flatnonzero((sel == OP_MALLOC) | (sel == OP_FREE))
        wa_pos = np.flatnonzero((sel == OP_WRITE) | (sel == OP_ASSIGN))
        codes, dsts, bounds, srcs = cols.gather(idx)
        rows = idx.tolist()
        wa_list = wa_pos.tolist()
        wa_dsts = [dsts[j] for j in wa_list]
        sizes = cols.size
        tid, base = block.tid, block.start
        allocated = self.allocated
        record = self.errors.record

        def check_segment(lo: int, hi: int) -> None:
            # Rows [lo, hi) hold no allocation-state change.
            if lo == hi:
                return
            wlo, whi = np.searchsorted(wa_pos, (lo, hi))
            if allocated.issuperset(
                srcs[bounds[lo]:bounds[hi]]
            ) and allocated.issuperset(wa_dsts[wlo:whi]):
                return
            for k in range(lo, hi):
                acc = srcs[bounds[k]:bounds[k + 1]]
                if codes[k] == OP_WRITE or codes[k] == OP_ASSIGN:
                    acc = acc + [dsts[k]]
                ref = (tid, base + rows[k])
                for loc in acc:
                    if loc not in allocated:
                        record(
                            ErrorKind.ACCESS_UNALLOCATED, loc, ref=ref,
                            detail="access to unallocated location",
                        )

        prev = 0
        for a in alloc_pos.tolist():
            check_segment(prev, a)
            dst = dsts[a]
            extent = range(dst, dst + int(sizes[rows[a]]))
            ref = (tid, base + rows[a])
            if codes[a] == OP_MALLOC:
                for loc in extent:
                    if loc in allocated:
                        record(
                            ErrorKind.MALLOC_ALLOCATED, loc, ref=ref,
                            detail="malloc of already-allocated location",
                        )
                    allocated.add(loc)
            else:
                for loc in extent:
                    if loc not in allocated:
                        record(
                            ErrorKind.FREE_UNALLOCATED, loc, ref=ref,
                            detail="free of unallocated location",
                        )
                    allocated.discard(loc)
            prev = a + 1
        check_segment(prev, len(rows))


class SequentialTaintCheck(_SequentialBase):
    """TaintCheck over a single serialized event stream.

    Tracks a tainted-location set; ASSIGN propagates the OR of its
    sources into the destination; WRITE stores trusted data (untaints);
    JUMP on a tainted location is an error.
    """

    def __init__(self) -> None:
        super().__init__()
        self.tainted: Set[int] = set()

    def process(self, ref: Optional[GlobalRef], instr: Instr) -> None:
        self.events_processed += 1
        if instr.op is Op.TAINT:
            self.tainted.add(instr.dst)
        elif instr.op in (Op.UNTAINT, Op.WRITE):
            if instr.dst is not None:
                self.tainted.discard(instr.dst)
        elif instr.op is Op.ASSIGN:
            if any(s in self.tainted for s in instr.srcs):
                self.tainted.add(instr.dst)
            else:
                self.tainted.discard(instr.dst)
        elif instr.op is Op.JUMP:
            loc = instr.srcs[0]
            if loc in self.tainted:
                self.errors.flag(
                    ErrorReport(
                        ErrorKind.TAINTED_JUMP, loc, ref=ref,
                        detail="tainted data used as jump target",
                    )
                )

    # -- snapshot/restore (oracle prefix memoization) ------------------

    def snapshot_state(self) -> FrozenSet[int]:
        """See :meth:`SequentialAddrCheck.snapshot_state`."""
        return frozenset(self.tainted)

    def restore_state(self, state: FrozenSet[int]) -> None:
        self.tainted = set(state)

    # -- columnar fast path --------------------------------------------

    def _process_columns(self, block: Block) -> None:
        """Vectorized block scan: READs (and NOP/MALLOC/FREE) never move
        taint, so one LUT pass drops them and the sequential walk only
        touches TAINT/UNTAINT/WRITE/ASSIGN/JUMP rows."""
        cols = block.columns
        self.events_processed += cols.length
        if cols.length == 0:
            return
        idx = np.flatnonzero(_SEQ_TAINT_LUT[np.asarray(cols.op)])
        if idx.shape[0] == 0:
            return
        codes, dsts, bounds, srcs = cols.gather(idx)
        tid, base = block.tid, block.start
        tainted = self.tainted
        record = self.errors.record
        for k, i in enumerate(idx.tolist()):
            code = codes[k]
            if code == OP_TAINT:
                tainted.add(dsts[k])
            elif code == OP_JUMP:
                loc = srcs[bounds[k]]
                if loc in tainted:
                    record(
                        ErrorKind.TAINTED_JUMP, loc, ref=(tid, base + i),
                        detail="tainted data used as jump target",
                    )
            elif code == OP_ASSIGN:
                if any(s in tainted for s in srcs[bounds[k]:bounds[k + 1]]):
                    tainted.add(dsts[k])
                else:
                    tainted.discard(dsts[k])
            else:  # UNTAINT or WRITE stores trusted data
                tainted.discard(dsts[k])


def true_errors_under_any_ordering(
    program: Optional[TraceProgram],
    orders: Iterable[List[GlobalRef]],
    lifeguard: str = "addrcheck",
    *,
    preallocated: Iterable[int] = (),
    instr_of: Optional[Callable[[GlobalRef], Instr]] = None,
    stats: Optional[Dict[str, int]] = None,
) -> Dict[Tuple, ErrorReport]:
    """Union of sequential-lifeguard errors over a set of orderings.

    The zero-false-negative theorems quantify over *valid orderings*;
    this helper computes, for small traces, every error any ordering
    exhibits, keyed by identity, so tests can assert butterfly coverage.

    Consecutive orderings out of :func:`repro.core.ordering.
    all_valid_orderings` are DFS siblings sharing long common prefixes,
    so instead of a fresh full replay per ordering the enumerator keeps
    one guard plus a per-position stack of state snapshots: each new
    ordering restores the snapshot at its longest common prefix with
    the previous one and replays only the divergent suffix.  The error
    log is never rolled back -- a report emitted during a suffix replay
    is genuinely reachable under that ordering (the metadata state was
    restored exactly), and the union over orderings is insensitive to
    which ordering first exhibits an identity.

    ``instr_of`` maps an ordering ref to its :class:`Instr` (defaults
    to ``program.instr_at``, for refs that are global ``(tid, index)``
    pairs; pass e.g. ``partition.instr`` for ``(lid, tid, i)`` ids).
    ``stats``, when given, is filled with ``orderings``,
    ``events_total`` (what fresh per-ordering replays would cost) and
    ``events_replayed`` (suffix events actually processed).
    """
    if instr_of is None:
        if program is None:
            raise ValueError("need a program or an explicit instr_of")
        instr_of = program.instr_at
    guard = (
        SequentialAddrCheck(preallocated)
        if lifeguard == "addrcheck"
        else SequentialTaintCheck()
    )
    # snapshots[k] is the metadata state after the previous ordering's
    # first k events.
    snapshots: List = [guard.snapshot_state()]
    prev: List[GlobalRef] = []
    orderings = 0
    events_total = 0
    for order in orders:
        orderings += 1
        events_total += len(order)
        k = 0
        limit = min(len(prev), len(order))
        while k < limit and prev[k] == order[k]:
            k += 1
        guard.restore_state(snapshots[k])
        del snapshots[k + 1:]
        for ref in order[k:]:
            guard.process(ref, instr_of(ref))
            snapshots.append(guard.snapshot_state())
        prev = list(order)
    if stats is not None:
        stats["orderings"] = orderings
        stats["events_total"] = events_total
        stats["events_replayed"] = guard.events_processed
    return {r.identity(): r for r in guard.errors}
