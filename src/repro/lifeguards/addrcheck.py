"""Butterfly AddrCheck (paper Section 6.1).

AddrCheck instantiates reaching expressions with allocation as GEN and
deallocation as KILL: a location "reaches" a point iff it is allocated
along every valid ordering.  The checking algorithm has two parts:

1. **First pass (thread-local)**: every access or free must find its
   location allocated in the incrementally updated ``LSOS_{l,t,i}``;
   every malloc must find it deallocated.
2. **Second pass (isolation)**: using the wing summaries
   ``S = (GEN, KILL, ACCESS)``, any overlap between the body's
   allocation-state changes and the wings' operations -- or between the
   body's accesses and the wings' state changes -- is a race on the
   metadata state and is flagged (Figure 9's non-isolated allocation).

Zero false negatives (Theorem 6.1) holds because the valid orderings
considered are a superset of real machine orderings; the price is false
positives near epoch boundaries, which Figure 13 quantifies.

Two implementations share this class, selected by ``optimized``:

- ``optimized=True`` (default): the first pass runs as a picklable
  :class:`AddrScanner` against a pre-computed LSOS snapshot (so the
  engine may fan blocks out across a backend), errors are recorded via
  the raw tuple fast path, and the GEN/KILL/ACCESS summaries are
  interned to bitsets so the wing meet and isolation intersections are
  bitwise OR/AND.
- ``optimized=False``: the original per-instruction reference
  implementation, kept as the perf baseline the bench harness measures
  against and as a differential-testing oracle.

Both produce identical reports (as sets -- the optimized isolation pass
emits them in interned-bit order rather than set-iteration order) and
identical work counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.bitset import BitInterner, popcount
from repro.core.columnar import (
    HAVE_NUMPY,
    OP_ASSIGN,
    OP_FREE,
    OP_JUMP,
    OP_MALLOC,
    OP_READ,
    OP_WRITE,
    ColumnarBlock,
    np,
)
from repro.core.dataflow import BlockFacts
from repro.core.epoch import Block, BlockId
from repro.core.framework import ButterflyAnalysis
from repro.core.state import SOSHistory
from repro.core.window import Butterfly
from repro.lifeguards.reports import ErrorKind, ErrorLog, ErrorReport
from repro.trace.events import Instr, Op

if HAVE_NUMPY:
    # Op-class lookup tables indexed by the uint8 op column: one fancy
    # index replaces a chain of elementwise comparisons per block.
    _ACC_LUT = np.zeros(256, dtype=bool)
    _ACC_LUT[[OP_READ, OP_WRITE, OP_ASSIGN, OP_JUMP]] = True
    _DST_LUT = np.zeros(256, dtype=np.int64)
    _DST_LUT[[OP_WRITE, OP_ASSIGN]] = 1
else:  # pragma: no cover - tables are only consulted on the numpy path
    _ACC_LUT = _DST_LUT = None

_DETAIL_MALLOC = "malloc of location believed allocated"
_DETAIL_FREE = "free of location believed unallocated"
_DETAIL_ACCESS = "access to location believed unallocated"
_DETAIL_CHANGE_RACE = "allocation-state change concurrent with another"
_DETAIL_ACCESS_RACE = "access concurrent with an allocation-state change"


@dataclass
class AddrSummary:
    """Per-block summary ``s_{l,t} = (GEN, KILL, ACCESS)``.

    ``facts`` carries the allocation-domain block facts (downward-exposed
    allocations, freed locations, last-event map) used by the SOS/LSOS
    rules; ``gen``/``kill``/``access`` are the side-out views (union over
    instructions) used by the isolation check.  ``access_mask`` is the
    interned-bitset encoding of ``access`` (optimized mode only; the
    GEN/KILL masks live on ``facts``).
    """

    facts: BlockFacts
    access: Set[int] = field(default_factory=set)
    first_change: Dict[int, int] = field(default_factory=dict)
    first_access: Dict[int, int] = field(default_factory=dict)
    access_mask: Optional[int] = None

    @property
    def gen(self) -> Set[int]:
        """All locations allocated anywhere in the block."""
        return self.facts.all_gen

    @property
    def kill(self) -> Set[int]:
        """All locations freed anywhere in the block."""
        return self.facts.killed_vars

    @property
    def block_id(self) -> BlockId:
        return self.facts.block_id


@dataclass
class WingSummary:
    """The meet of the wings: elementwise union of their summaries."""

    gen: Set[int]
    kill: Set[int]
    access: Set[int]

    @property
    def changed(self) -> Set[int]:
        return self.gen | self.kill


@dataclass
class WingMask:
    """Bitset form of :class:`WingSummary` (optimized mode).

    ``meet_work`` carries the meet's set-operation element count so the
    (pure) meet can defer its work accounting to the ordered commit.
    """

    gen: int
    kill: int
    access: int
    meet_work: int

    @property
    def changed(self) -> int:
        return self.gen | self.kill


@dataclass
class AddrScan:
    """Raw result of scanning one block: summary sets, error records as
    ``(kind, location, instr index, detail)`` tuples, and counters."""

    gen: Set[int]
    all_gen: Set[int]
    killed_vars: Set[int]
    last_event: Dict[int, str]
    access: Set[int]
    first_change: Dict[int, int]
    first_access: Dict[int, int]
    errors: List[Tuple[ErrorKind, int, int, str]]
    events: int
    checks: int
    accesses: int
    allocs: int


@dataclass(frozen=True)
class AddrScanner:
    """Picklable first-pass work unit.

    ``context`` is the block's starting LSOS (a fresh, private set the
    scan mutates as its running state); everything else the scan needs
    travels with the block, so the unit crosses process boundaries.

    Two interchangeable scan kernels produce bit-identical
    :class:`AddrScan` results (the ``columnar`` differential-fuzz mode
    diffs them end to end):

    - the *object* kernel, a per-``Instr`` Python loop;
    - the *columnar* kernel, vectorized over the block's column arrays.

    ``columnar=None`` picks automatically: the vector kernel runs when
    numpy is available and the block is already columnar-backed, so
    neither kernel ever pays a representation conversion (converting an
    object block just to vectorize costs as much as scanning it).
    ``True``/``False`` force a kernel (benchmarks and the differential
    harness use both).
    """

    use_idempotent_filter: bool
    columnar: Optional[bool] = None

    def __call__(self, block: Block, running: Set[int]) -> AddrScan:
        if HAVE_NUMPY and self.columnar is not False:
            if self.columnar or block.has_columns:
                return self._scan_columns(block.columns, running)
        return self._scan_objects(block, running)

    def _scan_objects(self, block: Block, running: Set[int]) -> AddrScan:
        gen: Set[int] = set()
        all_gen: Set[int] = set()
        killed_vars: Set[int] = set()
        last_event: Dict[int, str] = {}
        access: Set[int] = set()
        first_change: Dict[int, int] = {}
        first_access: Dict[int, int] = {}
        errors: List[Tuple[ErrorKind, int, int, str]] = []
        # Idempotent-filter state: one filter per thread, flushed at
        # every heartbeat -- i.e. per-block scope.
        checked: Set[int] = set()
        events = 0
        checks = 0
        accesses = 0
        allocs = 0
        use_filter = self.use_idempotent_filter
        op_malloc = Op.MALLOC
        op_free = Op.FREE
        op_read = Op.READ
        op_jump = Op.JUMP
        op_write = Op.WRITE
        op_assign = Op.ASSIGN

        for i, instr in enumerate(block.instrs):
            events += 1
            op = instr.op
            if op is op_malloc:
                dst = instr.dst
                for loc in range(dst, dst + instr.size):
                    allocs += 1
                    checked.discard(loc)
                    if loc in running:
                        errors.append(
                            (ErrorKind.MALLOC_ALLOCATED, loc, i, _DETAIL_MALLOC)
                        )
                    running.add(loc)
                    gen.add(loc)
                    all_gen.add(loc)
                    last_event[loc] = "gen"
                    if loc not in first_change:
                        first_change[loc] = i
            elif op is op_free:
                dst = instr.dst
                for loc in range(dst, dst + instr.size):
                    allocs += 1
                    checked.discard(loc)
                    if loc not in running:
                        errors.append(
                            (ErrorKind.FREE_UNALLOCATED, loc, i, _DETAIL_FREE)
                        )
                    running.discard(loc)
                    killed_vars.add(loc)
                    gen.discard(loc)
                    last_event[loc] = "kill"
                    if loc not in first_change:
                        first_change[loc] = i
            else:
                # Inlined Instr.accessed: READ/JUMP dereference their
                # source; WRITE/ASSIGN their sources plus destination.
                if op is op_read or op is op_jump:
                    locs = instr.srcs
                elif op is op_write or op is op_assign:
                    locs = instr.srcs + (instr.dst,)
                else:
                    continue
                for loc in locs:
                    accesses += 1
                    access.add(loc)
                    if loc not in first_access:
                        first_access[loc] = i
                    if use_filter and loc in checked:
                        continue
                    checked.add(loc)
                    checks += 1
                    if loc not in running:
                        errors.append(
                            (ErrorKind.ACCESS_UNALLOCATED, loc, i, _DETAIL_ACCESS)
                        )
        return AddrScan(
            gen=gen,
            all_gen=all_gen,
            killed_vars=killed_vars,
            last_event=last_event,
            access=access,
            first_change=first_change,
            first_access=first_access,
            errors=errors,
            events=events,
            checks=checks,
            accesses=accesses,
            allocs=allocs,
        )

    def _scan_columns(
        self, cols: ColumnarBlock, running: Set[int]
    ) -> AddrScan:
        """Vectorized first pass over column arrays.

        Key observation: MALLOC/FREE events only ever change the
        allocation state and filter arming of the locations in their
        extents.  Call a location *stable* when no change event in the
        block touches it: a stable location's ``running`` membership and
        filter state are constant across the whole block, so all of its
        checks reduce to one block-level membership query -- no matter
        how many change events interleave.  The kernel therefore
        flattens every dereferenced location into one access stream
        (CSR expansion, srcs before dst exactly like ``Instr.accessed``)
        and resolves stable locations wholesale with a handful of
        C-level passes; only the (typically rare) accesses to changed
        locations plus the change events themselves are replayed with
        the exact scalar semantics, and every error record carries its
        stream position so the merged error list comes out in event
        order.  The result is bit-identical to :meth:`_scan_objects`.
        """
        n = cols.length
        ops = np.asarray(cols.op)
        dst_col = np.asarray(cols.dst)
        size_col = np.asarray(cols.size)
        src_off = np.asarray(cols.src_off)
        src_val = np.asarray(cols.src_val)

        gen: Set[int] = set()
        all_gen: Set[int] = set()
        killed_vars: Set[int] = set()
        last_event: Dict[int, str] = {}
        access: Set[int] = set()
        first_change: Dict[int, int] = {}
        first_access: Dict[int, int] = {}
        errors: List[Tuple[ErrorKind, int, int, str]] = []
        checked: Set[int] = set()
        checks = 0
        accesses = 0
        allocs = 0
        use_filter = self.use_idempotent_filter

        # Flatten every dereferenced location into ``acc_loc``: per
        # event, sources in order then (for WRITE/ASSIGN) the
        # destination -- the exact order of the scalar loop.  Op-class
        # tests are one table-lookup pass over the uint8 op column.
        cnt = np.diff(src_off)
        is_acc = _ACC_LUT[ops]
        src_cnt = np.where(is_acc, cnt, 0)
        dst_extra = _DST_LUT[ops]
        tot = src_cnt + dst_extra
        acc_off = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(tot, out=acc_off[1:])
        total = int(acc_off[-1])
        acc_loc = np.empty(total, dtype=np.int64)
        if total:
            dst_ev = np.flatnonzero(dst_extra)
            dst_pos = acc_off[dst_ev] + src_cnt[dst_ev]
            if bool((cnt[~is_acc] != 0).any()):
                # Some non-access event carries sources: filter them out
                # of the flattened source stream before scattering.
                src_ev = np.repeat(np.arange(n, dtype=np.int64), cnt)
                keep = is_acc[src_ev]
                kept_ev = src_ev[keep]
                # The kept sources of event e are contiguous starting at
                # kept_start[e]; shift each run to its slot in acc_loc.
                kept_start = np.cumsum(src_cnt) - src_cnt
                pos = (acc_off[:-1] - kept_start)[kept_ev] + np.arange(
                    kept_ev.shape[0], dtype=np.int64
                )
                acc_loc[pos] = src_val[keep]
            elif src_val.shape[0]:
                # All sources belong to access events (the usual case):
                # the slots that are not destination slots are exactly
                # the sources in stream order.
                is_src_slot = np.ones(total, dtype=bool)
                is_src_slot[dst_pos] = False
                acc_loc[is_src_slot] = src_val
            acc_loc[dst_pos] = dst_col[dst_ev]

        def _ev_at(pos: Any) -> Any:
            # Recover event ids for (sparse) occurrence positions: event
            # ``e`` owns access slots ``acc_off[e] .. acc_off[e+1]-1``,
            # so a binary search beats materializing the full repeat.
            return np.searchsorted(acc_off, pos, side="right") - 1

        change_idx = np.flatnonzero((ops == OP_MALLOC) | (ops == OP_FREE))
        change_list = change_idx.tolist()
        change_ops = ops[change_idx].tolist()
        change_dst = dst_col[change_idx].tolist()
        change_size = size_col[change_idx].tolist()
        #: Access-stream slots preceding each change event: accesses at
        #: positions < change_off[ci] happen before change event ci.
        change_off = acc_off[change_idx].tolist()

        changed_locs: Set[int] = set()
        for d, s in zip(change_dst, change_size):
            changed_locs.update(range(d, d + s))

        # Errors are collected with a stream-position sort key and
        # merged at the end: access errors at occurrence position ``p``
        # key as ``(p, 1, ...)``, change-event errors at event ``ci``
        # (whose extent locations error in order ``k``) key as
        # ``(change_off[ci], 0, ci, k)`` -- an access sharing a change's
        # offset happens *after* it, hence the 1-vs-0 middle component.
        keyed: List[Tuple[Tuple[int, int, int, int],
                          Tuple[ErrorKind, int, int, str]]] = []

        # Replayed occurrences: accesses whose location a change event
        # touches, as (position, location, event) in stream order.
        sub: List[Tuple[int, int, int]] = []

        accesses = total
        if total:
            # ``access``/``first_access`` are pure functions of the
            # access stream (no allocation state, no filter), computed
            # wholesale: the first occurrence of a location in the
            # stream IS its first occurrence in event order.
            lo = int(acc_loc.min())
            hi = int(acc_loc.max())
            span = hi - lo + 1
            dense = span <= max(4 * total, 1 << 16)
            if dense:
                # Dense location domain (the usual case): reversed
                # scatter-assign finds first occurrences in O(n + span)
                # without the sort ``np.unique`` would pay.
                rel = acc_loc - lo
                first_slot = np.full(span, -1, dtype=np.int64)
                first_slot[rel[::-1]] = np.arange(
                    total - 1, -1, -1, dtype=np.int64
                )
                uniq_rel = np.flatnonzero(first_slot >= 0)
                uniq = uniq_rel + lo
                first_pos = first_slot[uniq_rel]
                inv = None
            else:
                uniq, first_pos, inv = np.unique(
                    acc_loc, return_index=True, return_inverse=True
                )
                rel = uniq_rel = None

            uniq_list = uniq.tolist()
            access.update(uniq_list)
            first_access.update(zip(uniq_list, _ev_at(first_pos).tolist()))

            running_arr = np.fromiter(
                running, dtype=np.int64, count=len(running)
            )
            in_run = np.isin(uniq, running_arr)
            if changed_locs:
                changed_arr = np.fromiter(
                    changed_locs, dtype=np.int64, count=len(changed_locs)
                )
                is_changed = np.isin(uniq, changed_arr)
                stable = ~is_changed
                if is_changed.any():
                    if dense:
                        mark = np.zeros(span, dtype=bool)
                        mark[uniq_rel[is_changed]] = True
                        occ = mark[rel]
                    else:
                        occ = is_changed[inv]
                    sub_pos = np.flatnonzero(occ)
                    sub = list(zip(
                        sub_pos.tolist(),
                        acc_loc[sub_pos].tolist(),
                        _ev_at(sub_pos).tolist(),
                    ))
            else:
                stable = np.ones(uniq.shape[0], dtype=bool)

            if use_filter:
                # Each stable location: exactly one check, at its first
                # occurrence, against the initial running set.
                checks += int(stable.sum())
                checked.update(uniq[stable].tolist())
                bad_u = stable & ~in_run
                if bad_u.any():
                    bad_pos = first_pos[bad_u]
                    for p, u, e in zip(
                        bad_pos.tolist(),
                        uniq[bad_u].tolist(),
                        _ev_at(bad_pos).tolist(),
                    ):
                        keyed.append((
                            (p, 1, 0, 0),
                            (ErrorKind.ACCESS_UNALLOCATED, u, e,
                             _DETAIL_ACCESS),
                        ))
            else:
                # Every occurrence of a stable location is a check (and
                # an error per occurrence when unallocated).
                checks += total - len(sub)
                bad_u = stable & ~in_run
                if bad_u.any():
                    if dense:
                        mark = np.zeros(span, dtype=bool)
                        mark[uniq_rel[bad_u]] = True
                        occ = mark[rel]
                    else:
                        occ = bad_u[inv]
                    bad_pos = np.flatnonzero(occ)
                    for p, u, e in zip(
                        bad_pos.tolist(),
                        acc_loc[bad_pos].tolist(),
                        _ev_at(bad_pos).tolist(),
                    ):
                        keyed.append((
                            (p, 1, 0, 0),
                            (ErrorKind.ACCESS_UNALLOCATED, u, e,
                             _DETAIL_ACCESS),
                        ))

        # Replay, in stream order, the accesses that touch changed
        # locations interleaved with the change events themselves --
        # exact scalar semantics against the live ``running``/filter.
        def _replay_access(p: int, u: int, e: int) -> None:
            nonlocal checks
            if use_filter:
                if u in checked:
                    return
                checked.add(u)
            checks += 1
            if u not in running:
                keyed.append((
                    (p, 1, 0, 0),
                    (ErrorKind.ACCESS_UNALLOCATED, u, e, _DETAIL_ACCESS),
                ))

        si = 0
        nsub = len(sub)
        for ci, c in enumerate(change_list):
            coff = change_off[ci]
            while si < nsub and sub[si][0] < coff:
                _replay_access(*sub[si])
                si += 1
            dst = change_dst[ci]
            if change_ops[ci] == OP_MALLOC:
                for k, loc in enumerate(range(dst, dst + change_size[ci])):
                    allocs += 1
                    checked.discard(loc)
                    if loc in running:
                        keyed.append((
                            (coff, 0, ci, k),
                            (ErrorKind.MALLOC_ALLOCATED, loc, c,
                             _DETAIL_MALLOC),
                        ))
                    running.add(loc)
                    gen.add(loc)
                    all_gen.add(loc)
                    last_event[loc] = "gen"
                    if loc not in first_change:
                        first_change[loc] = c
            else:
                for k, loc in enumerate(range(dst, dst + change_size[ci])):
                    allocs += 1
                    checked.discard(loc)
                    if loc not in running:
                        keyed.append((
                            (coff, 0, ci, k),
                            (ErrorKind.FREE_UNALLOCATED, loc, c,
                             _DETAIL_FREE),
                        ))
                    running.discard(loc)
                    killed_vars.add(loc)
                    gen.discard(loc)
                    last_event[loc] = "kill"
                    if loc not in first_change:
                        first_change[loc] = c
        while si < nsub:
            _replay_access(*sub[si])
            si += 1

        keyed.sort(key=lambda kv: kv[0])
        errors.extend(rec for _, rec in keyed)
        return AddrScan(
            gen=gen,
            all_gen=all_gen,
            killed_vars=killed_vars,
            last_event=last_event,
            access=access,
            first_change=first_change,
            first_access=first_access,
            errors=errors,
            events=n,
            checks=checks,
            accesses=accesses,
            allocs=allocs,
        )


class ButterflyAddrCheck(ButterflyAnalysis[AddrSummary, Any]):
    """The parallel, heap-only AddrCheck of the paper's evaluation.

    Parameters
    ----------
    initially_allocated:
        Locations treated as allocated from the start (e.g. globals);
        the paper's heap-only lifeguard starts empty.
    use_idempotent_filter:
        Model LBA's idempotent filtering (Section 7.1): repeated checks
        of a location within one block are skipped, and the filter is
        conceptually flushed at every epoch boundary (filtering never
        crosses epochs).  An allocation-state change re-arms the check.
    optimized:
        Select the scanner/bitset fast path (default) or the reference
        per-instruction implementation (see the module docstring).
    use_columnar_kernel:
        Kernel selection for the optimized first pass: ``None`` (auto,
        the default -- vectorize when numpy is available and the block
        is columnar-backed), ``True`` (always vectorize) or ``False``
        (always scan per-``Instr``).  See :class:`AddrScanner`.
    """

    def __init__(
        self,
        initially_allocated: Iterable[int] = (),
        use_idempotent_filter: bool = True,
        optimized: bool = True,
        use_columnar_kernel: Optional[bool] = None,
    ) -> None:
        self.sos = SOSHistory()
        base = frozenset(initially_allocated)
        if base:
            self.sos._states[0] = base
            self.sos._states[1] = base
        self.use_idempotent_filter = use_idempotent_filter
        self.optimized = optimized
        self.use_columnar_kernel = use_columnar_kernel
        self.parallel_first_pass = optimized
        self.parallel_second_pass = optimized
        self.errors = ErrorLog()
        self._summaries: Dict[BlockId, AddrSummary] = {}
        self._loc_bits = BitInterner()
        #: Per-block work counters consumed by the timing substrate:
        #: ``events`` (log records dispatched), ``checks`` (metadata
        #: checks after idempotent filtering), ``accesses`` (pre-filter
        #: location accesses), ``flags`` (errors raised), ``meet`` and
        #: ``iso`` (set-operation element counts in steps 2-3).  The
        #: per-epoch maxima of these drive the barrier-synchronized
        #: lifeguard timing model.
        self.block_work: Dict[BlockId, Dict[str, int]] = {}
        self.recorded_accesses = 0

    def emit_metrics(self, recorder: Any) -> None:
        """End-of-run gauges: intern-table pressure and access volume.

        Everything published here is a deterministic function of the
        trace (interning happens on the serial commit path only), so
        these gauges compare equal across execution backends.
        """
        for key, value in self._loc_bits.stats().items():
            recorder.gauge(f"intern.{key}", value)
        recorder.gauge("addrcheck.recorded_accesses", self.recorded_accesses)
        recorder.gauge("addrcheck.errors", len(self.errors))

    # -- step 1: local pass with LSOS checks ------------------------------

    def make_scanner(self) -> AddrScanner:
        return AddrScanner(self.use_idempotent_filter, self.use_columnar_kernel)

    def first_pass_context(self, block: Block) -> Set[int]:
        lid, tid = block.block_id
        return self._compute_lsos(lid, tid)

    def commit_scan(self, block: Block, scan: AddrScan) -> AddrSummary:
        block_id = block.block_id
        facts = BlockFacts(
            block_id=block_id,
            gen=scan.gen,
            all_gen=scan.all_gen,
            killed_vars=scan.killed_vars,
            last_event=scan.last_event,
        )
        summary = AddrSummary(
            facts=facts,
            access=scan.access,
            first_change=scan.first_change,
            first_access=scan.first_access,
        )
        errors = self.errors
        flags = 0
        rec = self.recorder
        emit = rec.enabled
        for kind, loc, i, detail in scan.errors:
            if errors.record(kind, loc, ref=block.global_ref(i), detail=detail):
                flags += 1
                if emit:
                    rec.event(
                        "error",
                        kind=kind.value,
                        location=loc,
                        epoch=block_id[0],
                        thread=block_id[1],
                        index=i,
                        ref=list(block.global_ref(i)),
                        stage="first",
                        wing=None,
                    )
        loc_bits = self._loc_bits
        facts.all_gen_mask = loc_bits.mask(scan.all_gen)
        facts.killed_mask = loc_bits.mask(scan.killed_vars)
        summary.access_mask = loc_bits.mask(scan.access)
        self.recorded_accesses += scan.accesses
        self.block_work[block_id] = {
            "events": scan.events,
            "checks": scan.checks,
            "accesses": scan.accesses,
            "allocs": scan.allocs,
            "flags": flags,
            "meet": 0,
            "iso": 0,
        }
        self._summaries[block_id] = summary
        return summary

    def first_pass(self, block: Block) -> AddrSummary:
        if self.optimized:
            return super().first_pass(block)
        return self._first_pass_reference(block)

    def _first_pass_reference(self, block: Block) -> AddrSummary:
        lid, tid = block.block_id
        running = self._compute_lsos(lid, tid)
        facts = BlockFacts(block_id=block.block_id)
        summary = AddrSummary(facts=facts)
        gen = facts.gen
        all_gen = facts.all_gen
        killed_vars = facts.killed_vars
        last_event = facts.last_event
        access = summary.access
        first_change = summary.first_change
        first_access = summary.first_access
        # Idempotent-filter state: one filter per thread, flushed at
        # every heartbeat -- i.e. per-block scope.
        checked: Set[int] = set()
        events = 0
        checks = 0
        accesses = 0
        allocs = 0
        flags_before = len(self.errors)
        emit = self.recorder.enabled

        for i, instr in enumerate(block.instrs):
            events += 1
            op = instr.op
            if op is Op.MALLOC:
                for loc in instr.extent:
                    allocs += 1
                    checked.discard(loc)
                    if loc in running:
                        if self.errors.flag(
                            ErrorReport(
                                ErrorKind.MALLOC_ALLOCATED,
                                loc,
                                ref=block.global_ref(i),
                                detail=_DETAIL_MALLOC,
                            )
                        ) and emit:
                            self._emit_first_pass_event(
                                block, ErrorKind.MALLOC_ALLOCATED, loc, i
                            )
                    running.add(loc)
                    gen.add(loc)
                    all_gen.add(loc)
                    last_event[loc] = "gen"
                    first_change.setdefault(loc, i)
            elif op is Op.FREE:
                for loc in instr.extent:
                    allocs += 1
                    checked.discard(loc)
                    if loc not in running:
                        if self.errors.flag(
                            ErrorReport(
                                ErrorKind.FREE_UNALLOCATED,
                                loc,
                                ref=block.global_ref(i),
                                detail=_DETAIL_FREE,
                            )
                        ) and emit:
                            self._emit_first_pass_event(
                                block, ErrorKind.FREE_UNALLOCATED, loc, i
                            )
                    running.discard(loc)
                    killed_vars.add(loc)
                    gen.discard(loc)
                    last_event[loc] = "kill"
                    first_change.setdefault(loc, i)
            else:
                for loc in instr.accessed:
                    accesses += 1
                    self.recorded_accesses += 1
                    access.add(loc)
                    first_access.setdefault(loc, i)
                    if self.use_idempotent_filter and loc in checked:
                        continue
                    checked.add(loc)
                    checks += 1
                    if loc not in running:
                        if self.errors.flag(
                            ErrorReport(
                                ErrorKind.ACCESS_UNALLOCATED,
                                loc,
                                ref=block.global_ref(i),
                                detail=_DETAIL_ACCESS,
                            )
                        ) and emit:
                            self._emit_first_pass_event(
                                block, ErrorKind.ACCESS_UNALLOCATED, loc, i
                            )
        self.block_work[block.block_id] = {
            "events": events,
            "checks": checks,
            "accesses": accesses,
            "allocs": allocs,
            "flags": len(self.errors) - flags_before,
            "meet": 0,
            "iso": 0,
        }
        self._summaries[block.block_id] = summary
        return summary

    # -- step 2: meet (elementwise union of wing summaries) ----------------

    def meet(
        self, butterfly: Butterfly, wing_summaries: List[AddrSummary]
    ) -> Any:
        if self.optimized:
            gen = 0
            kill = 0
            access = 0
            work = 0
            for s in wing_summaries:
                f = s.facts
                gen |= f.all_gen_mask
                kill |= f.killed_mask
                access |= s.access_mask
                work += (
                    popcount(f.all_gen_mask)
                    + popcount(f.killed_mask)
                    + popcount(s.access_mask)
                )
            return WingMask(gen=gen, kill=kill, access=access, meet_work=work)
        gen_set: Set[int] = set()
        kill_set: Set[int] = set()
        access_set: Set[int] = set()
        work = 0
        for s in wing_summaries:
            gen_set |= s.gen
            kill_set |= s.kill
            access_set |= s.access
            work += len(s.gen) + len(s.kill) + len(s.access)
        self.block_work[butterfly.body.block_id]["meet"] += work
        return WingSummary(gen=gen_set, kill=kill_set, access=access_set)

    # -- step 3: isolation check -------------------------------------------

    def check_body(
        self, butterfly: Butterfly, side_in: WingMask
    ) -> Tuple[int, int]:
        """Pure isolation intersections over interned bitsets: racing
        state changes and accesses racing a state change."""
        s = self._summaries[butterfly.body.block_id]
        f = s.facts
        wing_changed = side_in.gen | side_in.kill
        changed = f.all_gen_mask | f.killed_mask
        return changed & wing_changed, s.access_mask & wing_changed

    def commit_check(
        self, butterfly: Butterfly, side_in: WingMask, result: Tuple[int, int]
    ) -> None:
        change_hits, access_hits = result
        body = butterfly.body
        block_id = body.block_id
        s = self._summaries[block_id]
        errors = self.errors
        decode = self._loc_bits.decode
        rec = self.recorder
        emit = rec.enabled
        flags = 0
        # Sorted location order: decode() yields interning order, which
        # depends on which instruction touched a location first; sorting
        # makes the report order a function of the trace alone, so the
        # optimized and reference paths are bit-identical (the fuzz
        # harness's optref mode diffs them report-for-report).
        for loc in sorted(decode(change_hits)):
            if errors.record(
                ErrorKind.UNSAFE_ISOLATION,
                loc,
                ref=body.global_ref(s.first_change[loc]),
                block=block_id,
                detail=_DETAIL_CHANGE_RACE,
            ):
                flags += 1
                if emit:
                    self._emit_isolation_event(
                        butterfly, loc, s.first_change[loc]
                    )
        for loc in sorted(decode(access_hits)):
            if errors.record(
                ErrorKind.UNSAFE_ISOLATION,
                loc,
                ref=body.global_ref(s.first_access[loc]),
                block=block_id,
                detail=_DETAIL_ACCESS_RACE,
            ):
                flags += 1
                if emit:
                    self._emit_isolation_event(
                        butterfly, loc, s.first_access[loc]
                    )
        work = self.block_work[block_id]
        work["flags"] += flags
        work["iso"] += popcount(
            s.facts.all_gen_mask | s.facts.killed_mask
        ) + popcount(s.access_mask)
        work["meet"] += side_in.meet_work

    def _emit_first_pass_event(
        self, block: Block, kind: ErrorKind, loc: int, i: int
    ) -> None:
        """Provenance event for a freshly flagged first-pass error
        (reference mode; optimized mode emits from :meth:`commit_scan`)."""
        lid, tid = block.block_id
        self.recorder.event(
            "error",
            kind=kind.value,
            location=loc,
            epoch=lid,
            thread=tid,
            index=i,
            ref=list(block.global_ref(i)),
            stage="first",
            wing=None,
        )

    def _wing_with_change(
        self, butterfly: Butterfly, loc: int
    ) -> Optional[BlockId]:
        """Provenance: the first wing block whose GEN/KILL involves
        ``loc`` -- the concurrent state change the isolation flag is
        blaming.  Set-based so optimized and reference mode attribute
        identically."""
        for wing in butterfly.wings:
            s = self._summaries.get(wing.block_id)
            if s is None:
                continue
            facts = s.facts
            if loc in facts.all_gen or loc in facts.killed_vars:
                return wing.block_id
        return None

    def _emit_isolation_event(
        self, butterfly: Butterfly, loc: int, offset: int
    ) -> None:
        body = butterfly.body
        wing = self._wing_with_change(butterfly, loc)
        self.recorder.event(
            "error",
            kind=ErrorKind.UNSAFE_ISOLATION.value,
            location=loc,
            epoch=body.block_id[0],
            thread=body.block_id[1],
            index=offset,
            ref=list(body.global_ref(offset)),
            stage="second",
            wing=list(wing) if wing is not None else None,
        )

    def second_pass(self, butterfly: Butterfly, side_in: Any) -> None:
        """Flag every location where the body's allocation-state changes
        collide with concurrent wing operations (and vice versa for the
        body's accesses against wing state changes)."""
        if self.optimized:
            super().second_pass(butterfly, side_in)
            return
        self._second_pass_reference(butterfly, side_in)

    def _second_pass_reference(
        self, butterfly: Butterfly, side_in: WingSummary
    ) -> None:
        body = butterfly.body
        s = self._summaries[body.block_id]
        flags_before = len(self.errors)
        emit = self.recorder.enabled
        changed = s.gen | s.kill
        wing_changed = side_in.changed
        # Sorted location order, matching the optimized path: raw set
        # intersection order is hash-dependent, and a multi-location
        # extent would flag its locations in an arbitrary order.
        # (s.GEN U s.KILL) n (S.GEN U S.KILL): racing state changes.
        for loc in sorted(changed & wing_changed):
            if self.errors.flag(
                ErrorReport(
                    ErrorKind.UNSAFE_ISOLATION,
                    loc,
                    ref=body.global_ref(s.first_change[loc]),
                    block=body.block_id,
                    detail=_DETAIL_CHANGE_RACE,
                )
            ) and emit:
                self._emit_isolation_event(
                    butterfly, loc, s.first_change[loc]
                )
        # s.ACCESS n (S.GEN U S.KILL): access during a concurrent change.
        for loc in sorted(s.access & wing_changed):
            if self.errors.flag(
                ErrorReport(
                    ErrorKind.UNSAFE_ISOLATION,
                    loc,
                    ref=body.global_ref(s.first_access[loc]),
                    block=body.block_id,
                    detail=_DETAIL_ACCESS_RACE,
                )
            ) and emit:
                self._emit_isolation_event(
                    butterfly, loc, s.first_access[loc]
                )
        # S.ACCESS n (s.GEN U s.KILL) is caught symmetrically when each
        # wing block is processed as its own butterfly's body (the wing
        # relation is symmetric), so flagging it here would only
        # duplicate reports.
        work = self.block_work[body.block_id]
        work["flags"] += len(self.errors) - flags_before
        work["iso"] += len(changed) + len(s.access)

    # -- step 4: epoch summary and SOS update --------------------------------

    def epoch_update(
        self, lid: int, summaries: Dict[BlockId, AddrSummary]
    ) -> None:
        """Reaching-expressions epoch rules with allocation elements:
        ``KILL_l`` is any block-level kill; ``GEN_l`` keeps allocations
        every other thread either window-exposes or never frees."""
        num_threads = len(summaries)
        gen_l: Set[int] = set()
        for (l, t), s in summaries.items():
            for loc in s.facts.gen:
                if self._epoch_gen_holds(loc, lid, t, num_threads):
                    gen_l.add(loc)

        kill_union: Set[int] = set()
        for s in summaries.values():
            for loc in s.facts.killed_vars:
                if s.facts.last_event.get(loc, "kill") == "kill":
                    kill_union.add(loc)

        self.sos.advance(lid, gen_l, lambda loc: loc in kill_union)
        self._evict(lid - 1)

    def evict_history(self, before: int) -> None:
        self.sos.evict(before)

    # -- helpers ----------------------------------------------------------------

    def _facts(self, lid: int, tid: int) -> Optional[BlockFacts]:
        s = self._summaries.get((lid, tid))
        return s.facts if s is not None else None

    def _kills(self, facts: BlockFacts, loc: int) -> bool:
        state = facts.last_event.get(loc)
        if state is not None:
            return state == "kill"
        return loc in facts.killed_vars

    def _epoch_gen_holds(
        self, loc: int, lid: int, gen_thread: int, num_threads: int
    ) -> bool:
        for t in range(num_threads):
            if t == gen_thread:
                continue
            prev = self._facts(lid - 1, t) if lid >= 1 else None
            cur = self._facts(lid, t)
            assert cur is not None
            window_exposed = loc in cur.gen or (
                prev is not None
                and loc in prev.gen
                and not self._kills(cur, loc)
            )
            never_kills = not self._kills(cur, loc) and (
                prev is None or not self._kills(prev, loc)
            )
            if not (window_exposed or never_kills):
                return False
        return True

    def _compute_lsos(self, lid: int, tid: int) -> Set[int]:
        """Reaching-expressions LSOS (Section 5.2.1): head allocations
        survive unless a sibling freed the location in epoch ``l-2``;
        SOS entries survive unless the head freed them."""
        sos = self.sos.get(lid)
        head = self._facts(lid - 1, tid) if lid >= 1 else None
        if head is None:
            return set(sos)
        lsos: Set[int] = set()
        for loc in head.gen:
            if not self._sibling_killed(loc, lid - 2, tid):
                lsos.add(loc)
        for loc in sos:
            if not self._kills(head, loc):
                lsos.add(loc)
        return lsos

    def _sibling_killed(self, loc: int, lid: int, tid: int) -> bool:
        if lid < 0:
            return False
        for (l, t), s in self._summaries.items():
            if l == lid and t != tid and self._kills(s.facts, loc):
                return True
        return False

    def _evict(self, older_than: int) -> None:
        for key in [k for k in self._summaries if k[0] < older_than]:
            del self._summaries[key]
