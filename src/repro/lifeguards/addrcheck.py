"""Butterfly AddrCheck (paper Section 6.1).

AddrCheck instantiates reaching expressions with allocation as GEN and
deallocation as KILL: a location "reaches" a point iff it is allocated
along every valid ordering.  The checking algorithm has two parts:

1. **First pass (thread-local)**: every access or free must find its
   location allocated in the incrementally updated ``LSOS_{l,t,i}``;
   every malloc must find it deallocated.
2. **Second pass (isolation)**: using the wing summaries
   ``S = (GEN, KILL, ACCESS)``, any overlap between the body's
   allocation-state changes and the wings' operations -- or between the
   body's accesses and the wings' state changes -- is a race on the
   metadata state and is flagged (Figure 9's non-isolated allocation).

Zero false negatives (Theorem 6.1) holds because the valid orderings
considered are a superset of real machine orderings; the price is false
positives near epoch boundaries, which Figure 13 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.dataflow import BlockFacts
from repro.core.epoch import Block, BlockId
from repro.core.framework import ButterflyAnalysis
from repro.core.state import SOSHistory
from repro.core.window import Butterfly
from repro.lifeguards.reports import ErrorKind, ErrorLog, ErrorReport
from repro.trace.events import Instr, Op


@dataclass
class AddrSummary:
    """Per-block summary ``s_{l,t} = (GEN, KILL, ACCESS)``.

    ``facts`` carries the allocation-domain block facts (downward-exposed
    allocations, freed locations, last-event map) used by the SOS/LSOS
    rules; ``gen``/``kill``/``access`` are the side-out views (union over
    instructions) used by the isolation check.
    """

    facts: BlockFacts
    access: Set[int] = field(default_factory=set)
    first_change: Dict[int, int] = field(default_factory=dict)
    first_access: Dict[int, int] = field(default_factory=dict)

    @property
    def gen(self) -> Set[int]:
        """All locations allocated anywhere in the block."""
        return self.facts.all_gen

    @property
    def kill(self) -> Set[int]:
        """All locations freed anywhere in the block."""
        return self.facts.killed_vars

    @property
    def block_id(self) -> BlockId:
        return self.facts.block_id


@dataclass
class WingSummary:
    """The meet of the wings: elementwise union of their summaries."""

    gen: Set[int]
    kill: Set[int]
    access: Set[int]

    @property
    def changed(self) -> Set[int]:
        return self.gen | self.kill


class ButterflyAddrCheck(ButterflyAnalysis[AddrSummary, WingSummary]):
    """The parallel, heap-only AddrCheck of the paper's evaluation.

    Parameters
    ----------
    initially_allocated:
        Locations treated as allocated from the start (e.g. globals);
        the paper's heap-only lifeguard starts empty.
    use_idempotent_filter:
        Model LBA's idempotent filtering (Section 7.1): repeated checks
        of a location within one block are skipped, and the filter is
        conceptually flushed at every epoch boundary (filtering never
        crosses epochs).  An allocation-state change re-arms the check.
    """

    def __init__(
        self,
        initially_allocated: Iterable[int] = (),
        use_idempotent_filter: bool = True,
    ) -> None:
        self.sos = SOSHistory()
        base = frozenset(initially_allocated)
        if base:
            self.sos._states[0] = base
            self.sos._states[1] = base
        self.use_idempotent_filter = use_idempotent_filter
        self.errors = ErrorLog()
        self._summaries: Dict[BlockId, AddrSummary] = {}
        #: Per-block work counters consumed by the timing substrate:
        #: ``events`` (log records dispatched), ``checks`` (metadata
        #: checks after idempotent filtering), ``accesses`` (pre-filter
        #: location accesses), ``flags`` (errors raised), ``meet`` and
        #: ``iso`` (set-operation element counts in steps 2-3).  The
        #: per-epoch maxima of these drive the barrier-synchronized
        #: lifeguard timing model.
        self.block_work: Dict[BlockId, Dict[str, int]] = {}
        self.recorded_accesses = 0

    # -- step 1: local pass with LSOS checks ------------------------------

    def first_pass(self, block: Block) -> AddrSummary:
        lid, tid = block.block_id
        running = self._compute_lsos(lid, tid)
        facts = BlockFacts(block_id=block.block_id)
        summary = AddrSummary(facts=facts)
        gen = facts.gen
        all_gen = facts.all_gen
        killed_vars = facts.killed_vars
        last_event = facts.last_event
        access = summary.access
        first_change = summary.first_change
        first_access = summary.first_access
        # Idempotent-filter state: one filter per thread, flushed at
        # every heartbeat -- i.e. per-block scope.
        checked: Set[int] = set()
        events = 0
        checks = 0
        accesses = 0
        allocs = 0
        flags_before = len(self.errors)

        for i, instr in enumerate(block.instrs):
            events += 1
            op = instr.op
            if op is Op.MALLOC:
                for loc in instr.extent:
                    allocs += 1
                    checked.discard(loc)
                    if loc in running:
                        self.errors.flag(
                            ErrorReport(
                                ErrorKind.MALLOC_ALLOCATED,
                                loc,
                                ref=block.global_ref(i),
                                detail="malloc of location believed allocated",
                            )
                        )
                    running.add(loc)
                    gen.add(loc)
                    all_gen.add(loc)
                    last_event[loc] = "gen"
                    first_change.setdefault(loc, i)
            elif op is Op.FREE:
                for loc in instr.extent:
                    allocs += 1
                    checked.discard(loc)
                    if loc not in running:
                        self.errors.flag(
                            ErrorReport(
                                ErrorKind.FREE_UNALLOCATED,
                                loc,
                                ref=block.global_ref(i),
                                detail="free of location believed unallocated",
                            )
                        )
                    running.discard(loc)
                    killed_vars.add(loc)
                    gen.discard(loc)
                    last_event[loc] = "kill"
                    first_change.setdefault(loc, i)
            else:
                for loc in instr.accessed:
                    accesses += 1
                    self.recorded_accesses += 1
                    access.add(loc)
                    first_access.setdefault(loc, i)
                    if self.use_idempotent_filter and loc in checked:
                        continue
                    checked.add(loc)
                    checks += 1
                    if loc not in running:
                        self.errors.flag(
                            ErrorReport(
                                ErrorKind.ACCESS_UNALLOCATED,
                                loc,
                                ref=block.global_ref(i),
                                detail="access to location believed unallocated",
                            )
                        )
        self.block_work[block.block_id] = {
            "events": events,
            "checks": checks,
            "accesses": accesses,
            "allocs": allocs,
            "flags": len(self.errors) - flags_before,
            "meet": 0,
            "iso": 0,
        }
        self._summaries[block.block_id] = summary
        return summary

    # -- step 2: meet (elementwise union of wing summaries) ----------------

    def meet(
        self, butterfly: Butterfly, wing_summaries: List[AddrSummary]
    ) -> WingSummary:
        gen: Set[int] = set()
        kill: Set[int] = set()
        access: Set[int] = set()
        work = 0
        for s in wing_summaries:
            gen |= s.gen
            kill |= s.kill
            access |= s.access
            work += len(s.gen) + len(s.kill) + len(s.access)
        self.block_work[butterfly.body.block_id]["meet"] += work
        return WingSummary(gen=gen, kill=kill, access=access)

    # -- step 3: isolation check -------------------------------------------

    def second_pass(self, butterfly: Butterfly, side_in: WingSummary) -> None:
        """Flag every location where the body's allocation-state changes
        collide with concurrent wing operations (and vice versa for the
        body's accesses against wing state changes)."""
        body = butterfly.body
        s = self._summaries[body.block_id]
        flags_before = len(self.errors)
        changed = s.gen | s.kill
        wing_changed = side_in.changed
        # (s.GEN U s.KILL) n (S.GEN U S.KILL): racing state changes.
        for loc in changed & wing_changed:
            self.errors.flag(
                ErrorReport(
                    ErrorKind.UNSAFE_ISOLATION,
                    loc,
                    ref=body.global_ref(s.first_change[loc]),
                    block=body.block_id,
                    detail="allocation-state change concurrent with another",
                )
            )
        # s.ACCESS n (S.GEN U S.KILL): access during a concurrent change.
        for loc in s.access & wing_changed:
            self.errors.flag(
                ErrorReport(
                    ErrorKind.UNSAFE_ISOLATION,
                    loc,
                    ref=body.global_ref(s.first_access[loc]),
                    block=body.block_id,
                    detail="access concurrent with an allocation-state change",
                )
            )
        # S.ACCESS n (s.GEN U s.KILL) is caught symmetrically when each
        # wing block is processed as its own butterfly's body (the wing
        # relation is symmetric), so flagging it here would only
        # duplicate reports.
        work = self.block_work[body.block_id]
        work["flags"] += len(self.errors) - flags_before
        work["iso"] += len(changed) + len(s.access)

    # -- step 4: epoch summary and SOS update --------------------------------

    def epoch_update(
        self, lid: int, summaries: Dict[BlockId, AddrSummary]
    ) -> None:
        """Reaching-expressions epoch rules with allocation elements:
        ``KILL_l`` is any block-level kill; ``GEN_l`` keeps allocations
        every other thread either window-exposes or never frees."""
        num_threads = len(summaries)
        gen_l: Set[int] = set()
        for (l, t), s in summaries.items():
            for loc in s.facts.gen:
                if self._epoch_gen_holds(loc, lid, t, num_threads):
                    gen_l.add(loc)

        kill_union: Set[int] = set()
        for s in summaries.values():
            for loc in s.facts.killed_vars:
                if s.facts.last_event.get(loc, "kill") == "kill":
                    kill_union.add(loc)

        self.sos.advance(lid, gen_l, lambda loc: loc in kill_union)
        self._evict(lid - 1)

    # -- helpers ----------------------------------------------------------------

    def _facts(self, lid: int, tid: int) -> Optional[BlockFacts]:
        s = self._summaries.get((lid, tid))
        return s.facts if s is not None else None

    def _kills(self, facts: BlockFacts, loc: int) -> bool:
        state = facts.last_event.get(loc)
        if state is not None:
            return state == "kill"
        return loc in facts.killed_vars

    def _epoch_gen_holds(
        self, loc: int, lid: int, gen_thread: int, num_threads: int
    ) -> bool:
        for t in range(num_threads):
            if t == gen_thread:
                continue
            prev = self._facts(lid - 1, t) if lid >= 1 else None
            cur = self._facts(lid, t)
            assert cur is not None
            window_exposed = loc in cur.gen or (
                prev is not None
                and loc in prev.gen
                and not self._kills(cur, loc)
            )
            never_kills = not self._kills(cur, loc) and (
                prev is None or not self._kills(prev, loc)
            )
            if not (window_exposed or never_kills):
                return False
        return True

    def _compute_lsos(self, lid: int, tid: int) -> Set[int]:
        """Reaching-expressions LSOS (Section 5.2.1): head allocations
        survive unless a sibling freed the location in epoch ``l-2``;
        SOS entries survive unless the head freed them."""
        sos = self.sos.get(lid)
        head = self._facts(lid - 1, tid) if lid >= 1 else None
        if head is None:
            return set(sos)
        lsos: Set[int] = set()
        for loc in head.gen:
            if not self._sibling_killed(loc, lid - 2, tid):
                lsos.add(loc)
        for loc in sos:
            if not self._kills(head, loc):
                lsos.add(loc)
        return lsos

    def _sibling_killed(self, loc: int, lid: int, tid: int) -> bool:
        if lid < 0:
            return False
        for (l, t), s in self._summaries.items():
            if l == lid and t != tid and self._kills(s.facts, loc):
                return True
        return False

    def _evict(self, older_than: int) -> None:
        for key in [k for k in self._summaries if k[0] < older_than]:
            del self._summaries[key]
