"""Butterfly conflict (race) detection.

The paper argues butterfly analysis applies to "a wide variety of
interesting dynamic program monitoring tools" beyond AddrCheck and
TaintCheck, citing race detectors among the lifeguards sharing the
generate/propagate structure (Section 5).  This module is that
demonstration: a happens-before-style conflict detector that needs *no*
synchronization tracking at all -- the butterfly window is the
happens-before relation.

Two accesses conflict when they touch the same location, at least one
is a write, and they are *potentially concurrent* -- i.e. they sit in
wing-adjacent blocks of different threads.  Accesses two or more epochs
apart are strictly ordered by construction and can never race.

As with the other lifeguards this is conservative: every pair of
accesses that could overlap in some valid ordering is flagged (no false
negatives with respect to the window model), while a program whose
sharing is always separated by two epochs -- e.g. phase-disciplined
SPMD code with the heartbeat slower than its barriers -- stays silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.bitset import BitInterner
from repro.core.epoch import Block, BlockId
from repro.core.framework import ButterflyAnalysis
from repro.core.window import Butterfly
from repro.lifeguards.reports import ErrorLog, ErrorReport, ErrorKind
from repro.trace.events import Instr, Op


@dataclass
class AccessSummary:
    """Per-block read/write footprints with first-occurrence offsets.

    ``reads_mask``/``writes_mask`` are interned-bitset encodings filled
    in at commit time so the wing meet and conflict intersections run as
    bitwise OR/AND."""

    block_id: BlockId
    reads: Set[int] = field(default_factory=set)
    writes: Set[int] = field(default_factory=set)
    first_read: Dict[int, int] = field(default_factory=dict)
    first_write: Dict[int, int] = field(default_factory=dict)
    reads_mask: Optional[int] = None
    writes_mask: Optional[int] = None


@dataclass
class WingAccesses:
    """Union of the wings' footprints, as interned bitsets."""

    reads: int
    writes: int


@dataclass(frozen=True)
class RaceScanner:
    """Picklable first-pass work unit: one block's access footprints."""

    def __call__(self, block: Block, context: Any) -> AccessSummary:
        summary = AccessSummary(block_id=block.block_id)
        for i, instr in enumerate(block.instrs):
            op = instr.op
            if op in (Op.MALLOC, Op.FREE):
                # Allocation-state changes behave as writes to the
                # covered locations for conflict purposes.
                for loc in instr.extent:
                    summary.writes.add(loc)
                    summary.first_write.setdefault(loc, i)
                continue
            for loc in instr.srcs:
                summary.reads.add(loc)
                summary.first_read.setdefault(loc, i)
            if instr.dst is not None and op in (
                Op.WRITE, Op.ASSIGN, Op.TAINT, Op.UNTAINT
            ):
                summary.writes.add(instr.dst)
                summary.first_write.setdefault(instr.dst, i)
        return summary


@dataclass(frozen=True)
class RaceReport:
    """One potential conflict: location plus the body-side access."""

    location: int
    body_ref: tuple
    kind: str  # "write-write" or "read-write"


class ButterflyRaceCheck(ButterflyAnalysis[AccessSummary, WingAccesses]):
    """Conflict detection over the butterfly window.

    ``races`` collects :class:`RaceReport` entries; ``errors`` mirrors
    them as standard reports (kind ``UNSAFE_ISOLATION`` -- a race *is*
    a metadata-free isolation violation) for uniform accounting.
    """

    parallel_first_pass = True
    parallel_second_pass = True

    def __init__(self) -> None:
        self.errors = ErrorLog()
        self.races: List[RaceReport] = []
        self._summaries: Dict[BlockId, AccessSummary] = {}
        self._loc_bits = BitInterner()

    # -- step 1 ----------------------------------------------------------

    def make_scanner(self) -> RaceScanner:
        return RaceScanner()

    def commit_scan(self, block: Block, scan: AccessSummary) -> AccessSummary:
        loc_bits = self._loc_bits
        scan.reads_mask = loc_bits.mask(scan.reads)
        scan.writes_mask = loc_bits.mask(scan.writes)
        self._summaries[block.block_id] = scan
        return scan

    # -- step 2 ------------------------------------------------------------

    def meet(
        self, butterfly: Butterfly, wing_summaries: List[AccessSummary]
    ) -> WingAccesses:
        reads = 0
        writes = 0
        for s in wing_summaries:
            reads |= s.reads_mask
            writes |= s.writes_mask
        return WingAccesses(reads=reads, writes=writes)

    # -- step 3 --------------------------------------------------------------

    def check_body(
        self, butterfly: Butterfly, side_in: WingAccesses
    ) -> Tuple[int, int, int]:
        """Conflict intersections as bitwise ANDs: write-write, body
        write vs wing read, body read vs wing write."""
        s = self._summaries[butterfly.body.block_id]
        return (
            s.writes_mask & side_in.writes,
            s.writes_mask & side_in.reads,
            s.reads_mask & side_in.writes,
        )

    def commit_check(
        self,
        butterfly: Butterfly,
        side_in: WingAccesses,
        result: Tuple[int, int, int],
    ) -> None:
        ww, wr, rw = result
        body = butterfly.body
        s = self._summaries[body.block_id]
        decode = self._loc_bits.decode
        for loc in decode(ww):
            self._flag(
                butterfly, loc, s.first_write[loc], "write-write", "writes"
            )
        for loc in decode(wr):
            self._flag(
                butterfly, loc, s.first_write[loc], "read-write", "reads"
            )
        for loc in decode(rw):
            self._flag(
                butterfly, loc, s.first_read[loc], "read-write", "writes"
            )

    def _flag(
        self,
        butterfly: Butterfly,
        loc: int,
        offset: int,
        kind: str,
        wing_side: str,
    ) -> None:
        body = butterfly.body
        ref = body.global_ref(offset)
        if self.errors.record(
            ErrorKind.UNSAFE_ISOLATION,
            loc,
            ref=ref,
            block=body.block_id,
            detail=f"potential {kind} conflict",
        ):
            self.races.append(
                RaceReport(location=loc, body_ref=ref, kind=kind)
            )
            rec = self.recorder
            if rec.enabled:
                wing = self._wing_touching(butterfly, loc, wing_side)
                rec.event(
                    "error",
                    kind=ErrorKind.UNSAFE_ISOLATION.value,
                    location=loc,
                    epoch=body.block_id[0],
                    thread=body.block_id[1],
                    index=offset,
                    ref=list(ref),
                    stage="second",
                    conflict=kind,
                    wing=list(wing) if wing is not None else None,
                )

    def _wing_touching(
        self, butterfly: Butterfly, loc: int, side: str
    ) -> Optional[BlockId]:
        """Provenance: the first wing whose ``side`` footprint (reads or
        writes) involves ``loc`` -- the access the conflict is blamed
        on."""
        for wing in butterfly.wings:
            s = self._summaries.get(wing.block_id)
            if s is not None and loc in getattr(s, side):
                return wing.block_id
        return None

    def emit_metrics(self, recorder: Any) -> None:
        """End-of-run gauges: intern-table pressure and conflict count."""
        for key, value in self._loc_bits.stats().items():
            recorder.gauge(f"intern.{key}", value)
        recorder.gauge("racecheck.races", len(self.races))

    # -- step 4 --------------------------------------------------------------

    def epoch_update(self, lid: int, summaries: Dict[BlockId, AccessSummary]) -> None:
        # Conflict detection is stateless beyond the sliding window.
        stale = lid - 1
        for key in [k for k in self._summaries if k[0] < stale]:
            del self._summaries[key]
