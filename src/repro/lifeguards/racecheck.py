"""Butterfly conflict (race) detection.

The paper argues butterfly analysis applies to "a wide variety of
interesting dynamic program monitoring tools" beyond AddrCheck and
TaintCheck, citing race detectors among the lifeguards sharing the
generate/propagate structure (Section 5).  This module is that
demonstration: a happens-before-style conflict detector that needs *no*
synchronization tracking at all -- the butterfly window is the
happens-before relation.

Two accesses conflict when they touch the same location, at least one
is a write, and they are *potentially concurrent* -- i.e. they sit in
wing-adjacent blocks of different threads.  Accesses two or more epochs
apart are strictly ordered by construction and can never race.

As with the other lifeguards this is conservative: every pair of
accesses that could overlap in some valid ordering is flagged (no false
negatives with respect to the window model), while a program whose
sharing is always separated by two epochs -- e.g. phase-disciplined
SPMD code with the heartbeat slower than its barriers -- stays silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.core.epoch import Block, BlockId
from repro.core.framework import ButterflyAnalysis
from repro.core.window import Butterfly
from repro.lifeguards.reports import ErrorLog, ErrorReport, ErrorKind
from repro.trace.events import Instr, Op


@dataclass
class AccessSummary:
    """Per-block read/write footprints with first-occurrence offsets."""

    block_id: BlockId
    reads: Set[int] = field(default_factory=set)
    writes: Set[int] = field(default_factory=set)
    first_read: Dict[int, int] = field(default_factory=dict)
    first_write: Dict[int, int] = field(default_factory=dict)


@dataclass
class WingAccesses:
    """Union of the wings' footprints."""

    reads: Set[int]
    writes: Set[int]


@dataclass(frozen=True)
class RaceReport:
    """One potential conflict: location plus the body-side access."""

    location: int
    body_ref: tuple
    kind: str  # "write-write" or "read-write"


class ButterflyRaceCheck(ButterflyAnalysis[AccessSummary, WingAccesses]):
    """Conflict detection over the butterfly window.

    ``races`` collects :class:`RaceReport` entries; ``errors`` mirrors
    them as standard reports (kind ``UNSAFE_ISOLATION`` -- a race *is*
    a metadata-free isolation violation) for uniform accounting.
    """

    def __init__(self) -> None:
        self.errors = ErrorLog()
        self.races: List[RaceReport] = []
        self._summaries: Dict[BlockId, AccessSummary] = {}

    # -- step 1 ----------------------------------------------------------

    def first_pass(self, block: Block) -> AccessSummary:
        summary = AccessSummary(block_id=block.block_id)
        for i, instr in enumerate(block.instrs):
            op = instr.op
            if op in (Op.MALLOC, Op.FREE):
                # Allocation-state changes behave as writes to the
                # covered locations for conflict purposes.
                for loc in instr.extent:
                    summary.writes.add(loc)
                    summary.first_write.setdefault(loc, i)
                continue
            for loc in instr.srcs:
                summary.reads.add(loc)
                summary.first_read.setdefault(loc, i)
            if instr.dst is not None and op in (
                Op.WRITE, Op.ASSIGN, Op.TAINT, Op.UNTAINT
            ):
                summary.writes.add(instr.dst)
                summary.first_write.setdefault(instr.dst, i)
        self._summaries[block.block_id] = summary
        return summary

    # -- step 2 ------------------------------------------------------------

    def meet(
        self, butterfly: Butterfly, wing_summaries: List[AccessSummary]
    ) -> WingAccesses:
        reads: Set[int] = set()
        writes: Set[int] = set()
        for s in wing_summaries:
            reads |= s.reads
            writes |= s.writes
        return WingAccesses(reads=reads, writes=writes)

    # -- step 3 --------------------------------------------------------------

    def second_pass(self, butterfly: Butterfly, side_in: WingAccesses) -> None:
        body = butterfly.body
        s = self._summaries[body.block_id]
        # Body writes vs. wing writes: write-write conflicts.
        for loc in s.writes & side_in.writes:
            self._flag(body, loc, s.first_write[loc], "write-write")
        # Body writes vs. wing reads, and body reads vs. wing writes.
        for loc in s.writes & side_in.reads:
            self._flag(body, loc, s.first_write[loc], "read-write")
        for loc in s.reads & side_in.writes:
            self._flag(body, loc, s.first_read[loc], "read-write")

    def _flag(self, body: Block, loc: int, offset: int, kind: str) -> None:
        ref = body.global_ref(offset)
        if self.errors.flag(
            ErrorReport(
                ErrorKind.UNSAFE_ISOLATION,
                loc,
                ref=ref,
                block=body.block_id,
                detail=f"potential {kind} conflict",
            )
        ):
            self.races.append(
                RaceReport(location=loc, body_ref=ref, kind=kind)
            )

    # -- step 4 --------------------------------------------------------------

    def epoch_update(self, lid: int, summaries: Dict[BlockId, AccessSummary]) -> None:
        # Conflict detection is stateless beyond the sliding window.
        stale = lid - 1
        for key in [k for k in self._summaries if k[0] < stale]:
            del self._summaries[key]
