"""Error reports and false-positive accounting.

Butterfly analysis trades precision for concurrency: every true error is
flagged (Theorems 6.1/6.2) but some safe events are flagged too.  The
harness quantifies that trade the way Figure 13 does -- flagged events
that the sequential lifeguard (run over the recorded ground-truth
interleaving) does not report are false positives, normalized by the
number of memory-accessing events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Set, Tuple

from repro.trace.program import GlobalRef


class ErrorKind(enum.Enum):
    """Canonical error vocabulary shared by sequential and butterfly
    lifeguards so reports are comparable across implementations."""

    #: AddrCheck: load/store/jump touched unallocated memory.
    ACCESS_UNALLOCATED = "access-unallocated"
    #: AddrCheck: free of memory that is not allocated (double free).
    FREE_UNALLOCATED = "free-unallocated"
    #: AddrCheck: malloc of memory that is already allocated.
    MALLOC_ALLOCATED = "malloc-allocated"
    #: AddrCheck (butterfly only): an allocation-state change was not
    #: isolated from potentially concurrent operations -- a race on the
    #: metadata state (Section 6.1).
    UNSAFE_ISOLATION = "unsafe-isolation"
    #: TaintCheck: tainted data used in a critical way (jump target).
    TAINTED_JUMP = "tainted-jump"


@dataclass(frozen=True)
class ErrorReport:
    """One flagged event.

    ``ref`` is the global ``(thread, trace index)`` of the flagged
    instruction when the error is instruction-precise; block-granularity
    errors (isolation violations) carry the block id in ``block`` and a
    representative ``ref`` of the first offending instruction.
    """

    kind: ErrorKind
    location: int
    ref: Optional[GlobalRef] = None
    block: Optional[Tuple[int, int]] = None
    detail: str = ""

    def identity(self) -> Tuple:
        """Dedup/matching key: where and what, ignoring prose."""
        return (self.kind, self.location, self.ref, self.block)


class ErrorLog:
    """Collects reports with deduplication.

    Two write paths share one log: :meth:`flag` takes a constructed
    :class:`ErrorReport`, while :meth:`record` takes the raw fields and
    defers constructing the report object until the log is read.  The
    raw path exists because report construction dominates hot lifeguard
    loops on error-dense workloads; reads see identical reports either
    way.
    """

    def __init__(self) -> None:
        #: Entries are ErrorReport objects or raw (kind, location, ref,
        #: block, detail) tuples; tuples are materialized lazily.
        self._entries: List[Any] = []
        self._seen: Set[Tuple] = set()
        self._has_raw = False

    def flag(self, report: ErrorReport) -> bool:
        """Record a report; returns False if an identical one exists."""
        key = report.identity()
        if key in self._seen:
            return False
        self._seen.add(key)
        self._entries.append(report)
        return True

    def record(
        self,
        kind: ErrorKind,
        location: int,
        ref: Optional[GlobalRef] = None,
        block: Optional[Tuple[int, int]] = None,
        detail: str = "",
    ) -> bool:
        """Deduplicating fast path: append raw fields, materialize later."""
        key = (kind, location, ref, block)
        seen = self._seen
        if key in seen:
            return False
        seen.add(key)
        self._entries.append((kind, location, ref, block, detail))
        self._has_raw = True
        return True

    @property
    def reports(self) -> List[ErrorReport]:
        if self._has_raw:
            entries = self._entries
            for i, e in enumerate(entries):
                if type(e) is tuple:
                    entries[i] = ErrorReport(
                        e[0], e[1], ref=e[2], block=e[3], detail=e[4]
                    )
            self._has_raw = False
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self.reports)

    def by_kind(self, kind: ErrorKind) -> List[ErrorReport]:
        return [r for r in self.reports if r.kind == kind]

    def flagged_events(self) -> Set[Tuple[GlobalRef, int]]:
        """The set of ``(instruction ref, location)`` pairs flagged."""
        return {
            (r.ref, r.location) for r in self.reports if r.ref is not None
        }


@dataclass
class PrecisionReport:
    """False-positive accounting for one butterfly run vs. ground truth."""

    true_errors: int
    flagged: int
    true_positives: int
    false_positives: int
    false_negatives: int
    memory_ops: int

    @property
    def false_positive_rate(self) -> float:
        """False positives as a fraction of memory accesses (Figure 13)."""
        if self.memory_ops == 0:
            return 0.0
        return self.false_positives / self.memory_ops


def compare_reports(
    truth: Iterable[ErrorReport],
    flagged: Iterable[ErrorReport],
    memory_ops: int,
) -> PrecisionReport:
    """Match butterfly reports against sequential ground truth.

    A flagged event counts as a true positive when the ground truth
    contains an error at the same ``(ref, location)``; block-granularity
    flags match any truth event on the same location within the block's
    instruction range (conservative credit).  Everything else flagged is
    a false positive.  False negatives -- truth events never flagged --
    must be zero by Theorems 6.1/6.2 and the suite asserts exactly that.
    """
    truth_events: Set[Tuple[GlobalRef, int]] = set()
    for r in truth:
        if r.ref is not None:
            truth_events.add((r.ref, r.location))
    truth_locs = {loc for (_, loc) in truth_events}

    tp = 0
    fp = 0
    matched: Set[Tuple[GlobalRef, int]] = set()
    for r in flagged:
        if r.ref is not None and (r.ref, r.location) in truth_events:
            tp += 1
            matched.add((r.ref, r.location))
        elif r.block is not None and r.location in truth_locs:
            tp += 1
        else:
            fp += 1
    fn = len(truth_events - matched)
    # Any truth event whose location was flagged at block granularity is
    # still "caught" in the paper's sense; remove those from fn.
    flagged_block_locs = {
        r.location for r in flagged if r.block is not None
    }
    flagged_instr = {
        (r.ref, r.location) for r in flagged if r.ref is not None
    }
    fn = sum(
        1
        for ev in truth_events
        if ev not in flagged_instr and ev[1] not in flagged_block_locs
    )
    total_flagged = tp + fp
    return PrecisionReport(
        true_errors=len(truth_events),
        flagged=total_flagged,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        memory_ops=memory_ops,
    )
