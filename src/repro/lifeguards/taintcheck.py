"""Butterfly TaintCheck (paper Section 6.2).

TaintCheck extends reaching definitions with *inheritance*: an
instruction ``x := binop(a, b)`` may copy taint from locations whose
status the executing thread does not know.  The lifeguard's metadata are
transfer functions ``(x_{l,t,i} <- s)`` where ``s`` is bottom (tainted),
top (untainted), or a set of parent locations, SSA-numbered by dynamic
instruction site.

Checks resolve transfer functions against the three-epoch window via the
paper's Algorithm 1: parents are replaced by their defining rules until
bottom is reached (tainted) or the parent list drains (untainted).  Two
variants of the termination condition are provided:

- ``mode="sc"`` -- sequential consistency: each derivation chain keeps a
  per-thread site counter and a rule may only be used if it occurs
  strictly before the chain's previous rule from that thread;
- ``mode="relaxed"`` -- relaxed memory models: only self-replacement is
  disallowed (location-level cycle prevention), admitting any finite
  rule sequence.

To reduce false positives (Lemma 6.3), resolution runs in two phases:
phase 1 may use rules from epochs ``l-1`` and ``l``; phase 2 from ``l``
and ``l+1``, with phase-1 taint conclusions persisting as base facts.

The SOS/LSOS track *tainted addresses* (not transfer functions), updated
through ``LASTCHECK`` -- the resolution of each location's last write in
a block -- with the reaching-definitions update rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.core.columnar import (
    HAVE_NUMPY,
    NO_DST,
    OP_ASSIGN,
    OP_JUMP,
    OP_TAINT,
    OP_UNTAINT,
    OP_WRITE,
    np,
)
from repro.core.epoch import Block, BlockId, InstrId
from repro.core.framework import ButterflyAnalysis
from repro.core.state import SOSHistory
from repro.core.window import Butterfly
from repro.lifeguards.reports import ErrorKind, ErrorLog, ErrorReport
from repro.trace.events import Instr, Op

if HAVE_NUMPY:
    #: Events that produce taint metadata (transfer-function rules) or
    #: critical uses; everything else -- READ/MALLOC/FREE/NOP, the bulk
    #: of realistic traces -- is invisible to the taint first pass and
    #: the vector kernel skips it wholesale.
    _TAINT_EVENT_LUT = np.zeros(256, dtype=bool)
    _TAINT_EVENT_LUT[[OP_TAINT, OP_UNTAINT, OP_WRITE, OP_ASSIGN, OP_JUMP]] = (
        True
    )
else:  # pragma: no cover - REPRO_NO_NUMPY / no-numpy environments
    _TAINT_EVENT_LUT = None


class _Bottom:
    """Taint (the paper's bottom)."""

    def __repr__(self) -> str:  # pragma: no cover
        return "BOT"

    def __reduce__(self):
        # Preserve singleton identity across pickling (``is`` checks
        # everywhere) so summaries survive the processes backend.
        return (_load_bot, ())


class _Top:
    """Untaint (the paper's top)."""

    def __repr__(self) -> str:  # pragma: no cover
        return "TOP"

    def __reduce__(self):
        return (_load_top, ())


BOT = _Bottom()
TOP = _Top()


def _load_bot() -> "_Bottom":
    return BOT


def _load_top() -> "_Top":
    return TOP


def _strictly_before(site: "InstrId", bound: Optional["InstrId"]) -> bool:
    """Section 6.2's strictly-before: two epochs apart, or earlier in
    the same thread's program order."""
    if bound is None:
        return True
    sl, st, si = site
    bl, bt, bi = bound
    if sl <= bl - 2:
        return True
    if st == bt:
        return (sl, si) < (bl, bi)
    return False

#: A transfer-function right-hand side: taint, untaint, or parents.
Value = Union[_Bottom, _Top, Tuple[int, ...]]

#: One rule: (offset within block, destination location, value).
Rule = Tuple[int, int, Value]


@dataclass
class TaintSummary:
    """Per-block first-pass product: the block's transfer functions.

    ``rules``: per destination location, the (offset, value) writes in
    program order -- this is the GEN-SIDE-OUT analog (all of them are
    visible to the wings since interleaving is arbitrary).
    ``jumps``: critical uses to verify in the second pass.
    ``lastcheck``: filled during the second pass -- the resolved taint of
    each location's final write (the paper's LASTCHECK).
    """

    block_id: BlockId
    rules: Dict[int, List[Tuple[int, Value]]] = field(default_factory=dict)
    jumps: List[Tuple[int, int]] = field(default_factory=list)
    lastcheck: Dict[int, Value] = field(default_factory=dict)


def _value_of(instr: Instr) -> Optional[Tuple[int, Value]]:
    """Map an event to its transfer-function RHS, or None if it writes
    no taint metadata."""
    if instr.op is Op.TAINT:
        return instr.dst, BOT
    if instr.op in (Op.UNTAINT, Op.WRITE):
        if instr.dst is None:
            return None
        return instr.dst, TOP
    if instr.op is Op.ASSIGN:
        if not instr.srcs:
            return instr.dst, TOP
        return instr.dst, tuple(instr.srcs)
    return None


@dataclass(frozen=True)
class TaintScanner:
    """Picklable first-pass work unit: collect one block's transfer
    functions and critical uses.

    Two interchangeable kernels produce bit-identical
    :class:`TaintSummary` results:

    - the *object* kernel, one :class:`Instr` at a time (the reference
      semantics);
    - the *columnar* kernel, which selects the taint-relevant events
      (TAINT/UNTAINT/WRITE/ASSIGN/JUMP) with one LUT pass over the op
      column and CSR-gathers only their sources, never touching the
      READ-dominated remainder of the block.

    ``columnar=None`` picks automatically: the vector kernel runs when
    numpy is available and the block is already columnar-backed, so the
    auto path never pays an object->columnar conversion.
    """

    columnar: Optional[bool] = None

    def __call__(self, block: Block, context: object) -> TaintSummary:
        if HAVE_NUMPY and self.columnar is not False:
            if self.columnar or block.has_columns:
                return self._scan_columns(block)
        return self._scan_objects(block)

    def _scan_objects(self, block: Block) -> TaintSummary:
        summary = TaintSummary(block_id=block.block_id)
        for i, instr in enumerate(block.instrs):
            written = _value_of(instr)
            if written is not None:
                dst, value = written
                summary.rules.setdefault(dst, []).append((i, value))
            elif instr.op is Op.JUMP:
                summary.jumps.append((i, instr.srcs[0]))
        return summary

    def _scan_columns(self, block: Block) -> TaintSummary:
        """Vectorized scan: one boolean LUT pass finds the relevant
        events, a CSR gather pulls just their sources, and a Python
        loop over only those events rebuilds ``rules``/``jumps`` in
        exact stream order (dict insertion order included), so the
        result is bit-identical to :meth:`_scan_objects`."""
        cols = block.columns
        summary = TaintSummary(block_id=block.block_id)
        if cols.length == 0:
            return summary
        ops = np.asarray(cols.op)
        relevant = _TAINT_EVENT_LUT[ops]
        if not bool(relevant.any()):
            return summary
        idx = np.flatnonzero(relevant)
        # Gather only the selected events' fields; READ sources
        # dominate src_val on real traces and are never touched.
        sel_ops, sel_dst, bounds, sel_src = cols.gather(idx)
        rules = summary.rules
        jumps = summary.jumps
        for k, i in enumerate(idx.tolist()):
            op = sel_ops[k]
            if op == OP_JUMP:
                jumps.append((i, sel_src[bounds[k]]))
            elif op == OP_TAINT:
                rules.setdefault(sel_dst[k], []).append((i, BOT))
            elif op == OP_ASSIGN:
                s, e = bounds[k], bounds[k + 1]
                value = tuple(sel_src[s:e]) if e > s else TOP
                rules.setdefault(sel_dst[k], []).append((i, value))
            else:  # UNTAINT or WRITE stores trusted data
                dst = sel_dst[k]
                if dst != NO_DST:
                    rules.setdefault(dst, []).append((i, TOP))
        return summary


class ButterflyTaintCheck(ButterflyAnalysis[TaintSummary, List[TaintSummary]]):
    """The parallel TaintCheck lifeguard.

    Parameters
    ----------
    mode:
        ``"relaxed"`` (default) or ``"sc"`` -- the Check-algorithm
        termination condition (see module docstring).
    max_steps:
        Budget for one SC-mode derivation search; on exhaustion the
        check conservatively concludes tainted (never a false negative).
    two_phase:
        Enable the two-phase resolution of Section 6.2 (default).  With
        ``False``, checks resolve against the whole three-epoch window
        at once -- still sound, but it admits impossible epoch-spanning
        paths (the ablation of the 'Reducing False Positives'
        optimization).
    use_columnar_kernel:
        First-pass kernel selection: ``None`` (default) auto-selects
        the vectorized scan when numpy is available and the block is
        columnar-backed, ``True``/``False`` force a kernel (see
        :class:`TaintScanner`).
    """

    def __init__(
        self,
        mode: str = "relaxed",
        max_steps: int = 4096,
        two_phase: bool = True,
        use_columnar_kernel: Optional[bool] = None,
    ) -> None:
        if mode not in ("relaxed", "sc"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.max_steps = max_steps
        self.two_phase = two_phase
        self.use_columnar_kernel = use_columnar_kernel
        self.sos = SOSHistory()
        self.errors = ErrorLog()
        self._summaries: Dict[BlockId, TaintSummary] = {}
        self._blocks: Dict[BlockId, Block] = {}
        self.parallel_first_pass = True
        self.parallel_second_pass = True

    # -- step 1: collect transfer functions -------------------------------

    def make_scanner(self) -> TaintScanner:
        return TaintScanner(self.use_columnar_kernel)

    def commit_scan(self, block: Block, scan: TaintSummary) -> TaintSummary:
        self._summaries[block.block_id] = scan
        self._blocks[block.block_id] = block
        return scan

    # -- step 2: gather wing rule sets -------------------------------------

    def meet(
        self, butterfly: Butterfly, wing_summaries: List[TaintSummary]
    ) -> List[TaintSummary]:
        # Rules must stay attributed to their epoch for the two-phase
        # resolution, so the meet keeps the summaries distinct.
        return wing_summaries

    # -- step 3: resolve checks ----------------------------------------------

    def check_body(
        self, butterfly: Butterfly, side_in: List[TaintSummary]
    ) -> Tuple[Dict[int, Value], List[Tuple[int, int]]]:
        """Resolve the body's LASTCHECK values and critical uses.

        Pure stage: reads only wing rules (first-pass products) and the
        LSOS (derived from earlier epochs' committed checks), so bodies
        of one epoch may resolve concurrently.  Returns the resolved
        ``lastcheck`` map and the flagged ``(offset, location)`` jumps
        for :meth:`commit_check` to apply."""
        body = butterfly.body
        lid, tid = body.block_id
        summary = self._summaries[body.block_id]
        lsos = self._compute_lsos(lid, tid)

        if self.two_phase:
            phase1 = _RuleGraph(
                [s for s in side_in if s.block_id[0] <= lid], summary, self
            )
            phase2 = _RuleGraph(
                [s for s in side_in if s.block_id[0] >= lid], summary, self,
                fallback=phase1,
            )
        else:
            # Ablation: one pass over the whole window -- sound but it
            # admits epoch-spanning paths the two phases would reject.
            phase1 = _RuleGraph(list(side_in), summary, self)
            phase2 = phase1

        def resolve(parents: Tuple[int, ...], offset: int) -> Value:
            if phase1.tainted_parents(parents, offset, lsos):
                return BOT
            if phase2.tainted_parents(parents, offset, lsos):
                return BOT
            return TOP

        def resolve_value(value: Value, offset: int) -> Value:
            if value is BOT:
                return BOT
            if value is TOP:
                return TOP
            return resolve(value, offset)

        # LASTCHECK: resolve the final write of each location.
        lastcheck: Dict[int, Value] = {}
        for loc, writes in summary.rules.items():
            offset, value = writes[-1]
            lastcheck[loc] = resolve_value(value, offset)

        # Critical-use checks.
        flagged: List[Tuple[int, int]] = []
        for offset, loc in summary.jumps:
            if self._location_tainted(loc, offset, summary, phase1, phase2, lsos):
                flagged.append((offset, loc))
        return lastcheck, flagged

    def commit_check(
        self,
        butterfly: Butterfly,
        side_in: List[TaintSummary],
        result: Tuple[Dict[int, Value], List[Tuple[int, int]]],
    ) -> None:
        body = butterfly.body
        lastcheck, flagged = result
        self._summaries[body.block_id].lastcheck.update(lastcheck)
        errors = self.errors
        rec = self.recorder
        emit = rec.enabled
        for offset, loc in flagged:
            if errors.record(
                ErrorKind.TAINTED_JUMP,
                loc,
                ref=body.global_ref(offset),
                detail="possibly-tainted data used as jump target",
            ) and emit:
                # Taint resolution walks rules from the whole window, so
                # no single wing is blamed; provenance is the body block
                # plus the check stage.
                rec.event(
                    "error",
                    kind=ErrorKind.TAINTED_JUMP.value,
                    location=loc,
                    epoch=body.block_id[0],
                    thread=body.block_id[1],
                    index=offset,
                    ref=list(body.global_ref(offset)),
                    stage="second",
                    wing=None,
                )

    def _location_tainted(
        self,
        loc: int,
        offset: int,
        summary: TaintSummary,
        phase1: "_RuleGraph",
        phase2: "_RuleGraph",
        lsos: Set[int],
    ) -> bool:
        """Taint of ``loc`` as observed at body offset ``offset``."""
        if phase1.tainted_parents((loc,), offset, lsos):
            return True
        return phase2.tainted_parents((loc,), offset, lsos)

    # -- step 4: LASTCHECK-driven SOS update ----------------------------------

    def epoch_update(
        self, lid: int, summaries: Dict[BlockId, TaintSummary]
    ) -> None:
        """Reaching-definitions SOS rules over tainted addresses:

        ``GEN_l``: locations some thread's last check resolved tainted.
        ``KILL_l``: locations some thread untainted whose every *other*
        thread's last check across epochs ``(l-1, l)`` is untainted or
        absent (Section 6.2's LASTCHECK formulation).
        """
        threads = sorted(t for (_, t) in summaries)
        gen_l: Set[int] = set()
        kill_l: Set[int] = set()
        for (l, t), s in summaries.items():
            for loc, value in s.lastcheck.items():
                if value is BOT:
                    gen_l.add(loc)
                elif value is TOP:
                    if all(
                        self._lastcheck_span(loc, lid, t2) in (TOP, None)
                        for t2 in threads
                        if t2 != t
                    ):
                        kill_l.add(loc)
        kill_l -= gen_l
        self.sos.advance(lid, gen_l, lambda loc: loc in kill_l)
        self._evict(lid - 1)

    def evict_history(self, before: int) -> None:
        self.sos.evict(before)

    def emit_metrics(self, recorder: Any) -> None:
        """End-of-run gauges: flagged jumps and window residency."""
        recorder.gauge("taintcheck.tainted_jumps", len(self.errors))
        recorder.gauge("taintcheck.resident_summaries", len(self._summaries))

    def _lastcheck_span(self, loc: int, lid: int, tid: int) -> Optional[Value]:
        """LASTCHECK(x, (l-1, l), t): the thread's most recent resolution
        across the two epochs, or None if it never wrote x there."""
        cur = self._summaries.get((lid, tid))
        if cur is not None and loc in cur.lastcheck:
            return cur.lastcheck[loc]
        prev = self._summaries.get((lid - 1, tid))
        if prev is not None and loc in prev.lastcheck:
            return prev.lastcheck[loc]
        return None

    # -- SOS / LSOS ---------------------------------------------------------------

    def _compute_lsos(self, lid: int, tid: int) -> Set[int]:
        """Tainted-address LSOS: head taints, SOS survivors of the head's
        untaints, plus the resurrection term (head untaints a location a
        sibling tainted in the adjacent epoch ``l-2``)."""
        sos = self.sos.get(lid)
        head = self._summaries.get((lid - 1, tid)) if lid >= 1 else None
        if head is None:
            return set(sos)
        lsos = {loc for loc, v in head.lastcheck.items() if v is BOT}
        for loc in sos:
            verdict = head.lastcheck.get(loc)
            if verdict is not TOP:
                lsos.add(loc)
            elif self._sibling_tainted(loc, lid - 2, tid):
                lsos.add(loc)
        return lsos

    def _sibling_tainted(self, loc: int, lid: int, tid: int) -> bool:
        if lid < 0:
            return False
        for (l, t), s in self._summaries.items():
            if l == lid and t != tid and s.lastcheck.get(loc) is BOT:
                return True
        return False

    def _evict(self, older_than: int) -> None:
        for key in [k for k in self._summaries if k[0] < older_than]:
            del self._summaries[key]
            self._blocks.pop(key, None)


class _RuleGraph:
    """Reachability over the transfer functions of one resolution phase.

    Nodes are locations; an edge ``y -> z`` exists when some in-phase
    rule ``(y <- s)`` has ``z`` in ``s``.  Taint flows backwards from
    bottom rules and from base-tainted locations (LSOS, or phase-1
    conclusions during phase 2).
    """

    def __init__(
        self,
        wing_summaries: List[TaintSummary],
        body: TaintSummary,
        guard: ButterflyTaintCheck,
        fallback: Optional["_RuleGraph"] = None,
    ) -> None:
        self._guard = guard
        self._body = body
        #: Lemma 6.3 case (3): during phase 2, a parent with no phase-2
        #: derivation may still be tainted by an interleaving of the
        #: first two epochs -- the phase-1 graph answers that query.
        self._fallback = fallback
        self._query_memo: Dict[int, bool] = {}
        # loc -> list of (site, value); site = (lid, tid, offset) for the
        # SC-mode per-thread ordering constraint.
        self.rules: Dict[int, List[Tuple[InstrId, Value]]] = {}
        for s in wing_summaries:
            lid, tid = s.block_id
            for loc, writes in s.rules.items():
                bucket = self.rules.setdefault(loc, [])
                for offset, value in writes:
                    bucket.append(((lid, tid, offset), value))
        blid, btid = body.block_id
        for loc, writes in body.rules.items():
            bucket = self.rules.setdefault(loc, [])
            for offset, value in writes:
                bucket.append(((blid, btid, offset), value))
        self._budget = [guard.max_steps]

    # -- top-level resolution ------------------------------------------------

    def tainted_parents(
        self,
        parents: Tuple[int, ...],
        offset: int,
        lsos: Set[int],
    ) -> bool:
        """Is any parent possibly tainted at body offset ``offset``?

        The top level anchors against program order: the body's own last
        write to a parent before ``offset`` is followed precisely (the
        paper's short-circuit on local last writes); wing rules and
        (absent a local write) the LSOS supply the potentially-
        concurrent alternatives.  Crucially, the body's *other* writes
        to the parent are not directly visible -- intra-thread
        dependences are respected -- though a wing may have captured any
        of them and re-exposed the value through its own rules.
        """
        base = frozenset(lsos)
        for y in parents:
            local = self._local_write_before(y, offset)
            if local is not None:
                local_offset, value = local
                if self._local_chain_tainted(value, local_offset, base):
                    return True
            elif y in base:
                # Entry state only: any phase-1 derivation of an
                # anchored parent was already caught by the phase-1
                # resolution that runs before this one, so consulting
                # the fallback here would bypass program order.
                return True
            if self._wing_taint(y, base):
                return True
        return False

    def _base_tainted(
        self,
        y: int,
        base: FrozenSet[int],
        counters: Optional[Dict[int, InstrId]] = None,
    ) -> bool:
        """Entry-state taint: the LSOS, or (phase 2 only) a phase-1
        derivation.  In SC mode the chain's per-thread counters carry
        into the fallback so a cross-phase derivation still respects
        each thread's program order."""
        if y in base:
            return True
        if self._fallback is None:
            return False
        if self._guard.mode == "sc":
            fallback = self._fallback
            # Relaxed reachability is a sound filter for the SC search
            # (see _wing_taint); it also keeps the budget from draining
            # on hopeless queries.
            if not fallback._reach_bot_relaxed(y, base):
                return False
            fallback._budget[0] = self._guard.max_steps
            return fallback._search_sc(
                y, dict(counters) if counters else {}, base
            )
        return self._fallback.query_taint(y, base)

    def query_taint(self, y: int, base: FrozenSet[int]) -> bool:
        """Unanchored taint of ``y`` under this phase's rules: used when
        phase 2 needs 'was y tainted by the first two epochs?'."""
        cached = self._query_memo.get(y)
        if cached is not None:
            return cached
        self._query_memo[y] = False  # cycle guard during the search
        if y in base:
            result = True
        elif not self._reach_bot_relaxed(y, base):
            # Relaxed reachability over-approximates every mode.
            result = False
        elif self._guard.mode == "relaxed":
            result = True
        else:
            self._budget[0] = self._guard.max_steps
            result = self._search_sc(y, {}, base)
        self._query_memo[y] = result
        return result

    def _local_write_before(
        self, loc: int, offset: int
    ) -> Optional[Tuple[int, Value]]:
        writes = self._body.rules.get(loc)
        if not writes:
            return None
        best = None
        for woffset, value in writes:
            if woffset < offset:
                best = (woffset, value)
            else:
                break
        return best

    def _local_chain_tainted(
        self, value: Value, offset: int, base: FrozenSet[int]
    ) -> bool:
        """Follow the body's own def-use chain (program order), allowing
        wing interference at every hop."""
        if value is BOT:
            return True
        if value is TOP:
            return False
        for y in value:
            local = self._local_write_before(y, offset)
            if local is not None:
                if self._local_chain_tainted(local[1], local[0], base):
                    return True
            elif y in base:
                return True
            if self._wing_taint(y, base):
                return True
        return False

    # -- graph search ------------------------------------------------------------

    def _wing_taint(self, loc: int, base: FrozenSet[int]) -> bool:
        """Could a potentially-concurrent wing write leave ``loc``
        tainted?  The first hop must be a wing rule (the body's own
        writes are ordered by intra-thread dependences and handled by
        the anchored local chain); deeper hops may use any rule in the
        window, because a wing may have captured any body value."""
        body_tid = self._body.block_id[1]
        for site, value in self.rules.get(loc, ()):
            if site[1] == body_tid:
                continue
            if value is BOT:
                return True
            if value is TOP:
                continue
            if self._guard.mode == "relaxed":
                if any(
                    self._base_tainted(y, base)
                    or self._reach_bot_relaxed(y, base)
                    for y in value
                ):
                    return True
            else:
                counters = {site[1]: site}
                for y in value:
                    # SC orderings are a subset of relaxed orderings, so
                    # the cheap relaxed reachability is a sound filter:
                    # if it cannot taint y, neither can the SC search --
                    # and a budget-exhausted SC verdict then stays
                    # within the relaxed flag set.
                    if not (
                        self._base_tainted(y, base)
                        or self._reach_bot_relaxed(y, base)
                    ):
                        continue
                    # The search budget guards one derivation search,
                    # not the whole block's worth of checks.
                    self._budget[0] = self._guard.max_steps
                    if self._search_sc(y, counters, base):
                        return True
        return False

    def _reach_bot_relaxed(self, start: int, base) -> bool:
        """Relaxed termination: location-level cycle prevention -- a
        parent may never be replaced by itself (monotone reachability)."""
        seen: Set[int] = set()
        stack = [start]
        while stack:
            loc = stack.pop()
            if loc in seen:
                continue
            seen.add(loc)
            for _site, value in self.rules.get(loc, ()):
                if value is BOT:
                    return True
                if value is TOP:
                    continue
                for y in value:
                    if self._base_tainted(y, base):
                        return True
                    if y not in seen:
                        stack.append(y)
        return False

    def _search_sc(
        self, loc: int, counters: Dict[int, InstrId], base: FrozenSet[int]
    ) -> bool:
        """SC termination: derivation chains carry per-thread site
        counters; a rule from thread ``t`` is usable only strictly
        before the chain's previous rule from ``t`` (program order
        within each thread is respected)."""
        if self._budget[0] <= 0:
            return True  # conservative: assume tainted
        self._budget[0] -= 1
        if self._base_tainted(loc, base, counters):
            return True
        for site, value in self.rules.get(loc, ()):
            if not _strictly_before(site, counters.get(site[1])):
                continue
            if value is BOT:
                return True
            if value is TOP:
                continue
            nxt = dict(counters)
            nxt[site[1]] = site
            for y in value:
                if self._search_sc(y, nxt, base):
                    return True
        return False

