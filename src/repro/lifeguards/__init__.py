"""Lifeguards: dynamic monitoring tools built on butterfly analysis.

- :mod:`repro.lifeguards.reports` -- error reports and false-positive
  accounting against ground-truth executions.
- :mod:`repro.lifeguards.sequential` -- the original sequential
  AddrCheck / TaintCheck, used both as the timesliced baseline and as
  the oracle defining *true* errors on a given interleaving.
- :mod:`repro.lifeguards.addrcheck` -- butterfly AddrCheck (paper 6.1).
- :mod:`repro.lifeguards.taintcheck` -- butterfly TaintCheck (paper 6.2).
- :mod:`repro.lifeguards.racecheck` -- a butterfly conflict detector,
  demonstrating the framework on a lifeguard beyond the paper's two.
"""

from repro.lifeguards.reports import ErrorKind, ErrorReport, ErrorLog
from repro.lifeguards.sequential import SequentialAddrCheck, SequentialTaintCheck
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.racecheck import ButterflyRaceCheck
from repro.lifeguards.taintcheck import ButterflyTaintCheck

__all__ = [
    "ErrorKind",
    "ErrorReport",
    "ErrorLog",
    "SequentialAddrCheck",
    "SequentialTaintCheck",
    "ButterflyAddrCheck",
    "ButterflyRaceCheck",
    "ButterflyTaintCheck",
]
