"""Command-line interface: regenerate the paper's results from a shell.

Examples
--------
::

    python -m repro table1
    python -m repro figure11 --events 32768
    python -m repro figure12
    python -m repro figure13
    python -m repro check --benchmark OCEAN --threads 4 --epoch-size 512
    python -m repro check --benchmark OCEAN --emit-events events.jsonl
    python -m repro check --benchmark OCEAN --checkpoint run.ckpt
    python -m repro check --backend processes --inject-faults crash=0.05,seed=7
    python -m repro check --benchmark OCEAN --stream
    python -m repro generate --benchmark OCEAN --stream --output big.jsonl
    python -m repro check --trace big.jsonl        # v2 traces stream
    python -m repro resume --checkpoint run.ckpt
    python -m repro sweep --benchmark OCEAN --threads 4
    python -m repro sweep --traces a.jsonl b.jsonl --quarantine bad/
    python -m repro stats --benchmark OCEAN --threads 4
    python -m repro fuzz --seed 4 --budget-seconds 60
    python -m repro fuzz --mutant narrow-window --trials 20
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import os
import random
import shutil
import signal
import sys
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.experiments import figure11, figure12, figure13, table1
from repro.bench.harness import ExperimentConfig, ExperimentSuite
from repro.bench.reporting import render_table
from repro.core.epoch import partition_auto, partition_from_boundaries
from repro.core.framework import ButterflyEngine
from repro.core.parallel import BACKEND_CHOICES, ExecutionBackend
from repro.core.stream import EpochSource, PartitionSource
from repro.core.tune import ORACLE_LIFEGUARDS, tune_workload
from repro.errors import (
    CheckpointError,
    ReproError,
    ResilienceError,
    TraceError,
)
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.racecheck import ButterflyRaceCheck
from repro.lifeguards.reports import compare_reports
from repro.lifeguards.sequential import SequentialAddrCheck
from repro.obs import NULL_RECORDER, JsonlSink, Recorder
from repro.resilience import (
    Checkpointer,
    FaultPlan,
    RetryPolicy,
    SupervisedBackend,
    load_checkpoint,
)
from repro.serve import (
    SHARD_BACKEND_CHOICES,
    ReproServer,
    ServeConfig,
    ServerThread,
    build_report,
    format_report,
    make_hello,
    parse_address,
    push_trace,
)
from repro.sim.lba import LBASystem
from repro.trace.generator import alloc_handoff_program
from repro.trace.serialize import (
    STREAM_VERSION,
    file_version,
    iter_load,
    load_file,
    save_file,
    save_stream_file,
)
from repro.verify import DEFAULT_TRIALS, MODE_NAMES, MUTANTS, run_fuzz
from repro.workloads.registry import BENCHMARKS, get_benchmark


def _fail(command: str, message: str) -> int:
    """One-line diagnostic on stderr, conventional exit status 2."""
    print(f"repro {command}: error: {message}", file=sys.stderr)
    return 2


def _open_recorder(
    args: argparse.Namespace, command: str
) -> "tuple[Optional[Recorder], Optional[int]]":
    """Resolve ``--emit-events`` into a recorder, failing fast.

    Returns ``(recorder, None)`` on success -- the shared
    :data:`NULL_RECORDER` when the flag is absent -- or ``(None,
    exit_code)`` when the path is unwritable, so a typo'd directory
    aborts before any analysis work runs.
    """
    path = getattr(args, "emit_events", None)
    if not path:
        return NULL_RECORDER, None
    try:
        sink = JsonlSink.open(path)
    except OSError as exc:
        return None, _fail(command, f"cannot write {path}: {exc}")
    return Recorder(sink=sink), None


def _finish_events(recorder: Recorder, args: argparse.Namespace) -> None:
    """Close the event sink and confirm where the log went."""
    if getattr(args, "emit_events", None):
        recorder.close()
        print(f"wrote {len(recorder.events)} events to {args.emit_events}")


def _resolve_backend(
    args: argparse.Namespace, command: str
) -> "tuple[Any, Optional[int]]":
    """``--backend`` plus the resilience flags -> engine backend.

    Plain runs return the backend *name* (the engine then owns the
    pool); ``--supervised`` or ``--inject-faults`` return a constructed
    :class:`SupervisedBackend` the caller must close via
    :func:`_close_backend`.  Returns ``(None, exit_code)`` on a
    malformed fault spec.
    """
    plan = None
    spec = getattr(args, "inject_faults", None)
    if spec:
        try:
            plan = FaultPlan.parse(spec)
        except ResilienceError as exc:
            return None, _fail(command, str(exc))
    if not getattr(args, "supervised", False) and plan is None:
        return args.backend, None
    policy = RetryPolicy(
        max_retries=getattr(args, "retries", 3),
        task_timeout=getattr(args, "task_timeout", 30.0),
    )
    return SupervisedBackend(args.backend, policy=policy, plan=plan), None


def _close_backend(backend: Any) -> None:
    """Close a backend the CLI constructed (the engine only owns
    backends it built from a name)."""
    if isinstance(backend, ExecutionBackend):
        backend.close()


def _make_guard(lifeguard: str, preallocated):
    if lifeguard == "addrcheck":
        return ButterflyAddrCheck(initially_allocated=preallocated)
    return ButterflyRaceCheck()


def _sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _run_meta(
    args: argparse.Namespace,
    num_threads: int,
    trace_path: Optional[str],
    stream: bool,
    partition=None,
) -> Dict[str, Any]:
    """The checkpoint's configuration fingerprint: everything needed to
    rebuild the identical trace and partition at resume time.

    ``stream`` records whether the run fed the engine through an
    :class:`EpochSource`; resume replays the same pipeline so a
    checkpoint taken mid-stream is continued by seeking the reader.

    When the run materialized a partition, its explicit boundary stream
    is recorded too: resume replays those exact cuts
    (:func:`partition_from_boundaries`) instead of re-deriving them
    from ``epoch_size``, so variable-size partitions -- skewed,
    global-order, adaptive -- resume on identical epoch geometry.
    (``epoch_size`` alone loses that information; deriving cuts from it
    was the old resume path's latent bug.)
    """
    boundaries = (
        [list(cuts) for cuts in partition.boundaries]
        if partition is not None else None
    )
    if trace_path:
        trace_abs = os.path.abspath(trace_path)
        return {
            "benchmark": None,
            "trace": trace_abs,
            "trace_sha256": _sha256(trace_abs),
            "threads": num_threads,
            "events": None,
            "seed": None,
            "epoch_size": args.epoch_size,
            "lifeguard": args.lifeguard,
            "stream": stream,
            "boundaries": boundaries,
        }
    return {
        "benchmark": args.benchmark,
        "trace": None,
        "trace_sha256": None,
        "threads": num_threads,
        "events": args.events,
        "seed": args.seed,
        "epoch_size": args.epoch_size,
        "lifeguard": args.lifeguard,
        "stream": stream,
        "boundaries": boundaries,
    }


def _drive_engine(
    args: argparse.Namespace,
    engine: ButterflyEngine,
    partition,
    checkpoint_path: Optional[str],
    meta: Dict[str, Any],
    start_epoch: int = 0,
) -> bool:
    """Feed the remaining epochs; return True when the run finished.

    ``--stop-after-epoch N`` exits cleanly right after receiving epoch
    ``N`` -- the kill/resume drill used by the resilience tests and the
    CI fault-injection job.
    """
    if checkpoint_path:
        engine.enable_checkpoints(
            Checkpointer(
                checkpoint_path,
                meta,
                every=getattr(args, "checkpoint_every", 1),
            )
        )
    stop_after = getattr(args, "stop_after_epoch", None)
    for lid in range(start_epoch, partition.num_epochs):
        engine.feed_epoch(lid)
        if stop_after is not None and lid >= stop_after:
            message = f"stopped after receiving epoch {lid}"
            if checkpoint_path:
                message += (
                    "; resume with: repro resume "
                    f"--checkpoint {checkpoint_path}"
                )
            print(message)
            return False
    engine.finish()
    return True


def _drive_engine_stream(
    args: argparse.Namespace,
    engine: ButterflyEngine,
    source: EpochSource,
    checkpoint_path: Optional[str],
    meta: Dict[str, Any],
    start_epoch: int = 0,
) -> bool:
    """The streaming counterpart of :func:`_drive_engine`.

    Pulls one epoch at a time from ``source`` (the engine must already
    be attached to it); ``start_epoch > 0`` is the resume path, seeking
    the reader past epochs the checkpoint covers.  Honors the same
    ``--stop-after-epoch`` drill and checkpoint hooks, so a streamed
    run is killed and resumed exactly like a materialized one.
    """
    if checkpoint_path:
        engine.enable_checkpoints(
            Checkpointer(
                checkpoint_path,
                meta,
                every=getattr(args, "checkpoint_every", 1),
            )
        )
    stop_after = getattr(args, "stop_after_epoch", None)
    rows = source.epochs(start_epoch)
    try:
        for lid, blocks in enumerate(rows, start=start_epoch):
            engine.feed_blocks(lid, blocks)
            if stop_after is not None and lid >= stop_after:
                message = f"stopped after receiving epoch {lid}"
                if checkpoint_path:
                    message += (
                        "; resume with: repro resume "
                        f"--checkpoint {checkpoint_path}"
                    )
                print(message)
                return False
    finally:
        close = getattr(rows, "close", None)
        if close is not None:
            close()
    engine.finish()
    return True


def _print_check_results(
    label: str,
    threads: int,
    epoch_size: int,
    lifeguard: str,
    limit: int,
    program,
    partition,
    guard,
) -> None:
    """The check/resume result block (identical for both commands, so
    a resumed run's output can be diffed against an uninterrupted
    one)."""
    if lifeguard == "addrcheck":
        truth = SequentialAddrCheck(program.preallocated)
        truth.run_order(program)
        precision = compare_reports(
            truth.errors, guard.errors, program.memory_op_count
        )
        print(f"benchmark: {label}, {threads} threads, "
              f"h={epoch_size} events, "
              f"{partition.num_epochs} epochs")
        print(f"flags: {precision.flagged}  true: {precision.true_positives}"
              f"  false positives: {precision.false_positives}"
              f"  false negatives: {precision.false_negatives}")
        print(f"false-positive rate: "
              f"{precision.false_positive_rate:.4%} of memory accesses")
    else:
        print(f"benchmark: {label}, {threads} threads, "
              f"h={epoch_size} events")
        print(f"potential conflicts: {len(guard.races)}")
        for race in guard.races[:limit]:
            print(f"  {race.kind:12s} loc=0x{race.location:x} "
                  f"at {race.body_ref}")


def _print_window_peak(engine: ButterflyEngine, threads: int) -> None:
    """The streamed runs' extra line: the observed memory bound."""
    print(f"stream: peak resident summaries "
          f"{engine.window_high_water} (bound {3 * threads})")


def _print_stream_results(
    label: str,
    threads: int,
    num_epochs: Optional[int],
    lifeguard: str,
    limit: int,
    guard,
    engine: ButterflyEngine,
) -> None:
    """Result block for a pure stream run (no materialized program, so
    no sequential-oracle precision accounting).

    Rendered through the serve layer's report builder so ``repro check
    --trace`` and ``repro push`` over the same trace print bit-identical
    blocks -- the serve-smoke job diffs them directly.
    """
    hello = make_hello(label, threads, num_epochs, (), lifeguard)
    report = build_report(label, hello, engine, guard)
    for line in format_report(report, label, limit):
        print(line)


def _suite(args: argparse.Namespace) -> ExperimentSuite:
    return ExperimentSuite(
        ExperimentConfig(
            events_per_thread=args.events,
            thread_counts=tuple(args.threads),
            seed=args.seed,
        )
    )


def _add_suite_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--events", type=int, default=32768,
        help="events per application thread (default: 32768)",
    )
    parser.add_argument(
        "--threads", type=int, nargs="+", default=[2, 4, 8],
        help="application thread counts (default: 2 4 8)",
    )
    parser.add_argument("--seed", type=int, default=1)


def cmd_table1(args: argparse.Namespace) -> int:
    print(table1().render())
    return 0


def cmd_figure11(args: argparse.Namespace) -> int:
    print(figure11(_suite(args)).render())
    return 0


def cmd_figure12(args: argparse.Namespace) -> int:
    print(figure12(_suite(args)).render())
    return 0


def cmd_figure13(args: argparse.Namespace) -> int:
    print(figure13(_suite(args)).render())
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    """Generate a workload trace and save it to disk.

    ``--stream`` writes the epoch-major version 2 layout instead: the
    epoch geometry (``--epoch-size``) is cut once at write time and
    baked into the file, and ``repro check`` later reads it back one
    epoch at a time without materializing the trace.
    """
    program = get_benchmark(args.benchmark).generate(
        args.threads, args.events, seed=args.seed
    )
    try:
        if args.stream:
            partition = partition_auto(program, args.epoch_size)
            save_stream_file(partition, args.output)
        else:
            save_file(program, args.output)
    except OSError as exc:
        return _fail("generate", f"cannot write {args.output}: {exc}")
    suffix = (
        f", {partition.num_epochs} epochs, streamed" if args.stream else ""
    )
    print(f"wrote {program.total_instructions} events "
          f"({program.num_threads} threads{suffix}) to {args.output}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run one lifeguard over a workload (generated or from a file).

    Version 2 (epoch-major) trace files always stream -- the engine
    pulls one epoch at a time and never materializes the trace.
    ``--stream`` additionally routes generated workloads and version 1
    files through the same bounded-memory pipeline (the trace is in
    memory, but the engine's resident state obeys the three-epoch
    window); the report is identical to a materialized run, plus the
    observed window peak.
    """
    recorder, rc = _open_recorder(args, "check")
    if recorder is None:
        return rc
    trace_path = args.trace
    program = None
    source = None
    if trace_path:
        try:
            if file_version(trace_path) == STREAM_VERSION:
                source = iter_load(trace_path)
                args.threads = source.num_threads
            else:
                program = load_file(trace_path)
                args.threads = program.num_threads
        except OSError as exc:
            return _fail("check", f"cannot read {trace_path}: {exc}")
        except TraceError as exc:
            return _fail("check", str(exc))
    else:
        program = get_benchmark(args.benchmark).generate(
            args.threads, args.events, seed=args.seed
        )
    backend, rc = _resolve_backend(args, "check")
    if backend is None:
        return rc
    partition = None
    if program is not None:
        partition = partition_auto(program, args.epoch_size)
        guard = _make_guard(args.lifeguard, program.preallocated)
        if args.stream:
            source = PartitionSource(partition)
    else:
        guard = _make_guard(args.lifeguard, source.preallocated)
    streaming = source is not None
    meta = _run_meta(args, args.threads, trace_path, streaming, partition)
    engine = ButterflyEngine(guard, backend=backend, recorder=recorder)
    try:
        if streaming:
            engine.attach_source(source)
            finished = _drive_engine_stream(
                args, engine, source, args.checkpoint, meta
            )
        else:
            engine.attach(partition)
            finished = _drive_engine(
                args, engine, partition, args.checkpoint, meta
            )
    except (ResilienceError, TraceError) as exc:
        return _fail("check", str(exc))
    finally:
        engine.close()
        _close_backend(backend)
    if finished:
        if program is not None:
            _print_check_results(
                args.benchmark, args.threads, args.epoch_size,
                args.lifeguard, args.limit, program, partition, guard,
            )
            if streaming:
                _print_window_peak(engine, args.threads)
        else:
            _print_stream_results(
                trace_path, args.threads, source.num_epochs,
                args.lifeguard, args.limit, guard, engine,
            )
    _finish_events(recorder, args)
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    """Continue a checkpointed run killed at an epoch boundary.

    The checkpoint's configuration fingerprint rebuilds the identical
    trace and partition; the continued run's error log, stats, and
    output are bit-identical to an uninterrupted one.  Any workload
    flag passed here is cross-checked against the fingerprint and a
    mismatch refuses to resume.
    """
    recorder, rc = _open_recorder(args, "resume")
    if recorder is None:
        return rc
    try:
        checkpoint = load_checkpoint(args.checkpoint)
    except CheckpointError as exc:
        return _fail("resume", str(exc))
    meta = dict(checkpoint.meta)
    expected = dict(meta)
    for key in ("benchmark", "threads", "events", "seed",
                "epoch_size", "lifeguard"):
        value = getattr(args, key, None)
        if value is not None:
            expected[key] = value
    if getattr(args, "trace", None):
        expected["trace"] = os.path.abspath(args.trace)
    try:
        checkpoint.verify(expected)
    except CheckpointError as exc:
        return _fail("resume", str(exc))
    program = None
    source = None
    if meta.get("trace"):
        if meta.get("trace_sha256"):
            try:
                digest = _sha256(meta["trace"])
            except OSError as exc:
                return _fail(
                    "resume", f"cannot read {meta['trace']}: {exc}"
                )
            if digest != meta["trace_sha256"]:
                return _fail(
                    "resume",
                    f"trace file {meta['trace']} changed since the "
                    "checkpoint was taken (sha256 mismatch)",
                )
        try:
            if file_version(meta["trace"]) == STREAM_VERSION:
                source = iter_load(meta["trace"])
            else:
                program = load_file(meta["trace"])
        except OSError as exc:
            return _fail("resume", f"cannot read {meta['trace']}: {exc}")
        except TraceError as exc:
            return _fail("resume", str(exc))
        label = meta["trace"]
    else:
        program = get_benchmark(meta["benchmark"]).generate(
            meta["threads"], meta["events"], seed=meta["seed"]
        )
        label = meta["benchmark"]
    backend, rc = _resolve_backend(args, "resume")
    if backend is None:
        return rc
    partition = None
    if program is not None:
        if meta.get("boundaries"):
            # Replay the recorded cuts verbatim: the interrupted run's
            # partition may not be derivable from epoch_size (skewed or
            # otherwise variable cuts), and resuming on different
            # geometry would silently change the analysis.
            try:
                partition = partition_from_boundaries(
                    program, meta["boundaries"]
                )
            except ReproError as exc:
                return _fail("resume", str(exc))
        else:
            # Pre-boundary checkpoints: fall back to re-deriving the
            # fixed-h cuts the old writer used.
            partition = partition_auto(program, meta["epoch_size"])
        if meta.get("stream"):
            # The interrupted run streamed; resume through the same
            # pipeline so its counters and window gauge stay coherent.
            source = PartitionSource(partition)
    guard = checkpoint.analysis
    engine = ButterflyEngine(guard, backend=backend, recorder=recorder)
    try:
        # resumed=True suppresses the duplicate run.attach event, and
        # restore_into continues the log numbering from the checkpoint
        # boundary: the resumed event log is the exact suffix of the
        # uninterrupted one, never a re-count of finished epochs.
        if source is not None:
            engine.attach_source(source, resumed=True)
            checkpoint.restore_into(engine)
            finished = _drive_engine_stream(
                args, engine, source, args.checkpoint, meta,
                start_epoch=checkpoint.next_epoch,
            )
        else:
            engine.attach(partition, resumed=True)
            checkpoint.restore_into(engine)
            finished = _drive_engine(
                args, engine, partition, args.checkpoint, meta,
                start_epoch=checkpoint.next_epoch,
            )
    except (ResilienceError, CheckpointError, TraceError) as exc:
        return _fail("resume", str(exc))
    finally:
        engine.close()
        _close_backend(backend)
    if finished:
        if program is not None:
            _print_check_results(
                label, meta["threads"], meta["epoch_size"],
                meta["lifeguard"], args.limit, program, partition, guard,
            )
            if source is not None:
                _print_window_peak(engine, meta["threads"])
        else:
            _print_stream_results(
                label, meta["threads"], source.num_epochs,
                meta["lifeguard"], args.limit, guard, engine,
            )
    _finish_events(recorder, args)
    return 0


def _quarantine_file(path: str, directory: str) -> str:
    os.makedirs(directory, exist_ok=True)
    dest = os.path.join(directory, os.path.basename(path))
    shutil.move(path, dest)
    return dest


def cmd_sweep(args: argparse.Namespace) -> int:
    """Epoch-size sweep for one benchmark (the paper's tuning knob),
    or over saved trace files (``--traces``)."""
    if args.lifeguard not in ORACLE_LIFEGUARDS:
        # The FP column is a comparison against a sequential oracle for
        # the *same* lifeguard; silently swapping in the AddrCheck
        # oracle (the old behavior) would label another lifeguard's
        # flags with a meaningless FP rate.
        return _fail(
            "sweep",
            f"lifeguard {args.lifeguard!r} has no sequential oracle to "
            f"measure false positives against; supported: "
            f"{', '.join(ORACLE_LIFEGUARDS)}",
        )
    recorder, rc = _open_recorder(args, "sweep")
    if recorder is None:
        return rc
    backend, rc = _resolve_backend(args, "sweep")
    if backend is None:
        return rc
    programs: List[Tuple[str, Any]] = []
    if args.traces:
        for path in args.traces:
            try:
                programs.append((path, load_file(path)))
            except OSError as exc:
                _close_backend(backend)
                return _fail("sweep", f"cannot read {path}: {exc}")
            except TraceError as exc:
                if args.quarantine:
                    dest = _quarantine_file(path, args.quarantine)
                    print(
                        f"repro sweep: warning: quarantined unparseable "
                        f"trace {path} -> {dest} ({exc})",
                        file=sys.stderr,
                    )
                    continue
                _close_backend(backend)
                return _fail("sweep", str(exc))
        if not programs:
            _close_backend(backend)
            return _fail("sweep", "no readable trace files remain")
    else:
        programs.append((
            args.benchmark,
            get_benchmark(args.benchmark).generate(
                args.threads, args.events, seed=args.seed
            ),
        ))
    system = LBASystem()
    try:
        for label, program in programs:
            truth = SequentialAddrCheck(program.preallocated)
            truth.run_order(program)
            baseline = system.unmonitored_sequential(program)
            rows = []
            for h in args.sizes:
                if recorder.enabled:
                    recorder.event("sweep.config", epoch_size=h)
                run = system.butterfly(
                    program, h, backend=backend, recorder=recorder,
                    stream=args.stream,
                )
                precision = compare_reports(
                    truth.errors, run.guard.errors, program.memory_op_count
                )
                rows.append((
                    h,
                    run.partition.num_epochs,
                    f"{run.result.cycles / baseline.cycles:.2f}x",
                    precision.false_positives,
                    f"{precision.false_positive_rate:.3%}",
                ))
            if args.traces:
                print(f"trace: {label}")
            print(render_table(
                ("epoch size", "epochs", "slowdown", "false pos", "FP rate"),
                rows,
            ))
    except ResilienceError as exc:
        return _fail("sweep", str(exc))
    finally:
        _close_backend(backend)
    _finish_events(recorder, args)
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    """Sweep the heartbeat over one workload and fit the FP-rate /
    latency tradeoff curve the adaptive controller navigates.

    The default workload is the allocation-handoff generator, whose
    false-positive rate genuinely grows with the heartbeat (the
    paper's Figure 13 shape); registry benchmarks are available via
    ``--benchmark`` but are allocation-clean and fit a flat curve.
    """
    if args.lifeguard not in ORACLE_LIFEGUARDS:
        return _fail(
            "tune",
            f"lifeguard {args.lifeguard!r} has no sequential oracle to "
            f"measure false positives against; supported: "
            f"{', '.join(ORACLE_LIFEGUARDS)}",
        )
    if any(h < 1 for h in args.sizes):
        return _fail("tune", "--sizes must all be >= 1")
    if args.benchmark is not None:
        label = args.benchmark
        program = get_benchmark(args.benchmark).generate(
            args.threads, args.events, seed=args.seed
        )
    else:
        label = "handoff"
        program = alloc_handoff_program(
            random.Random(args.seed),
            num_threads=args.threads,
            events_per_thread=args.events,
        )
    try:
        curve = tune_workload(
            program, args.sizes,
            lifeguard=args.lifeguard, backend=args.backend,
        )
    except ReproError as exc:
        return _fail("tune", str(exc))
    print(f"workload: {label}, {args.threads} threads, "
          f"{args.events} events/thread, seed {args.seed}")
    print(render_table(
        ("epoch size", "epochs", "false pos", "FP rate",
         "mean epoch ms", "max epoch ms", "events/s"),
        [
            (
                point.epoch_size,
                point.epochs,
                point.false_positives,
                f"{point.fp_rate:.3%}",
                f"{point.mean_epoch_ms:.3f}",
                f"{point.max_epoch_ms:.3f}",
                f"{point.events_per_s:,.0f}",
            )
            for point in curve.points
        ],
    ))
    print(f"fit: fp_rate ~ {curve.fp_slope:+.4f} * log2(h) "
          f"{curve.fp_intercept:+.4f}")
    print(f"fit: mean_epoch_ms ~ {curve.latency_slope:+.6f} * h "
          f"{curve.latency_intercept:+.4f}")
    print("raw FP rate monotone nondecreasing: "
          + ("yes" if curve.fp_monotone else "no"))
    if args.output:
        record = {
            "workload": label,
            "threads": args.threads,
            "events_per_thread": args.events,
            "seed": args.seed,
            "lifeguard": args.lifeguard,
        }
        record.update(curve.to_record())
        try:
            with open(args.output, "w") as fh:
                json.dump(record, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            return _fail("tune", f"cannot write {args.output}: {exc}")
        print(f"wrote {args.output}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Measure wall-clock performance and write a BENCH_*.json report."""
    from repro.bench.perf import run_perf

    if args.repeats < 1:
        return _fail("bench", f"--repeats must be >= 1, got {args.repeats}")
    if args.big_events < 0:
        return _fail(
            "bench", f"--big-events must be >= 0, got {args.big_events}"
        )
    if args.serve_streams < 0:
        return _fail(
            "bench",
            f"--serve-streams must be >= 0, got {args.serve_streams}",
        )
    if args.adaptive_events < 0:
        return _fail(
            "bench",
            f"--adaptive-events must be >= 0, got {args.adaptive_events}",
        )
    if args.inject_faults:
        try:
            FaultPlan.parse(args.inject_faults)
        except ResilienceError as exc:
            return _fail("bench", str(exc))
    # Fail before measuring, not minutes later at report time.
    for path in (args.output, args.emit_events):
        if path is None:
            continue
        try:
            with open(path, "w"):
                pass
        except OSError as exc:
            return _fail("bench", f"cannot write {path}: {exc}")
    report = run_perf(
        repeats=args.repeats,
        output_path=args.output,
        events_path=args.emit_events,
        inject_faults=args.inject_faults,
        stream_file=args.stream,
        big_events=args.big_events,
        serve_streams=args.serve_streams,
        adaptive_events=args.adaptive_events,
    )
    core = report["workloads"]["microbench_core"]
    print(f"wrote {args.output}")
    if args.emit_events:
        print(f"wrote event log to {args.emit_events}")
    print(f"microbench core: "
          f"{core['speedup_vs_baseline']:.2f}x vs reference serial "
          f"(reference {core['runs']['reference_serial']['best_s']*1e3:.1f} ms, "
          f"optimized {core['runs']['optimized_serial']['best_s']*1e3:.1f} ms)")
    obs = report["workloads"]["observability_overhead"]
    print(f"observability overhead: {obs['overhead_ratio']:.3f}x when enabled")
    res = report["workloads"]["resilience_overhead"]
    print(f"supervision overhead: {res['overhead_ratio']:.3f}x fault-free")
    stream = report["workloads"]["streaming_overhead"]
    print(f"streaming overhead: {stream['overhead_ratio']:.3f}x vs "
          f"materialized (window peak {stream['window_high_water']}, "
          f"bound {stream['window_bound']})")
    big = report["workloads"].get("columnar_10m")
    if big is not None:
        if big.get("skipped"):
            print(f"columnar_10m: skipped ({big['skipped']})")
        else:
            ups = big["speedups"]
            print(f"columnar_10m ({big['params']['total_events']} events): "
                  f"columnar serial "
                  f"{ups['columnar_serial_vs_reference']:.1f}x vs reference, "
                  f"{ups['columnar_serial_vs_object_optimized']:.1f}x vs "
                  f"optimized objects; processes "
                  f"{ups['columnar_processes_vs_object_optimized']:.2f}x vs "
                  f"optimized serial")
    serve = report["workloads"].get("serve_throughput")
    if serve is not None:
        thread_run = serve["runs"]["thread"]
        process_run = serve["runs"]["process"]
        print(f"serve throughput ({serve['params']['streams']} producers, "
              f"{serve['params']['cpu_count']} cpus): "
              f"thread shards {thread_run['epochs_per_s']:.0f} epochs/s, "
              f"process shards {process_run['epochs_per_s']:.0f} epochs/s "
              f"({serve['speedup_process_vs_thread']:.2f}x)")
    adaptive = report["workloads"].get("adaptive_epoch")
    if adaptive is not None:
        fit = adaptive["tune"]["fit"]["fp_rate_vs_log2_h"]
        runs = adaptive["serve"]["runs"]
        slo = adaptive["serve"]["params"]["slo_target_ms"]
        print(f"adaptive epoch: tune FP slope {fit['slope']:+.4f} per "
              f"log2(h); bursty p95 latency "
              f"{runs['adaptive']['p95_row_latency_ms']:.1f} ms adaptive "
              f"vs {runs['fixed_small']['p95_row_latency_ms']:.1f} ms "
              f"fixed-small (SLO {slo:.1f} ms); FP rate "
              f"{runs['adaptive']['fp_rate']:.3%} adaptive vs "
              f"{runs['fixed_large']['fp_rate']:.3%} fixed-large")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzz campaign: generate adversarial traces, demand
    agreement across every mode pair, shrink and archive any
    disagreement.  Exit 0 when every check agreed, 1 when findings were
    written to the failures directory, 2 on usage errors."""
    if args.budget_seconds is not None and args.budget_seconds <= 0:
        return _fail(
            "fuzz", f"--budget-seconds must be > 0, got {args.budget_seconds}"
        )
    if args.trials is not None and args.trials < 1:
        return _fail("fuzz", f"--trials must be >= 1, got {args.trials}")
    if args.oracle_budget < 0:
        return _fail(
            "fuzz", f"--oracle-budget must be >= 0, got {args.oracle_budget}"
        )
    recorder, rc = _open_recorder(args, "fuzz")
    if recorder is None:
        return rc
    report = run_fuzz(
        seed=args.seed,
        budget_seconds=args.budget_seconds,
        trials=args.trials,
        modes=tuple(args.modes),
        shrink=args.shrink,
        failures_dir=args.failures_dir,
        recorder=recorder,
        oracle_budget=args.oracle_budget,
        backend=args.backend,
        mutant=args.mutant,
    )
    mix = ", ".join(
        f"{k}={v}" for k, v in sorted(report.cases_by_label.items())
    )
    print(f"seed {report.seed}: {report.trials} trials "
          f"in {report.elapsed_s:.1f}s ({mix})")
    for mode in report.modes:
        print(f"  {mode:10s} checks={report.checks_run.get(mode, 0):<6d}"
              f"skipped={report.skipped.get(mode, 0)}")
    if report.ok:
        print("all mode pairs agreed")
        _finish_events(recorder, args)
        return 0
    print(f"{len(report.findings)} disagreement(s); "
          f"minimal repros in {args.failures_dir}/")
    for f in report.findings:
        print(f"  trial {f.trial} [{f.mode}] {f.label}: "
              f"{f.original_instructions} -> {f.shrunk_instructions} "
              f"instructions, {f.artifact}")
        print(f"    {f.detail}")
    _finish_events(recorder, args)
    return 1


def _serve_config(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        workers=args.workers,
        shard_backend=args.shard_backend,
        queue_depth=args.queue_depth,
        max_streams=args.max_streams,
        max_pending_epochs=args.max_pending_epochs,
        idle_timeout=args.idle_timeout,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        backend=args.backend,
        metrics_port=args.metrics,
        adaptive_epoch=args.adaptive_epoch,
        slo_target_ms=args.slo_target_ms,
        slo_queue_high=args.slo_queue_high,
        slo_queue_low=args.slo_queue_low,
        slo_min_fold=args.slo_min_fold,
        slo_max_fold=args.slo_max_fold,
    )


async def _serve_main(server: ReproServer) -> None:
    """Run the daemon until a drain completes.

    SIGTERM and SIGINT both trigger the graceful drain: stop accepting,
    fold queued epochs, checkpoint every in-flight stream, notify
    producers, flush, exit 0.
    """
    await server.start()
    loop = asyncio.get_running_loop()

    def _request_drain() -> None:
        loop.create_task(server.drain())

    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, _request_drain)
    # The banner is the readiness signal (supervisors and the smoke
    # harness wait for it), so it must come *after* the drain handlers
    # are in place -- a signal racing the startup would otherwise kill
    # the process ungracefully.
    kind, where = server.address
    if kind == "tcp":
        print(f"serving on {where[0]}:{where[1]}", flush=True)
    else:
        print(f"serving on unix {where}", flush=True)
    if server.metrics_address is not None:
        host, port = server.metrics_address
        print(f"metrics on {host}:{port}", flush=True)
    await server.wait_done()


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the trace-ingestion daemon (see docs/serving.md)."""
    recorder, rc = _open_recorder(args, "serve")
    if recorder is None:
        return rc
    if (args.summary_json or args.metrics is not None) and not recorder.enabled:
        # The metrics listener serves the recorder's snapshot, so a
        # scrape-enabled daemon needs live counters even without a sink.
        recorder = Recorder()
    # The recorder lives on the event loop's thread -- which in the
    # foreground daemon is this one; counters are only touched there.
    server = ReproServer(_serve_config(args), recorder)
    try:
        asyncio.run(_serve_main(server))
    except OSError as exc:
        return _fail("serve", f"cannot listen: {exc}")
    except ReproError as exc:
        return _fail("serve", str(exc))
    snap = recorder.snapshot()
    served = {
        k: v for k, v in sorted(snap["counters"].items())
        if k.startswith("serve.")
    }
    summary = ", ".join(f"{k.split('.', 1)[1]}={v}" for k, v in served.items())
    print(f"drained: {summary}" if summary else "drained")
    if args.summary_json:
        try:
            recorder.dump_snapshot(args.summary_json)
        except OSError as exc:
            return _fail("serve", f"cannot write {args.summary_json}: {exc}")
        print(f"wrote metrics summary to {args.summary_json}")
    _finish_events(recorder, args)
    return 0


def cmd_push(args: argparse.Namespace) -> int:
    """Push a version-2 trace to a running daemon and print its report.

    The printed block is bit-identical to ``repro check --trace`` over
    the same file (both render through the same report builder), so the
    two commands' outputs diff clean -- the serve differential check.
    """
    if (args.connect is None) == (args.unix is None):
        return _fail("push", "exactly one of --connect or --unix is required")
    try:
        address = (
            ("unix", args.unix) if args.unix else parse_address(args.connect)
        )
    except ReproError as exc:
        return _fail("push", str(exc))
    plan = None
    if args.inject_faults:
        try:
            plan = FaultPlan.parse(args.inject_faults)
        except ResilienceError as exc:
            return _fail("push", str(exc))
    stream_id = args.stream_id or os.path.basename(args.trace)
    try:
        report = push_trace(
            address,
            args.trace,
            stream_id,
            lifeguard=args.lifeguard,
            plan=plan,
            retries=args.retries,
            timeout=args.timeout,
        )
    except OSError as exc:
        return _fail("push", f"cannot read {args.trace}: {exc}")
    except (ReproError, TraceError) as exc:
        return _fail("push", str(exc))
    for line in format_report(report, args.trace, args.limit):
        print(line)
    return 0


def _run_stats_serve(
    args: argparse.Namespace, recorder: Recorder, partition
) -> Optional[int]:
    """Route the stats workload through an in-process serve daemon.

    Exercises every ``serve.*`` counter family deterministically: two
    complete streams (accepted/completed, bytes, epochs), a depth-1
    queue (backpressure stalls), and one deliberately corrupt frame
    (streams_failed) -- so ``--summary-json`` captures the daemon's
    full metric surface.  The recorder is handed to the daemon's loop
    thread and only read back after the daemon has stopped.
    """
    from repro.serve.client import _connect, read_frame_sync
    from repro.serve.protocol import (
        FRAME_EPOCH,
        FRAME_HELLO,
        encode_frame,
        encode_json_frame,
    )

    with tempfile.TemporaryDirectory(prefix="repro-stats-serve-") as tmp:
        trace = os.path.join(tmp, "stats.jsonl")
        save_stream_file(partition, trace)
        config = ServeConfig(
            workers=args.workers,
            queue_depth=1,
            checkpoint_dir=os.path.join(tmp, "checkpoints"),
            backend=args.backend,
        )
        try:
            with ServerThread(config, recorder) as st:
                for i in range(2):
                    push_trace(
                        st.address, trace, f"stats-{i}",
                        lifeguard=args.lifeguard,
                    )
                # One stream that sends a corrupt epoch frame: the
                # daemon isolates it and counts a failure.
                sock = _connect(st.address, 10.0)
                try:
                    sock.sendall(encode_json_frame(
                        FRAME_HELLO, make_hello("stats-bad", 1, 1, (), "race")
                    ))
                    read_frame_sync(sock)  # ACK
                    sock.sendall(encode_frame(FRAME_EPOCH, b"not json"))
                    read_frame_sync(sock)  # ERROR protocol
                finally:
                    sock.close()
        except (ReproError, OSError) as exc:
            return _fail("stats", str(exc))
    return None


def cmd_stats(args: argparse.Namespace) -> int:
    """Run one instrumented workload and print the metrics summary."""
    recorder, rc = _open_recorder(args, "stats")
    if recorder is None:
        return rc
    if not recorder.enabled:
        recorder = Recorder()  # stats is pointless without a live recorder
    backend, rc = _resolve_backend(args, "stats")
    if backend is None:
        return rc
    program = get_benchmark(args.benchmark).generate(
        args.threads, args.events, seed=args.seed
    )
    partition = partition_auto(program, args.epoch_size)
    if args.serve:
        # The daemon builds its own per-stream engines; the CLI-level
        # backend object is unused on this path.
        _close_backend(backend)
        rc = _run_stats_serve(args, recorder, partition)
        if rc is not None:
            return rc
    else:
        guard = _make_guard(args.lifeguard, program.preallocated)
        try:
            with ButterflyEngine(
                guard, backend=backend, recorder=recorder
            ) as engine:
                if args.stream:
                    engine.run_source(PartitionSource(partition))
                else:
                    engine.run(partition)
        except ResilienceError as exc:
            return _fail("stats", str(exc))
        finally:
            _close_backend(backend)

    snap = recorder.snapshot()
    via = " via serve daemon" if args.serve else ""
    print(f"benchmark: {args.benchmark}, {args.threads} threads, "
          f"h={args.epoch_size} events, backend={args.backend}, "
          f"lifeguard={args.lifeguard}{via}")
    print(f"events recorded: {len(recorder.events)}")
    if snap["spans"]:
        print("\nspans (aggregated):")
        rows = [
            (name, str(s["count"]),
             f"{s['total_ns'] / 1e6:.2f}",
             f"{s['total_ns'] / s['count'] / 1e3:.1f}",
             f"{s['max_ns'] / 1e3:.1f}")
            for name, s in sorted(snap["spans"].items())
        ]
        print(render_table(
            ("span", "count", "total ms", "mean us", "max us"), rows
        ))
    if snap["counters"]:
        print("\ncounters:")
        for name, value in sorted(snap["counters"].items()):
            print(f"  {name} = {value}")
    if snap["gauges"]:
        print("\ngauges:")
        for name, value in sorted(snap["gauges"].items()):
            print(f"  {name} = {value}")
    if args.summary_json:
        try:
            recorder.dump_snapshot(args.summary_json)
        except OSError as exc:
            return _fail("stats", f"cannot write {args.summary_json}: {exc}")
        print(f"wrote metrics summary to {args.summary_json}")
    _finish_events(recorder, args)
    return 0


def _add_stream_arg(parser: argparse.ArgumentParser, help_text: str) -> None:
    parser.add_argument("--stream", action="store_true", help=help_text)


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", default="serial", choices=BACKEND_CHOICES,
        help="engine execution backend (results are identical; "
             "default: serial)",
    )


def _add_emit_events_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--emit-events", default=None, metavar="PATH",
        help="write the observability event log to PATH as JSON lines",
    )


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--supervised", action="store_true",
        help="wrap the backend in the resilience supervisor "
             "(per-task timeout, bounded retry, pool healing, "
             "degradation ladder)",
    )
    parser.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="deterministic fault injection, e.g. "
             "'crash=0.05,hang=0.02,corrupt=0.05,seed=7' "
             "(implies --supervised; see docs/robustness.md)",
    )
    parser.add_argument(
        "--retries", type=int, default=3,
        help="max retries per work unit under supervision (default: 3)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=30.0,
        help="seconds before a pooled work unit is declared hung "
             "(default: 30)",
    )


def _add_checkpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="write a checkpoint every N committed epochs (default: 1)",
    )
    parser.add_argument(
        "--stop-after-epoch", type=int, default=None, metavar="N",
        help="exit cleanly after receiving epoch N (kill/resume drill; "
             "the last checkpoint then covers epoch N-1)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Butterfly analysis (ASPLOS 2010) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1 parameters").set_defaults(
        func=cmd_table1
    )
    for name, func in (
        ("figure11", cmd_figure11),
        ("figure12", cmd_figure12),
        ("figure13", cmd_figure13),
    ):
        p = sub.add_parser(name, help=f"regenerate {name}")
        _add_suite_args(p)
        p.set_defaults(func=func)

    p = sub.add_parser("generate", help="generate and save a trace")
    p.add_argument("--benchmark", default="OCEAN", choices=sorted(BENCHMARKS))
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--events", type=int, default=16384)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--output", required=True, help="output trace file")
    p.add_argument("--epoch-size", type=int, default=512,
                   help="epoch geometry baked into a --stream trace "
                        "(default: 512)")
    _add_stream_arg(
        p,
        "write the epoch-major (version 2) stream layout; 'repro "
        "check' reads it back one epoch at a time",
    )
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("check", help="run a lifeguard on a workload")
    p.add_argument("--trace", default=None,
                   help="trace file from 'generate' (overrides --benchmark)")
    p.add_argument("--benchmark", default="OCEAN", choices=sorted(BENCHMARKS))
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--events", type=int, default=16384)
    p.add_argument("--epoch-size", type=int, default=512)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--lifeguard", default="addrcheck", choices=("addrcheck", "race")
    )
    p.add_argument("--limit", type=int, default=10,
                   help="max conflicts to print (race mode)")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="snapshot run state to PATH after each committed "
                        "epoch (resume with 'repro resume')")
    _add_stream_arg(
        p,
        "feed the engine one epoch at a time (bounded memory); "
        "version 2 trace files stream regardless",
    )
    _add_checkpoint_args(p)
    _add_backend_arg(p)
    _add_resilience_args(p)
    _add_emit_events_arg(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "resume",
        help="continue a checkpointed run killed at an epoch boundary",
    )
    p.add_argument("--checkpoint", required=True, metavar="PATH",
                   help="checkpoint file written by 'repro check'")
    p.add_argument("--trace", default=None,
                   help="cross-check: must match the checkpointed trace")
    p.add_argument("--benchmark", default=None, choices=sorted(BENCHMARKS),
                   help="cross-check: must match the checkpointed config")
    p.add_argument("--threads", type=int, default=None)
    p.add_argument("--events", type=int, default=None)
    p.add_argument("--epoch-size", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--lifeguard", default=None, choices=("addrcheck", "race")
    )
    p.add_argument("--limit", type=int, default=10,
                   help="max conflicts to print (race mode)")
    _add_checkpoint_args(p)
    _add_backend_arg(p)
    _add_resilience_args(p)
    _add_emit_events_arg(p)
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser("sweep", help="epoch-size sweep for one benchmark")
    p.add_argument("--benchmark", default="OCEAN", choices=sorted(BENCHMARKS))
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--events", type=int, default=16384)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--lifeguard", default="addrcheck",
        choices=("addrcheck", "race", "taintcheck"),
        help="lifeguard whose FP rate the sweep measures; only "
             "lifeguards with a sequential oracle are supported "
             "(others exit 2 instead of silently comparing against "
             "the AddrCheck oracle)",
    )
    p.add_argument(
        "--sizes", type=int, nargs="+",
        default=[256, 512, 1024, 2048, 4096],
    )
    p.add_argument(
        "--traces", nargs="+", default=None, metavar="PATH",
        help="sweep saved trace files instead of generating a benchmark",
    )
    p.add_argument(
        "--quarantine", default=None, metavar="DIR",
        help="move unparseable --traces files into DIR and continue "
             "instead of aborting the sweep",
    )
    _add_stream_arg(
        p,
        "run each configuration through the bounded-memory streaming "
        "pipeline (results are identical)",
    )
    _add_backend_arg(p)
    _add_resilience_args(p)
    _add_emit_events_arg(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "tune",
        help="sweep the heartbeat over a workload and fit the "
             "FP-rate/latency tradeoff curve the adaptive-epoch "
             "controller navigates (see docs/tuning.md)",
    )
    p.add_argument(
        "--benchmark", default=None, choices=sorted(BENCHMARKS),
        help="sweep a registry benchmark instead of the default "
             "allocation-handoff workload (registry benchmarks are "
             "allocation-clean, so their FP curves are flat)",
    )
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--events", type=int, default=1024,
                   help="events per thread (default: 1024)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--sizes", type=int, nargs="+", default=[2, 4, 8, 16, 32],
        help="heartbeat sizes to measure (default: 2 4 8 16 32)",
    )
    p.add_argument(
        "--lifeguard", default="addrcheck",
        choices=("addrcheck", "race", "taintcheck"),
        help="lifeguard to tune; only lifeguards with a sequential "
             "oracle are supported (others exit 2)",
    )
    p.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the measured points and fitted curve as JSON "
             "(the tune-smoke CI job asserts the fitted FP slope "
             "is nonnegative)",
    )
    _add_backend_arg(p)
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser(
        "bench", help="measure wall-clock perf and write BENCH_<n>.json"
    )
    p.add_argument("--output", default="BENCH_1.json",
                   help="report path (default: BENCH_1.json)")
    p.add_argument("--repeats", type=int, default=5,
                   help="timing repetitions per configuration (best-of)")
    p.add_argument(
        "--big-events", type=int, default=10_000_000, metavar="N",
        help="event count for the columnar_10m workload; 0 skips it "
             "(default: 10000000)",
    )
    p.add_argument(
        "--serve-streams", type=int, default=4, metavar="N",
        help="concurrent producers for the serve_throughput workload; "
             "0 skips it (default: 4)",
    )
    p.add_argument(
        "--adaptive-events", type=int, default=1024, metavar="N",
        help="events per thread for the adaptive_epoch workload; "
             "0 skips it (default: 1024)",
    )
    p.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="additionally time the core workload under supervised "
             "fault injection with SPEC",
    )
    _add_stream_arg(
        p,
        "additionally time the streaming pipeline against a version 2 "
        "stream file on disk (the streaming_overhead workload always "
        "measures the in-memory source)",
    )
    _add_emit_events_arg(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzz campaign: adversarial traces must agree "
             "across every mode pair; disagreements are shrunk to "
             "minimal repros",
    )
    p.add_argument("--seed", type=int, default=1,
                   help="campaign seed; trial i is a pure function of "
                        "(seed, i), so a seed replays its campaign")
    p.add_argument("--budget-seconds", type=float, default=None,
                   metavar="S",
                   help="stop starting new trials after S seconds")
    p.add_argument("--trials", type=int, default=None, metavar="N",
                   help=f"run exactly N trials (default {DEFAULT_TRIALS} "
                        "when no --budget-seconds)")
    p.add_argument("--modes", nargs="+", default=list(MODE_NAMES),
                   choices=MODE_NAMES, metavar="MODE",
                   help="mode pairs to check (default: all of "
                        f"{', '.join(MODE_NAMES)})")
    p.add_argument("--no-shrink", dest="shrink", action="store_false",
                   help="archive disagreements without delta-debugging "
                        "them to minimal repros")
    p.add_argument("--failures-dir", default="repro-failures",
                   metavar="DIR",
                   help="where minimal repros land (default: "
                        "repro-failures)")
    p.add_argument("--oracle-budget", type=int, default=9, metavar="N",
                   help="max instructions for the all-orderings oracle; "
                        "bigger traces skip the orderings pair "
                        "(default: 9)")
    p.add_argument("--backend", default="threads", choices=BACKEND_CHOICES,
                   help="parallel backend the backends pair compares "
                        "against serial (default: threads)")
    p.add_argument("--mutant", default=None, choices=sorted(MUTANTS),
                   help="self-test: activate a deliberate bug; the "
                        "campaign is then expected to exit 1 with a "
                        "tiny repro")
    _add_emit_events_arg(p)
    p.set_defaults(func=cmd_fuzz, shrink=True)

    p = sub.add_parser(
        "serve",
        help="run the trace-ingestion daemon: many concurrent streams, "
             "backpressure, per-stream checkpoints, graceful drain "
             "(see docs/serving.md)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="TCP listen address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port; 0 picks a free one and prints it "
                        "(default: 0)")
    p.add_argument("--unix", default=None, metavar="PATH",
                   help="listen on a Unix socket instead of TCP")
    p.add_argument("--workers", type=int, default=2,
                   help="engine shards; streams hash onto shards and "
                        "fold in parallel (default: 2)")
    p.add_argument("--shard-backend", default="thread",
                   choices=SHARD_BACKEND_CHOICES,
                   help="where shard engines live: 'thread' executors "
                        "in the daemon, or one long-lived worker "
                        "'process' per shard for real-core analysis "
                        "parallelism (default: thread)")
    p.add_argument("--metrics", type=int, default=None, metavar="PORT",
                   help="serve a live text /metrics-style snapshot of "
                        "the serve.* counters and gauges on this TCP "
                        "port (0 picks a free one and prints it)")
    p.add_argument("--queue-depth", type=int, default=4,
                   help="per-stream bounded epoch queue; a full queue "
                        "pauses that stream's socket reads "
                        "(default: 4)")
    p.add_argument("--max-streams", type=int, default=64,
                   help="active-stream cap; beyond it connects are "
                        "refused with ERROR busy (default: 64)")
    p.add_argument("--max-pending-epochs", type=int, default=256,
                   help="daemon-wide queued-epoch cap; beyond it the "
                        "newest stream is shed (default: 256)")
    p.add_argument("--idle-timeout", type=float, default=30.0,
                   help="seconds of producer silence before a session "
                        "is checkpointed and timed out (default: 30)")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="per-stream epoch-boundary checkpoints under "
                        "DIR; a restarted daemon resumes every "
                        "in-flight stream from here")
    p.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                   help="checkpoint every N committed epochs "
                        "(default: 1)")
    p.add_argument(
        "--summary-json", default=None, metavar="PATH",
        help="write the serve.* metrics snapshot to PATH on drain",
    )
    p.add_argument(
        "--adaptive-epoch", action="store_true",
        help="resize the heartbeat online: an SLO controller folds "
             "producer epochs into larger analysis epochs while the "
             "fold latency budget holds, and shrinks back under "
             "breach or new errors; the REPORT records the cut "
             "stream actually analyzed (see docs/tuning.md)",
    )
    p.add_argument("--slo-target-ms", type=float, default=50.0,
                   metavar="MS",
                   help="adaptive: per-fold latency budget; a breach "
                        "halves the fold factor (default: 50)")
    p.add_argument("--slo-queue-high", type=int, default=3, metavar="N",
                   help="adaptive: queue depth at or above which the "
                        "fold factor doubles (default: 3)")
    p.add_argument("--slo-queue-low", type=int, default=1, metavar="N",
                   help="adaptive: queue depth at or below which the "
                        "fold factor shrinks by one (default: 1)")
    p.add_argument("--slo-min-fold", type=int, default=1, metavar="N",
                   help="adaptive: fold-factor floor (default: 1)")
    p.add_argument("--slo-max-fold", type=int, default=64, metavar="N",
                   help="adaptive: fold-factor ceiling (default: 64)")
    _add_backend_arg(p)
    _add_emit_events_arg(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "push",
        help="stream a version-2 trace to a running serve daemon and "
             "print its report (identical to 'repro check --trace')",
    )
    p.add_argument("--trace", required=True,
                   help="version-2 stream trace file to push")
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="daemon TCP address")
    p.add_argument("--unix", default=None, metavar="PATH",
                   help="daemon Unix socket path")
    p.add_argument("--stream-id", default=None,
                   help="stream identity for resume (default: the "
                        "trace file's basename)")
    p.add_argument(
        "--lifeguard", default="addrcheck",
        choices=("addrcheck", "race", "taintcheck"),
    )
    p.add_argument("--limit", type=int, default=10,
                   help="max reports to print")
    p.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="deterministic transport faults, e.g. "
             "'disconnect=0.1,stall=0.05,stall_s=1.5,seed=11' "
             "(see docs/robustness.md)",
    )
    p.add_argument("--retries", type=int, default=3,
                   help="reconnect-and-resume attempts after transport "
                        "failures (default: 3)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="socket timeout in seconds (default: 30)")
    p.set_defaults(func=cmd_push)

    p = sub.add_parser(
        "stats",
        help="run one instrumented workload and print metrics "
             "(spans, counters, gauges)",
    )
    p.add_argument("--benchmark", default="OCEAN", choices=sorted(BENCHMARKS))
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--events", type=int, default=16384)
    p.add_argument("--epoch-size", type=int, default=512)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--lifeguard", default="addrcheck", choices=("addrcheck", "race")
    )
    p.add_argument(
        "--summary-json", default=None, metavar="PATH",
        help="also write the metrics snapshot to PATH (atomic rename)",
    )
    _add_stream_arg(
        p,
        "run through the streaming pipeline so the "
        "engine.window_resident_blocks gauge and stream counters show "
        "up in the summary",
    )
    p.add_argument(
        "--serve", action="store_true",
        help="route the workload through an in-process serve daemon so "
             "the serve.* counters (streams, backpressure stalls, bytes "
             "ingested, epochs folded) land in the summary",
    )
    p.add_argument(
        "--workers", type=int, default=2,
        help="engine shards for the --serve daemon (default: 2)",
    )
    _add_backend_arg(p)
    _add_resilience_args(p)
    _add_emit_events_arg(p)
    p.set_defaults(func=cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (head).
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
