"""Command-line interface: regenerate the paper's results from a shell.

Examples
--------
::

    python -m repro table1
    python -m repro figure11 --events 32768
    python -m repro figure12
    python -m repro figure13
    python -m repro check --benchmark OCEAN --threads 4 --epoch-size 512
    python -m repro sweep --benchmark OCEAN --threads 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.experiments import figure11, figure12, figure13, table1
from repro.bench.harness import ExperimentConfig, ExperimentSuite
from repro.bench.reporting import render_table
from repro.core.framework import ButterflyEngine
from repro.core.parallel import BACKEND_CHOICES
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.racecheck import ButterflyRaceCheck
from repro.lifeguards.reports import compare_reports
from repro.lifeguards.sequential import SequentialAddrCheck
from repro.sim.lba import LBASystem
from repro.trace.serialize import load_file, save_file
from repro.workloads.registry import BENCHMARKS, get_benchmark


def _suite(args: argparse.Namespace) -> ExperimentSuite:
    return ExperimentSuite(
        ExperimentConfig(
            events_per_thread=args.events,
            thread_counts=tuple(args.threads),
            seed=args.seed,
        )
    )


def _add_suite_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--events", type=int, default=32768,
        help="events per application thread (default: 32768)",
    )
    parser.add_argument(
        "--threads", type=int, nargs="+", default=[2, 4, 8],
        help="application thread counts (default: 2 4 8)",
    )
    parser.add_argument("--seed", type=int, default=1)


def cmd_table1(args: argparse.Namespace) -> int:
    print(table1().render())
    return 0


def cmd_figure11(args: argparse.Namespace) -> int:
    print(figure11(_suite(args)).render())
    return 0


def cmd_figure12(args: argparse.Namespace) -> int:
    print(figure12(_suite(args)).render())
    return 0


def cmd_figure13(args: argparse.Namespace) -> int:
    print(figure13(_suite(args)).render())
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    """Generate a workload trace and save it to disk."""
    program = get_benchmark(args.benchmark).generate(
        args.threads, args.events, seed=args.seed
    )
    save_file(program, args.output)
    print(f"wrote {program.total_instructions} events "
          f"({program.num_threads} threads) to {args.output}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run one lifeguard over a workload (generated or from a file)."""
    if args.trace:
        program = load_file(args.trace)
        args.threads = program.num_threads
    else:
        program = get_benchmark(args.benchmark).generate(
            args.threads, args.events, seed=args.seed
        )
    system = LBASystem()
    if args.lifeguard == "addrcheck":
        run = system.butterfly(program, args.epoch_size, backend=args.backend)
        guard = run.guard
        truth = SequentialAddrCheck(program.preallocated)
        truth.run_order(program)
        precision = compare_reports(
            truth.errors, guard.errors, program.memory_op_count
        )
        print(f"benchmark: {args.benchmark}, {args.threads} threads, "
              f"h={args.epoch_size} events, "
              f"{run.partition.num_epochs} epochs")
        print(f"flags: {precision.flagged}  true: {precision.true_positives}"
              f"  false positives: {precision.false_positives}"
              f"  false negatives: {precision.false_negatives}")
        print(f"false-positive rate: "
              f"{precision.false_positive_rate:.4%} of memory accesses")
    else:
        guard = ButterflyRaceCheck()
        from repro.core.epoch import partition_by_global_order

        partition = partition_by_global_order(program, args.epoch_size)
        with ButterflyEngine(guard, backend=args.backend) as engine:
            engine.run(partition)
        print(f"benchmark: {args.benchmark}, {args.threads} threads, "
              f"h={args.epoch_size} events")
        print(f"potential conflicts: {len(guard.races)}")
        for race in guard.races[: args.limit]:
            print(f"  {race.kind:12s} loc=0x{race.location:x} "
                  f"at {race.body_ref}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Epoch-size sweep for one benchmark (the paper's tuning knob)."""
    program = get_benchmark(args.benchmark).generate(
        args.threads, args.events, seed=args.seed
    )
    truth = SequentialAddrCheck(program.preallocated)
    truth.run_order(program)
    system = LBASystem()
    baseline = system.unmonitored_sequential(program)
    rows = []
    for h in args.sizes:
        run = system.butterfly(program, h, backend=args.backend)
        precision = compare_reports(
            truth.errors, run.guard.errors, program.memory_op_count
        )
        rows.append((
            h,
            run.partition.num_epochs,
            f"{run.result.cycles / baseline.cycles:.2f}x",
            precision.false_positives,
            f"{precision.false_positive_rate:.3%}",
        ))
    print(render_table(
        ("epoch size", "epochs", "slowdown", "false pos", "FP rate"), rows
    ))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Measure wall-clock performance and write a BENCH_*.json report."""
    from repro.bench.perf import run_perf

    if args.repeats < 1:
        print(f"repro bench: error: --repeats must be >= 1, got "
              f"{args.repeats}", file=sys.stderr)
        return 2
    try:
        # Fail before measuring, not minutes later at report time.
        with open(args.output, "w"):
            pass
    except OSError as exc:
        print(f"repro bench: error: cannot write {args.output}: {exc}",
              file=sys.stderr)
        return 2
    report = run_perf(repeats=args.repeats, output_path=args.output)
    core = report["workloads"]["microbench_core"]
    print(f"wrote {args.output}")
    print(f"microbench core: "
          f"{core['speedup_vs_baseline']:.2f}x vs reference serial "
          f"(reference {core['runs']['reference_serial']['best_s']*1e3:.1f} ms, "
          f"optimized {core['runs']['optimized_serial']['best_s']*1e3:.1f} ms)")
    return 0


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", default="serial", choices=BACKEND_CHOICES,
        help="engine execution backend (results are identical; "
             "default: serial)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Butterfly analysis (ASPLOS 2010) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1 parameters").set_defaults(
        func=cmd_table1
    )
    for name, func in (
        ("figure11", cmd_figure11),
        ("figure12", cmd_figure12),
        ("figure13", cmd_figure13),
    ):
        p = sub.add_parser(name, help=f"regenerate {name}")
        _add_suite_args(p)
        p.set_defaults(func=func)

    p = sub.add_parser("generate", help="generate and save a trace")
    p.add_argument("--benchmark", default="OCEAN", choices=sorted(BENCHMARKS))
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--events", type=int, default=16384)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--output", required=True, help="output trace file")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("check", help="run a lifeguard on a workload")
    p.add_argument("--trace", default=None,
                   help="trace file from 'generate' (overrides --benchmark)")
    p.add_argument("--benchmark", default="OCEAN", choices=sorted(BENCHMARKS))
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--events", type=int, default=16384)
    p.add_argument("--epoch-size", type=int, default=512)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--lifeguard", default="addrcheck", choices=("addrcheck", "race")
    )
    p.add_argument("--limit", type=int, default=10,
                   help="max conflicts to print (race mode)")
    _add_backend_arg(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("sweep", help="epoch-size sweep for one benchmark")
    p.add_argument("--benchmark", default="OCEAN", choices=sorted(BENCHMARKS))
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--events", type=int, default=16384)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--sizes", type=int, nargs="+",
        default=[256, 512, 1024, 2048, 4096],
    )
    _add_backend_arg(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "bench", help="measure wall-clock perf and write BENCH_<n>.json"
    )
    p.add_argument("--output", default="BENCH_1.json",
                   help="report path (default: BENCH_1.json)")
    p.add_argument("--repeats", type=int, default=5,
                   help="timing repetitions per configuration (best-of)")
    p.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (head).
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
