"""Command-line interface: regenerate the paper's results from a shell.

Examples
--------
::

    python -m repro table1
    python -m repro figure11 --events 32768
    python -m repro figure12
    python -m repro figure13
    python -m repro check --benchmark OCEAN --threads 4 --epoch-size 512
    python -m repro check --benchmark OCEAN --emit-events events.jsonl
    python -m repro sweep --benchmark OCEAN --threads 4
    python -m repro stats --benchmark OCEAN --threads 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.experiments import figure11, figure12, figure13, table1
from repro.bench.harness import ExperimentConfig, ExperimentSuite
from repro.bench.reporting import render_table
from repro.core.framework import ButterflyEngine
from repro.core.parallel import BACKEND_CHOICES
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.racecheck import ButterflyRaceCheck
from repro.lifeguards.reports import compare_reports
from repro.lifeguards.sequential import SequentialAddrCheck
from repro.obs import NULL_RECORDER, JsonlSink, Recorder
from repro.sim.lba import LBASystem
from repro.trace.serialize import load_file, save_file
from repro.workloads.registry import BENCHMARKS, get_benchmark


def _fail(command: str, message: str) -> int:
    """One-line diagnostic on stderr, conventional exit status 2."""
    print(f"repro {command}: error: {message}", file=sys.stderr)
    return 2


def _open_recorder(
    args: argparse.Namespace, command: str
) -> "tuple[Optional[Recorder], Optional[int]]":
    """Resolve ``--emit-events`` into a recorder, failing fast.

    Returns ``(recorder, None)`` on success -- the shared
    :data:`NULL_RECORDER` when the flag is absent -- or ``(None,
    exit_code)`` when the path is unwritable, so a typo'd directory
    aborts before any analysis work runs.
    """
    path = getattr(args, "emit_events", None)
    if not path:
        return NULL_RECORDER, None
    try:
        sink = JsonlSink.open(path)
    except OSError as exc:
        return None, _fail(command, f"cannot write {path}: {exc}")
    return Recorder(sink=sink), None


def _finish_events(recorder: Recorder, args: argparse.Namespace) -> None:
    """Close the event sink and confirm where the log went."""
    if getattr(args, "emit_events", None):
        recorder.close()
        print(f"wrote {len(recorder.events)} events to {args.emit_events}")


def _suite(args: argparse.Namespace) -> ExperimentSuite:
    return ExperimentSuite(
        ExperimentConfig(
            events_per_thread=args.events,
            thread_counts=tuple(args.threads),
            seed=args.seed,
        )
    )


def _add_suite_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--events", type=int, default=32768,
        help="events per application thread (default: 32768)",
    )
    parser.add_argument(
        "--threads", type=int, nargs="+", default=[2, 4, 8],
        help="application thread counts (default: 2 4 8)",
    )
    parser.add_argument("--seed", type=int, default=1)


def cmd_table1(args: argparse.Namespace) -> int:
    print(table1().render())
    return 0


def cmd_figure11(args: argparse.Namespace) -> int:
    print(figure11(_suite(args)).render())
    return 0


def cmd_figure12(args: argparse.Namespace) -> int:
    print(figure12(_suite(args)).render())
    return 0


def cmd_figure13(args: argparse.Namespace) -> int:
    print(figure13(_suite(args)).render())
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    """Generate a workload trace and save it to disk."""
    program = get_benchmark(args.benchmark).generate(
        args.threads, args.events, seed=args.seed
    )
    try:
        save_file(program, args.output)
    except OSError as exc:
        return _fail("generate", f"cannot write {args.output}: {exc}")
    print(f"wrote {program.total_instructions} events "
          f"({program.num_threads} threads) to {args.output}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run one lifeguard over a workload (generated or from a file)."""
    recorder, rc = _open_recorder(args, "check")
    if recorder is None:
        return rc
    if args.trace:
        try:
            program = load_file(args.trace)
        except OSError as exc:
            return _fail("check", f"cannot read {args.trace}: {exc}")
        args.threads = program.num_threads
    else:
        program = get_benchmark(args.benchmark).generate(
            args.threads, args.events, seed=args.seed
        )
    system = LBASystem()
    if args.lifeguard == "addrcheck":
        run = system.butterfly(
            program, args.epoch_size, backend=args.backend, recorder=recorder
        )
        guard = run.guard
        truth = SequentialAddrCheck(program.preallocated)
        truth.run_order(program)
        precision = compare_reports(
            truth.errors, guard.errors, program.memory_op_count
        )
        print(f"benchmark: {args.benchmark}, {args.threads} threads, "
              f"h={args.epoch_size} events, "
              f"{run.partition.num_epochs} epochs")
        print(f"flags: {precision.flagged}  true: {precision.true_positives}"
              f"  false positives: {precision.false_positives}"
              f"  false negatives: {precision.false_negatives}")
        print(f"false-positive rate: "
              f"{precision.false_positive_rate:.4%} of memory accesses")
    else:
        guard = ButterflyRaceCheck()
        from repro.core.epoch import partition_by_global_order

        partition = partition_by_global_order(program, args.epoch_size)
        with ButterflyEngine(
            guard, backend=args.backend, recorder=recorder
        ) as engine:
            engine.run(partition)
        print(f"benchmark: {args.benchmark}, {args.threads} threads, "
              f"h={args.epoch_size} events")
        print(f"potential conflicts: {len(guard.races)}")
        for race in guard.races[: args.limit]:
            print(f"  {race.kind:12s} loc=0x{race.location:x} "
                  f"at {race.body_ref}")
    _finish_events(recorder, args)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Epoch-size sweep for one benchmark (the paper's tuning knob)."""
    recorder, rc = _open_recorder(args, "sweep")
    if recorder is None:
        return rc
    program = get_benchmark(args.benchmark).generate(
        args.threads, args.events, seed=args.seed
    )
    truth = SequentialAddrCheck(program.preallocated)
    truth.run_order(program)
    system = LBASystem()
    baseline = system.unmonitored_sequential(program)
    rows = []
    for h in args.sizes:
        if recorder.enabled:
            recorder.event("sweep.config", epoch_size=h)
        run = system.butterfly(
            program, h, backend=args.backend, recorder=recorder
        )
        precision = compare_reports(
            truth.errors, run.guard.errors, program.memory_op_count
        )
        rows.append((
            h,
            run.partition.num_epochs,
            f"{run.result.cycles / baseline.cycles:.2f}x",
            precision.false_positives,
            f"{precision.false_positive_rate:.3%}",
        ))
    print(render_table(
        ("epoch size", "epochs", "slowdown", "false pos", "FP rate"), rows
    ))
    _finish_events(recorder, args)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Measure wall-clock performance and write a BENCH_*.json report."""
    from repro.bench.perf import run_perf

    if args.repeats < 1:
        return _fail("bench", f"--repeats must be >= 1, got {args.repeats}")
    # Fail before measuring, not minutes later at report time.
    for path in (args.output, args.emit_events):
        if path is None:
            continue
        try:
            with open(path, "w"):
                pass
        except OSError as exc:
            return _fail("bench", f"cannot write {path}: {exc}")
    report = run_perf(
        repeats=args.repeats,
        output_path=args.output,
        events_path=args.emit_events,
    )
    core = report["workloads"]["microbench_core"]
    print(f"wrote {args.output}")
    if args.emit_events:
        print(f"wrote event log to {args.emit_events}")
    print(f"microbench core: "
          f"{core['speedup_vs_baseline']:.2f}x vs reference serial "
          f"(reference {core['runs']['reference_serial']['best_s']*1e3:.1f} ms, "
          f"optimized {core['runs']['optimized_serial']['best_s']*1e3:.1f} ms)")
    obs = report["workloads"]["observability_overhead"]
    print(f"observability overhead: {obs['overhead_ratio']:.3f}x when enabled")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Run one instrumented workload and print the metrics summary."""
    from repro.core.epoch import partition_by_global_order, partition_fixed

    recorder, rc = _open_recorder(args, "stats")
    if recorder is None:
        return rc
    if not recorder.enabled:
        recorder = Recorder()  # stats is pointless without a live recorder
    program = get_benchmark(args.benchmark).generate(
        args.threads, args.events, seed=args.seed
    )
    if args.lifeguard == "addrcheck":
        guard = ButterflyAddrCheck(initially_allocated=program.preallocated)
    else:
        guard = ButterflyRaceCheck()
    if program.true_order is not None:
        partition = partition_by_global_order(program, args.epoch_size)
    else:
        partition = partition_fixed(program, args.epoch_size)
    with ButterflyEngine(
        guard, backend=args.backend, recorder=recorder
    ) as engine:
        engine.run(partition)

    snap = recorder.snapshot()
    print(f"benchmark: {args.benchmark}, {args.threads} threads, "
          f"h={args.epoch_size} events, backend={args.backend}, "
          f"lifeguard={args.lifeguard}")
    print(f"events recorded: {len(recorder.events)}")
    if snap["spans"]:
        print("\nspans (aggregated):")
        rows = [
            (name, str(s["count"]),
             f"{s['total_ns'] / 1e6:.2f}",
             f"{s['total_ns'] / s['count'] / 1e3:.1f}",
             f"{s['max_ns'] / 1e3:.1f}")
            for name, s in sorted(snap["spans"].items())
        ]
        print(render_table(
            ("span", "count", "total ms", "mean us", "max us"), rows
        ))
    if snap["counters"]:
        print("\ncounters:")
        for name, value in sorted(snap["counters"].items()):
            print(f"  {name} = {value}")
    if snap["gauges"]:
        print("\ngauges:")
        for name, value in sorted(snap["gauges"].items()):
            print(f"  {name} = {value}")
    _finish_events(recorder, args)
    return 0


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", default="serial", choices=BACKEND_CHOICES,
        help="engine execution backend (results are identical; "
             "default: serial)",
    )


def _add_emit_events_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--emit-events", default=None, metavar="PATH",
        help="write the observability event log to PATH as JSON lines",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Butterfly analysis (ASPLOS 2010) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1 parameters").set_defaults(
        func=cmd_table1
    )
    for name, func in (
        ("figure11", cmd_figure11),
        ("figure12", cmd_figure12),
        ("figure13", cmd_figure13),
    ):
        p = sub.add_parser(name, help=f"regenerate {name}")
        _add_suite_args(p)
        p.set_defaults(func=func)

    p = sub.add_parser("generate", help="generate and save a trace")
    p.add_argument("--benchmark", default="OCEAN", choices=sorted(BENCHMARKS))
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--events", type=int, default=16384)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--output", required=True, help="output trace file")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("check", help="run a lifeguard on a workload")
    p.add_argument("--trace", default=None,
                   help="trace file from 'generate' (overrides --benchmark)")
    p.add_argument("--benchmark", default="OCEAN", choices=sorted(BENCHMARKS))
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--events", type=int, default=16384)
    p.add_argument("--epoch-size", type=int, default=512)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--lifeguard", default="addrcheck", choices=("addrcheck", "race")
    )
    p.add_argument("--limit", type=int, default=10,
                   help="max conflicts to print (race mode)")
    _add_backend_arg(p)
    _add_emit_events_arg(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("sweep", help="epoch-size sweep for one benchmark")
    p.add_argument("--benchmark", default="OCEAN", choices=sorted(BENCHMARKS))
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--events", type=int, default=16384)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--sizes", type=int, nargs="+",
        default=[256, 512, 1024, 2048, 4096],
    )
    _add_backend_arg(p)
    _add_emit_events_arg(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "bench", help="measure wall-clock perf and write BENCH_<n>.json"
    )
    p.add_argument("--output", default="BENCH_1.json",
                   help="report path (default: BENCH_1.json)")
    p.add_argument("--repeats", type=int, default=5,
                   help="timing repetitions per configuration (best-of)")
    _add_emit_events_arg(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "stats",
        help="run one instrumented workload and print metrics "
             "(spans, counters, gauges)",
    )
    p.add_argument("--benchmark", default="OCEAN", choices=sorted(BENCHMARKS))
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--events", type=int, default=16384)
    p.add_argument("--epoch-size", type=int, default=512)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--lifeguard", default="addrcheck", choices=("addrcheck", "race")
    )
    _add_backend_arg(p)
    _add_emit_events_arg(p)
    p.set_defaults(func=cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (head).
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
