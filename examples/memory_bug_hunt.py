#!/usr/bin/env python
"""Memory-bug hunt: butterfly AddrCheck on a realistic parallel workload.

Generates an OCEAN-style grid solver run (per-iteration boundary-buffer
churn across threads), injects real memory bugs into one thread, and
shows the paper's central trade-off:

- every injected bug is caught (zero false negatives, Theorem 6.1);
- a few *safe* cross-thread handoffs near epoch boundaries are flagged
  too (false positives), and their number grows with the epoch size.

Run:  python examples/memory_bug_hunt.py
"""

import random

from repro.core.epoch import partition_by_global_order
from repro.core.framework import ButterflyEngine
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.reports import compare_reports
from repro.lifeguards.sequential import SequentialAddrCheck
from repro.trace.events import Instr
from repro.workloads.registry import get_benchmark

THREADS = 4
EVENTS_PER_THREAD = 8192

print("generating an OCEAN-style trace "
      f"({THREADS} threads x {EVENTS_PER_THREAD} events)...")
program = get_benchmark("OCEAN").generate(THREADS, EVENTS_PER_THREAD, seed=42)

# -- Inject three classic heap bugs into thread 0 ------------------------
# The buggy events touch addresses no allocation ever covers, so they
# are errors under *every* interleaving; appending keeps the recorded
# ground-truth order valid.
bugs = [
    Instr.read(0xDEAD),          # access to never-allocated memory
    Instr.free(0xBEEF),          # free of unallocated memory
    Instr.write(0xFEED),         # wild store to unallocated memory
]
trace0 = program.threads[0].instrs
for bug in bugs:
    program.true_order.append((0, len(trace0)))
    trace0.append(bug)
program.timesliced_order = None
program.validate()

# -- Ground truth: sequential AddrCheck on the recorded interleaving ----
truth = SequentialAddrCheck(program.preallocated)
truth.run_order(program)
print(f"ground truth: {len(truth.errors)} true error events")

# -- Butterfly analysis at two epoch sizes --------------------------------
for h in (512, 4096):
    partition = partition_by_global_order(program, h)
    guard = ButterflyAddrCheck(initially_allocated=program.preallocated)
    ButterflyEngine(guard).run(partition)
    precision = compare_reports(
        truth.errors, guard.errors, program.memory_op_count
    )
    print(f"\nepoch size h={h} events ({partition.num_epochs} epochs):")
    print(f"  flagged events:   {precision.flagged}")
    print(f"  true positives:   {precision.true_positives}")
    print(f"  false positives:  {precision.false_positives} "
          f"({precision.false_positive_rate:.2%} of memory accesses)")
    print(f"  false negatives:  {precision.false_negatives}  <- always 0")
    assert precision.false_negatives == 0

print("\nevery injected bug is caught at both epoch sizes; the larger")
print("epoch pays with more false positives on the safe buffer handoffs.")
