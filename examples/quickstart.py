#!/usr/bin/env python
"""Quickstart: butterfly analysis in five minutes.

Builds a tiny two-thread trace with a cross-thread use-after-free,
partitions it into uncertainty epochs, and runs the butterfly AddrCheck
lifeguard -- no inter-thread dependence information required.

Run:  python examples/quickstart.py
"""

from repro import ButterflyAddrCheck, Instr, TraceProgram, partition_fixed
from repro.core.framework import ButterflyEngine

# -- 1. A parallel execution trace, one event sequence per thread -------
#
# Thread 0 allocates a buffer, writes it, and frees it.
# Thread 1 reads the buffer much later -- after the free has become
# globally visible -- which is a use-after-free on every possible
# interleaving.

thread0 = [
    Instr.malloc(0x100, size=4),   # allocate [0x100, 0x104)
    Instr.write(0x100),
    Instr.write(0x101),
    Instr.free(0x100, size=4),     # gone!
    Instr.nop(),
    Instr.nop(),
    Instr.nop(),
    Instr.nop(),
]
thread1 = [
    Instr.nop(),
    Instr.nop(),
    Instr.nop(),
    Instr.nop(),
    Instr.nop(),
    Instr.nop(),
    Instr.read(0x101),             # use after free, strictly later
    Instr.nop(),
]
program = TraceProgram.from_lists(thread0, thread1)

# -- 2. Heartbeats cut the traces into epochs ---------------------------
#
# Instructions more than one epoch apart are strictly ordered;
# instructions in adjacent epochs of different threads are potentially
# concurrent.  Here: epochs of 2 events.

partition = partition_fixed(program, epoch_size=2)
print(f"{partition.num_epochs} epochs x {partition.num_threads} threads")

# -- 3. Run the lifeguard ------------------------------------------------

guard = ButterflyAddrCheck()
stats = ButterflyEngine(guard).run(partition)

print(f"analyzed {stats.first_pass_instructions} events in two passes")
print(f"errors flagged: {len(guard.errors)}")
for report in guard.errors:
    print(f"  {report.kind.value:20s} location=0x{report.location:x} "
          f"at (thread, index)={report.ref}")

assert any(r.location == 0x101 for r in guard.errors), "must catch the UAF"
print("\nthe use-after-free was caught without any dependence tracking.")
