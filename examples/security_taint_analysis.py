#!/usr/bin/env python
"""Security monitoring: butterfly TaintCheck on a parallel server.

Models a multi-threaded server where one thread receives untrusted
network input, worker threads copy and transform it, and a control
transfer eventually depends on it -- the overwrite-exploit pattern
TaintCheck exists to catch.  Shows:

1. cross-thread taint propagation caught through the wings with no
   dependence tracking;
2. sanitization (untaint) respected when it is provably ordered;
3. the memory-model knob: the relaxed-mode Check algorithm flags a
   value-zigzag that sequential consistency rules out (the paper's
   Figure 2 discussion).

Run:  python examples/security_taint_analysis.py
"""

from repro import ButterflyTaintCheck, Instr, TraceProgram, partition_fixed
from repro.core.framework import ButterflyEngine

# Abstract locations for the scenario.
NET_BUF = 0x10        # network receive buffer
PARSED = 0x20         # parsed request field
LENGTH = 0x30         # length derived from the request
JUMP_TABLE = 0x40     # indirect-call slot computed from LENGTH
SAFE_CONST = 0x50     # trusted configuration value


def banner(title):
    print()
    print(f"== {title} ==")


# -- Scenario 1: exploit caught across threads ---------------------------
banner("cross-thread taint flow into a jump target")

receiver = [
    Instr.taint(NET_BUF),            # recv() marks the buffer untrusted
    Instr.nop(),
    Instr.nop(),
    Instr.nop(),
]
worker = [
    Instr.assign(PARSED, NET_BUF),    # parse the request
    Instr.assign(LENGTH, PARSED),     # derive a length
    Instr.assign(JUMP_TABLE, LENGTH, SAFE_CONST),  # index computation
    Instr.jump(JUMP_TABLE),           # indirect call -- exploitable!
]
program = TraceProgram.from_lists(receiver, worker)
guard = ButterflyTaintCheck()
ButterflyEngine(guard).run(partition_fixed(program, 2))
for r in guard.errors:
    print(f"  ALERT: {r.kind.value} via location 0x{r.location:x} at {r.ref}")
assert len(guard.errors) == 1

# -- Scenario 2: provably ordered sanitization is respected ---------------
banner("sanitized input, strictly ordered: no alarm")

receiver = [
    Instr.taint(NET_BUF),
    Instr.assign(PARSED, NET_BUF),
    Instr.untaint(PARSED),           # validate + sanitize
    Instr.nop(), Instr.nop(), Instr.nop(), Instr.nop(), Instr.nop(),
]
worker = [
    Instr.nop(), Instr.nop(), Instr.nop(), Instr.nop(),
    Instr.nop(), Instr.nop(),
    Instr.assign(JUMP_TABLE, PARSED),  # two+ epochs after sanitization
    Instr.jump(JUMP_TABLE),
]
program = TraceProgram.from_lists(receiver, worker)
guard = ButterflyTaintCheck()
ButterflyEngine(guard).run(partition_fixed(program, 2))
print(f"  alarms: {len(guard.errors)} (sanitization visible in the SOS)")
assert len(guard.errors) == 0

# -- Scenario 3: the memory-model knob ------------------------------------
banner("relaxed vs. sequentially consistent Check termination")

# Thread 0 executes b := a THEN a := c (program order).  Thread 1 taints
# c concurrently and then uses b.  Under SC, b cannot inherit c's taint
# (it would need a's *later* value); some relaxed machines allow it.
a, b, c = 0x61, 0x62, 0x63
thread0 = [Instr.assign(b, a), Instr.assign(a, c)]
thread1 = [Instr.taint(c), Instr.jump(b)]
program = TraceProgram.from_lists(thread0, thread1)

for mode in ("relaxed", "sc"):
    guard = ButterflyTaintCheck(mode=mode)
    ButterflyEngine(guard).run(partition_fixed(program, 2))
    verdict = "FLAGGED" if guard.errors else "silent"
    print(f"  mode={mode:8s} -> {verdict}")

print("\nthe relaxed mode conservatively covers reorderings that a")
print("sequentially consistent machine could never produce.")
