#!/usr/bin/env python
"""Beyond the paper's two lifeguards: conflict detection on the window.

The paper closes by arguing butterfly analysis applies to "a wide
variety of interesting dynamic program monitoring tools".  This example
builds one in ~100 lines of framework code (`repro.lifeguards.racecheck`):
a happens-before-free conflict detector where the butterfly window *is*
the happens-before relation -- no locks, vector clocks, or dependence
tracking.

Shown here:
- a textbook unsynchronized counter increment is caught;
- phase-disciplined sharing (handoffs separated by two epochs) stays
  silent;
- on the OCEAN workload, the epoch size controls how much of the
  boundary-exchange traffic is reported as potentially racy.

Run:  python examples/race_detection.py
"""

from repro import (
    ButterflyRaceCheck,
    Instr,
    TraceProgram,
    partition_by_global_order,
    partition_fixed,
)
from repro.core.framework import ButterflyEngine
from repro.workloads.registry import get_benchmark

COUNTER = 0x900

print("== unsynchronized counter increment ==")
# Both threads read-modify-write the same counter with no ordering.
thread0 = [Instr.read(COUNTER), Instr.write(COUNTER)]
thread1 = [Instr.read(COUNTER), Instr.write(COUNTER)]
program = TraceProgram.from_lists(thread0, thread1)
guard = ButterflyRaceCheck()
ButterflyEngine(guard).run(partition_fixed(program, 2))
for race in guard.races:
    print(f"  {race.kind} on 0x{race.location:x} at {race.body_ref}")
assert guard.races, "the lost-update race must be reported"

print("\n== two-epoch separated handoff: provably ordered ==")
producer = [Instr.write(COUNTER)] + [Instr.nop()] * 7
consumer = [Instr.nop()] * 7 + [Instr.read(COUNTER)]
program = TraceProgram.from_lists(producer, consumer)
guard = ButterflyRaceCheck()
ButterflyEngine(guard).run(partition_fixed(program, 2))
print(f"  conflicts: {len(guard.races)}")
assert not guard.races

print("\n== OCEAN boundary exchanges vs. the epoch size ==")
program = get_benchmark("OCEAN").generate(4, 8192, seed=11)
for h in (256, 1024, 4096):
    guard = ButterflyRaceCheck()
    ButterflyEngine(guard).run(partition_by_global_order(program, h))
    print(f"  h={h:5d}: {len(guard.races):5d} potential conflicts")

print("\nsmall epochs prove the phase-separated exchanges ordered;")
print("large epochs surface them as potential races -- the same knob")
print("that drives AddrCheck's false positives in Figure 13.")
