#!/usr/bin/env python
"""Epoch-size tuning: the paper's central performance/accuracy knob.

Sweeps the heartbeat interval for one benchmark and prints the
trade-off the paper's Figures 12 and 13 chart: larger epochs amortize
the per-epoch barriers and re-checks (faster) but widen the window of
potential concurrency (more false positives) -- with OCEAN's
boundary-exchange churn as the showcase.

Run:  python examples/epoch_size_tuning.py
"""

from repro.bench.reporting import render_table
from repro.lifeguards.reports import compare_reports
from repro.lifeguards.sequential import SequentialAddrCheck
from repro.sim.lba import LBASystem
from repro.workloads.registry import get_benchmark

THREADS = 4
EVENTS_PER_THREAD = 16384

print(f"OCEAN, {THREADS} threads, {EVENTS_PER_THREAD} events/thread")
program = get_benchmark("OCEAN").generate(THREADS, EVENTS_PER_THREAD, seed=1)

truth = SequentialAddrCheck(program.preallocated)
truth.run_order(program)
assert len(truth.errors) == 0, "the generated run is bug-free"

system = LBASystem()
baseline = system.unmonitored_sequential(program)

rows = []
for h in (256, 512, 1024, 2048, 4096, 8192):
    run = system.butterfly(program, h)
    precision = compare_reports(
        truth.errors, run.guard.errors, program.memory_op_count
    )
    rows.append((
        h,
        run.partition.num_epochs,
        f"{run.result.cycles / baseline.cycles:.2f}x",
        precision.false_positives,
        f"{precision.false_positive_rate:.2%}",
    ))

print()
print(render_table(
    ("epoch size", "epochs", "slowdown", "false pos", "FP rate"), rows
))
print()
print("pick the knee: big enough to amortize barriers, small enough")
print("that cross-thread handoffs land two epochs apart and stay quiet.")
