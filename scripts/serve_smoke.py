#!/usr/bin/env python
"""CI smoke for the serve daemon (the ``serve-smoke`` job).

Scenario, end to end against a *real* ``repro serve`` subprocess:

1. Eight concurrent trace streams push to one daemon.  Three of them
   misbehave: one rolls disconnect-mid-epoch dice, one rolls
   corrupt-bytes dice, one stalls past the daemon's idle timeout.  All
   eight must still complete (the faulty ones through resume/retry),
   and every completed stream's REPORT must be bit-identical to what
   offline ``repro check`` computes over the same trace file -- window
   high-water within the 3-epochs-by-threads bound included.
2. ``repro push`` and ``repro check --trace`` CLI outputs over the same
   trace must diff clean, byte for byte.
3. A daemon is SIGKILLed mid-stream, restarted on the same checkpoint
   directory, and the producer reconnects: the daemon must resume from
   a committed epoch boundary (no re-folded epochs) and the final
   report must match the uninterrupted run's.
4. SIGTERM must drain gracefully: exit 0, ``serve.*`` counters in the
   summary JSON.
5. A daemon started with ``--metrics 0`` serves a live Prometheus-style
   text page: every tentpole ``serve.*`` family present, values moving
   with real traffic.

``--shard-backend {thread,process}`` runs the whole scenario against
the chosen shard backend (CI runs the script once per backend); the
daemon's report bytes must not depend on the choice.

Run from the repository root with ``PYTHONPATH=src``:

    python scripts/serve_smoke.py [--shard-backend process]
"""

import argparse
import json
import os
import pathlib
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.epoch import partition_auto  # noqa: E402
from repro.core.framework import ButterflyEngine  # noqa: E402
from repro.resilience.checkpoint import load_checkpoint  # noqa: E402
from repro.resilience.faults import FaultPlan  # noqa: E402
from repro.resilience.supervisor import RetryPolicy  # noqa: E402
from repro.serve import (  # noqa: E402
    StreamClient,
    build_report,
    make_hello,
)
from repro.serve.client import read_frame_sync  # noqa: E402
from repro.serve.protocol import (  # noqa: E402
    FRAME_ACK,
    FRAME_EPOCH,
    FRAME_HELLO,
    encode_frame,
    encode_json_frame,
)
from repro.serve.server import make_guard  # noqa: E402
from repro.trace.generator import simulated_alloc_program  # noqa: E402
from repro.trace.serialize import (  # noqa: E402
    iter_load,
    save_stream_file,
    stream_header,
)

#: Quick-but-nonzero backoff: an instantly reconnecting producer can
#: race the daemon's reaping of its own dead session (ERROR busy, a
#: documented retryable), so give the loop a beat between attempts.
FAST = RetryPolicy(backoff_base=0.05, backoff_max=0.2)

STREAMS = 8
IDLE_TIMEOUT = 0.5

#: Set by main() from --shard-backend; every daemon the script starts
#: runs on this backend.
SHARD_BACKEND = "thread"


def log(message):
    print(f"serve-smoke: {message}", flush=True)


def fail(message):
    print(f"serve-smoke: FAIL: {message}", flush=True)
    sys.exit(1)


def write_trace(path, threads, events, seed):
    prog = simulated_alloc_program(
        random.Random(seed), num_threads=threads, total_events=events
    )
    save_stream_file(partition_auto(prog, 8), str(path))


def offline_report(path, stream_id, lifeguard):
    """What offline ``repro check`` computes over the same file."""
    with open(path) as fp:
        header = stream_header(fp, str(path))
    guard = make_guard(lifeguard, frozenset(header["preallocated"]))
    engine = ButterflyEngine(guard)
    try:
        engine.run_source(iter_load(str(path)))
    finally:
        engine.close()
    hello = make_hello(
        stream_id, header["threads"], header["epochs"],
        header["preallocated"], lifeguard,
    )
    return json.loads(
        json.dumps(build_report(stream_id, hello, engine, guard))
    )


def start_daemon(sock_path, ckpt_dir, summary_path=None, metrics=False):
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--unix", str(sock_path),
        "--checkpoint-dir", str(ckpt_dir),
        "--queue-depth", "2",
        "--idle-timeout", str(IDLE_TIMEOUT),
        "--shard-backend", SHARD_BACKEND,
    ]
    if summary_path is not None:
        argv += ["--summary-json", str(summary_path)]
    if metrics:
        argv += ["--metrics", "0"]
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, cwd=str(REPO_ROOT), env=env,
    )
    banner = proc.stdout.readline()
    if "serving on unix" not in banner:
        fail(f"daemon did not start: {banner!r} / {proc.stderr.read()}")
    if not metrics:
        return proc
    metrics_banner = proc.stdout.readline()
    if not metrics_banner.startswith("metrics on "):
        fail(f"no metrics banner: {metrics_banner!r}")
    host, _, port = metrics_banner[len("metrics on "):].strip().rpartition(":")
    return proc, (host, int(port))


def phase_concurrent_streams(tmp, summary_path):
    """Phase 1+2+4: eight streams (three faulty), CLI diff, SIGTERM."""
    sock = tmp / "serve.sock"
    proc = start_daemon(sock, tmp / "ck", summary_path)
    address = ("unix", str(sock))

    plans = {
        # One producer disconnects mid-epoch...
        "stream-3": FaultPlan(disconnect=0.10, seed=3),
        # ...one ships frames with corrupted payload bytes...
        "stream-5": FaultPlan(corrupt_bytes=0.08, seed=5),
        # ...and one stalls past the daemon's idle timeout.
        "stream-6": FaultPlan(
            stall=0.15, stall_s=IDLE_TIMEOUT * 2, seed=6
        ),
    }
    traces, results, errors = {}, {}, []
    for i in range(STREAMS):
        sid = f"stream-{i}"
        path = tmp / f"{sid}.stream.jsonl"
        write_trace(path, threads=2 + i % 3, events=200, seed=i)
        traces[sid] = (path, "taintcheck" if i % 4 == 3 else "addrcheck")

    def push(sid):
        path, lifeguard = traces[sid]
        try:
            results[sid] = StreamClient(
                address, str(path), sid, lifeguard=lifeguard,
                plan=plans.get(sid), policy=FAST, retries=60,
            ).push()
        except Exception as exc:
            errors.append(f"{sid}: {exc}")

    workers = [
        threading.Thread(target=push, args=(sid,)) for sid in traces
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    if errors:
        fail("streams failed: " + "; ".join(errors))

    for sid, (path, lifeguard) in traces.items():
        expected = offline_report(path, sid, lifeguard)
        if results[sid] != expected:
            fail(f"{sid}: daemon report diverged from offline check")
        bound = 3 * expected["threads"]
        if results[sid]["window_high_water"] > bound:
            fail(
                f"{sid}: window high-water "
                f"{results[sid]['window_high_water']} over bound {bound}"
            )
    log(f"{STREAMS} concurrent streams (3 faulty) all match offline")

    # CLI diff: `repro push` output == `repro check --trace` output.
    path, _ = traces["stream-0"]
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    push_out = subprocess.run(
        [sys.executable, "-m", "repro", "push", "--trace", str(path),
         "--unix", str(sock), "--stream-id", str(path)],
        capture_output=True, text=True, cwd=str(REPO_ROOT), env=env,
    )
    check_out = subprocess.run(
        [sys.executable, "-m", "repro", "check", "--trace", str(path)],
        capture_output=True, text=True, cwd=str(REPO_ROOT), env=env,
    )
    if push_out.returncode not in (0, 1):
        fail(f"repro push errored: {push_out.stderr}")
    if push_out.stdout != check_out.stdout:
        fail(
            "repro push and repro check disagree:\n"
            f"--- push ---\n{push_out.stdout}"
            f"--- check ---\n{check_out.stdout}"
        )
    log("repro push output diffs clean against repro check")

    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=60)
    if proc.returncode != 0:
        fail(f"SIGTERM drain exited {proc.returncode}: {err}")
    if "drained:" not in out:
        fail(f"no drain farewell in output: {out!r}")
    summary = json.loads(summary_path.read_text())
    counters = summary["counters"]
    # stream-0 was pushed twice (client + CLI diff).
    if counters.get("serve.streams_completed", 0) < STREAMS + 1:
        fail(f"unexpected completion count: {counters}")
    for needed in ("serve.streams_accepted", "serve.epochs_folded",
                   "serve.bytes_ingested"):
        if counters.get(needed, 0) <= 0:
            fail(f"counter {needed} missing from summary: {counters}")
    log(f"SIGTERM drained cleanly; {counters['serve.epochs_folded']} "
        "epochs folded")


def phase_sigkill_resume(tmp):
    """Phase 3: SIGKILL mid-stream, restart, resume, identical report."""
    trace = tmp / "kill.stream.jsonl"
    write_trace(trace, threads=3, events=400, seed=99)
    ck = tmp / "kill-ck"
    proc = start_daemon(tmp / "kill-a.sock", ck)
    address = ("unix", str(tmp / "kill-a.sock"))

    with open(trace) as fp:
        header = stream_header(fp, str(trace))
        lines = [fp.readline() for _ in range(6)]
    hello = make_hello(
        "victim", header["threads"], header["epochs"],
        header["preallocated"], "addrcheck",
    )
    import socket as socketlib

    sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(str(tmp / "kill-a.sock"))
    sock.sendall(encode_json_frame(FRAME_HELLO, hello))
    ftype, _ = read_frame_sync(sock)
    if ftype != FRAME_ACK:
        fail("no ACK from kill-phase daemon")
    for line in lines:
        sock.sendall(encode_frame(FRAME_EPOCH, line.strip().encode()))

    committed = 0
    deadline = time.monotonic() + 15.0
    while committed < 2:
        if time.monotonic() > deadline:
            fail("no checkpoint committed before the kill")
        for path in ck.glob("*.ckpt"):
            try:
                committed = load_checkpoint(str(path)).next_epoch
            except Exception:
                pass
        time.sleep(0.02)
    proc.kill()  # SIGKILL: no drain, no goodbye
    proc.wait(timeout=30)
    sock.close()
    log(f"daemon SIGKILLed with epoch {committed} committed")

    proc = start_daemon(tmp / "kill-b.sock", ck)
    try:
        client = StreamClient(
            ("unix", str(tmp / "kill-b.sock")), str(trace), "victim",
            policy=FAST, retries=3,
        )
        served = client.push()
        resumed_from = client.last_ack["resume_epoch"]
        if resumed_from < committed:
            fail(
                f"restarted daemon resumed from {resumed_from}, "
                f"before the committed epoch {committed}: epochs were "
                "re-folded"
            )
        expected = offline_report(trace, "victim", "addrcheck")
        if served != expected:
            fail("resumed report diverged from the uninterrupted run")
    finally:
        proc.terminate()
        proc.wait(timeout=30)
    log(
        f"restarted daemon resumed at epoch {resumed_from}; report "
        "matches uninterrupted run"
    )


def phase_metrics(tmp):
    """Phase 5: the --metrics listener serves live serve.* families."""
    trace = tmp / "metrics.stream.jsonl"
    write_trace(trace, threads=2, events=200, seed=17)
    sock = tmp / "metrics.sock"
    proc, (host, port) = start_daemon(
        sock, tmp / "metrics-ck", metrics=True
    )
    url = f"http://{host}:{port}/metrics"
    try:
        StreamClient(
            ("unix", str(sock)), str(trace), "observed",
            policy=FAST, retries=5,
        ).push()
        with urllib.request.urlopen(url, timeout=10) as response:
            if response.status != 200:
                fail(f"metrics endpoint returned {response.status}")
            content_type = response.headers.get("Content-Type", "")
            if not content_type.startswith("text/plain"):
                fail(f"metrics content type {content_type!r}")
            body = response.read().decode("utf-8")
    finally:
        proc.terminate()
        proc.communicate(timeout=60)
    samples = dict(
        line.split(" ", 1)
        for line in body.splitlines()
        if line and not line.startswith("#")
    )
    for family in (
        "repro_serve_streams_active",
        "repro_serve_pending_epochs",
        "repro_serve_epochs_folded",
        "repro_serve_streams_completed",
        "repro_serve_workers",
        "repro_serve_shard_depth_0",
    ):
        if family not in samples:
            fail(f"metrics page missing {family}: {sorted(samples)}")
    if float(samples["repro_serve_streams_completed"]) < 1:
        fail(f"metrics page shows no completed stream: {samples}")
    log(
        f"metrics endpoint live at {url}: "
        f"{samples['repro_serve_epochs_folded']} epochs folded, "
        f"{samples['repro_serve_workers']} shards"
    )


def main():
    global SHARD_BACKEND
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--shard-backend", choices=("thread", "process"),
        default="thread",
        help="shard backend every daemon in the scenario runs on",
    )
    args = parser.parse_args()
    SHARD_BACKEND = args.shard_backend
    log(f"shard backend: {SHARD_BACKEND}")
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp_name:
        tmp = pathlib.Path(tmp_name)
        phase_concurrent_streams(tmp, tmp / "summary.json")
        phase_sigkill_resume(tmp)
        phase_metrics(tmp)
    log("OK")


if __name__ == "__main__":
    main()
