"""Disabled-observability overhead budget (PR acceptance criterion).

The recorder defaults to :data:`repro.obs.NULL_RECORDER` everywhere,
and instrumented hot paths branch on ``recorder.enabled`` at epoch or
batch granularity -- so with observability off, the engine must run the
microbench-core workload within 2% of the pre-observability baseline
recorded in ``BENCH_1.json``.

Timing-sensitive: skipped under ``REPRO_CI=1`` (shared CI runners make
single-digit-percent budgets meaningless there); the interleaved
comparison against the live re-measurement keeps the check meaningful
on a noisy-but-consistent host.
"""

import json
import pathlib
import random
import time

import pytest

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.obs import NULL_RECORDER, Recorder
from repro.trace.generator import simulated_alloc_program

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_1.json"

#: The acceptance budget: disabled-path slowdown vs the recorded
#: pre-observability baseline.
BUDGET = 1.02


@pytest.fixture(scope="module")
def core_partition():
    from repro.bench.perf import (
        CORE_EPOCH,
        CORE_EVENTS,
        CORE_LOCATIONS,
        CORE_SEED,
        CORE_THREADS,
    )

    program = simulated_alloc_program(
        random.Random(CORE_SEED),
        num_threads=CORE_THREADS,
        total_events=CORE_EVENTS,
        num_locations=CORE_LOCATIONS,
    )
    return partition_fixed(program, CORE_EPOCH)


def _best_of(fn, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_null_recorder_is_the_default(core_partition):
    engine = ButterflyEngine(ButterflyAddrCheck())
    assert engine.recorder is NULL_RECORDER
    assert not engine.recorder.enabled


def test_disabled_overhead_within_budget(timing_guard, core_partition):
    """Optimized-serial with the default NULL recorder must stay within
    ``BUDGET`` of the BENCH_1.json ``optimized_serial`` baseline.

    Machines drift between sessions, so the recorded wall time is
    rescaled by re-measuring the *reference* configuration (untouched
    by the observability layer) on this host first; the budget is then
    applied to the calibrated expectation.
    """
    recorded = json.loads(BASELINE.read_text())
    core = recorded["workloads"]["microbench_core"]["runs"]
    recorded_opt = core["optimized_serial"]["best_s"]
    recorded_ref = core["reference_serial"]["best_s"]

    def run_reference():
        with ButterflyEngine(ButterflyAddrCheck(optimized=False)) as e:
            e.run(core_partition)

    def run_optimized():
        with ButterflyEngine(ButterflyAddrCheck(optimized=True)) as e:
            e.run(core_partition)

    # Calibrate host speed on the reference config, then hold the
    # optimized config (the instrumented hot path) to the budget.
    host_ref = _best_of(run_reference)
    calibrated = recorded_opt * (host_ref / recorded_ref)
    host_opt = _best_of(run_optimized)
    assert host_opt <= calibrated * BUDGET, (
        f"disabled-observability path too slow: {host_opt * 1e3:.2f} ms "
        f"vs calibrated budget {calibrated * BUDGET * 1e3:.2f} ms "
        f"(recorded {recorded_opt * 1e3:.2f} ms, host speed factor "
        f"{host_ref / recorded_ref:.2f})"
    )


def test_enabled_recorder_changes_no_results(core_partition):
    """Observability must be read-only: error logs and engine stats are
    identical with the recorder on and off."""
    off = ButterflyAddrCheck()
    with ButterflyEngine(off) as engine:
        stats_off = engine.run(core_partition)
    on = ButterflyAddrCheck()
    with ButterflyEngine(on, recorder=Recorder()) as engine:
        stats_on = engine.run(core_partition)
    assert len(on.errors) == len(off.errors)
    assert stats_on.first_pass_instructions == stats_off.first_pass_instructions
    assert stats_on.meets == stats_off.meets
