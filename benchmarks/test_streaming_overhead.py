"""Streaming overhead budget (PR acceptance criterion).

Feeding the engine one epoch at a time through an
:class:`~repro.core.stream.EpochSource` adds only the per-epoch
generator hop plus the eviction bookkeeping, so a streamed run of the
microbench-core workload must stay within 5% of the materialized run.

The measured ratio is also recorded in ``BENCH_4.json`` (the
``streaming_overhead`` workload) by ``repro bench --stream``.

Timing-sensitive: skipped under ``REPRO_CI=1``; on a live host the two
configurations are measured interleaved so clock drift hits both.
"""

import json
import pathlib
import random
import time

import pytest

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.core.stream import PartitionSource
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.obs.recorder import Recorder, normalize_events
from repro.trace.generator import simulated_alloc_program

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RECORDED = REPO_ROOT / "BENCH_4.json"

#: The acceptance budget: streamed slowdown over materialized.
BUDGET = 1.05


def _core_partition():
    from repro.bench.perf import (
        CORE_EPOCH,
        CORE_EVENTS,
        CORE_LOCATIONS,
        CORE_SEED,
        CORE_THREADS,
    )

    program = simulated_alloc_program(
        random.Random(CORE_SEED),
        num_threads=CORE_THREADS,
        total_events=CORE_EVENTS,
        num_locations=CORE_LOCATIONS,
    )
    return partition_fixed(program, CORE_EPOCH)


@pytest.fixture(scope="module")
def core_partition():
    return _core_partition()


def _interleaved_best(fns, repeats=14):
    """Best-of timings, measured round-robin so slow-host drift lands
    on every configuration equally (see test_resilience_overhead)."""
    import gc

    for fn in fns:
        fn()
    best = [float("inf")] * len(fns)
    gc.disable()
    try:
        for _ in range(repeats):
            for i, fn in enumerate(fns):
                gc.collect()
                t0 = time.perf_counter()
                fn()
                best[i] = min(best[i], time.perf_counter() - t0)
    finally:
        gc.enable()
    return best


def test_streaming_within_budget(timing_guard, core_partition):
    def run_materialized():
        with ButterflyEngine(ButterflyAddrCheck()) as engine:
            engine.run(core_partition)

    def run_streamed():
        with ButterflyEngine(ButterflyAddrCheck()) as engine:
            engine.run_source(PartitionSource(core_partition))

    # A single-digit-percent budget on wall clock can still lose to a
    # burst of host noise; a genuine regression fails every re-measure,
    # noise almost never fails three independent ones.
    for attempt in range(3):
        materialized, streamed = _interleaved_best(
            [run_materialized, run_streamed]
        )
        if streamed <= materialized * BUDGET:
            return
    assert streamed <= materialized * BUDGET, (
        f"streamed feed too slow on 3 measurements: "
        f"{streamed * 1e3:.2f} ms vs {materialized * 1e3:.2f} ms "
        f"materialized (ratio {streamed / materialized:.4f}, "
        f"budget {BUDGET})"
    )


def test_recorded_overhead_within_budget():
    """The checked-in BENCH_4.json measurement itself meets the budget."""
    recorded = json.loads(RECORDED.read_text())
    assert recorded["schema"] == 4
    workload = recorded["workloads"]["streaming_overhead"]
    runs = workload["runs"]
    ratio = workload["overhead_ratio"]
    assert ratio == pytest.approx(
        runs["streamed"]["best_s"] / runs["materialized"]["best_s"]
    )
    assert ratio <= BUDGET, (
        f"recorded streaming overhead {ratio:.4f} exceeds budget {BUDGET}"
    )
    # The run that produced the recording honored the window bound.
    assert workload["window_high_water"] <= workload["window_bound"]


def test_streaming_changes_no_results(core_partition):
    """Streaming must be invisible: identical errors, stats, events."""
    mat_guard = ButterflyAddrCheck()
    mat_rec = Recorder()
    with ButterflyEngine(mat_guard, recorder=mat_rec) as engine:
        mat_stats = engine.run(core_partition)
    st_guard = ButterflyAddrCheck()
    st_rec = Recorder()
    with ButterflyEngine(st_guard, recorder=st_rec) as engine:
        st_stats = engine.run_source(PartitionSource(core_partition))
    assert st_stats == mat_stats
    assert [
        (r.kind, r.location, r.ref, r.block) for r in st_guard.errors
    ] == [(r.kind, r.location, r.ref, r.block) for r in mat_guard.errors]
    assert normalize_events(st_rec.events) == normalize_events(
        mat_rec.events
    )
