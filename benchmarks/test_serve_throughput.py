"""Multi-stream serve throughput: thread shards vs process shards.

The ``serve_throughput`` perf workload (``repro.bench.perf``, schema 7)
drives N concurrent producers against one daemon per shard backend.
This harness runs it at a reduced scale and checks two things:

- **Equivalence (always):** every stream's report is bit-identical
  across backends and to the offline run -- shipping validated epoch
  rows over a pipe must not change a single byte of analysis output.
- **Ordering (>=2 cores, not CI):** with real parallelism available,
  process shards must not lose to thread shards -- the whole point of
  the backend is to escape the GIL.  On a single core the process
  backend only adds pickling and context switches, so the claim is
  meaningless there and the test skips.
"""

import json
import os
import random
import threading

import pytest

from repro.bench.perf import _bench_serve_throughput
from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.serve import (
    SHARD_BACKEND_CHOICES,
    ServeConfig,
    ServerThread,
    build_report,
    make_hello,
    push_trace,
)
from repro.serve.server import make_guard
from repro.trace.generator import simulated_alloc_program
from repro.trace.serialize import (
    iter_load,
    save_stream_file,
    stream_header,
)

STREAMS = 3


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    program = simulated_alloc_program(
        random.Random(21), num_threads=3, total_events=900
    )
    partition = partition_fixed(program, 128)
    path = tmp_path_factory.mktemp("serve-tp") / "t.stream.jsonl"
    save_stream_file(partition, str(path))
    return path


def offline_report(path, stream_id):
    with open(path) as fp:
        header = stream_header(fp, str(path))
    guard = make_guard("addrcheck", frozenset(header["preallocated"]))
    with ButterflyEngine(guard) as engine:
        engine.run_source(iter_load(str(path)))
        hello = make_hello(
            stream_id, header["threads"], header["epochs"],
            header["preallocated"], "addrcheck",
        )
        return json.loads(
            json.dumps(build_report(stream_id, hello, engine, guard))
        )


def _push_all(daemon, path):
    results, errors = {}, []

    def push(sid):
        try:
            results[sid] = push_trace(daemon.address, str(path), sid)
        except Exception as exc:  # pragma: no cover - assertion aid
            errors.append(f"{sid}: {exc}")

    workers = [
        threading.Thread(target=push, args=(f"s{i}",))
        for i in range(STREAMS)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert not errors, errors
    return results


def test_concurrent_reports_identical_across_backends(
    tmp_path, trace_path
):
    """N concurrent streams per backend: every report bit-identical to
    the offline run, hence to each other."""
    per_backend = {}
    for backend in SHARD_BACKEND_CHOICES:
        config = ServeConfig(
            unix_path=str(tmp_path / f"{backend}.sock"),
            workers=2,
            shard_backend=backend,
        )
        with ServerThread(config) as daemon:
            per_backend[backend] = _push_all(daemon, trace_path)
    for i in range(STREAMS):
        sid = f"s{i}"
        expected = offline_report(trace_path, sid)
        for backend in SHARD_BACKEND_CHOICES:
            assert json.dumps(per_backend[backend][sid]) == json.dumps(
                expected
            ), (backend, sid)


def test_workload_records_rates():
    """The perf workload entry carries the fields BENCH_7 readers and
    the docs rely on."""
    entry = _bench_serve_throughput(streams=2, events_per_stream=600)
    assert set(entry["runs"]) == {"thread", "process"}
    for run in entry["runs"].values():
        assert run["epochs_per_s"] > 0
        assert run["streams_per_s"] > 0
    assert entry["params"]["cpu_count"] == os.cpu_count()


def test_process_shards_keep_up_on_multicore(timing_guard):
    """Process shards must not lose to thread shards when real cores
    exist.  Generous slack (0.8x) guards the shape -- a collapse to
    half speed fails, scheduler jitter does not."""
    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            "single-core host: process shards cannot beat the GIL here"
        )
    entry = _bench_serve_throughput(streams=4, events_per_stream=2000)
    thread_rate = entry["runs"]["thread"]["epochs_per_s"]
    process_rate = entry["runs"]["process"]["epochs_per_s"]
    assert process_rate >= thread_rate * 0.8, entry["runs"]
