"""Figure 12: performance sensitivity to epoch size (h = 8K vs 64K,
scaled to 512 vs 4096 events).

Shape contract: "in nearly all cases (i.e., everything except the two
and four thread cases for OCEAN), the performance improves with a
larger epoch size" -- the per-epoch fixed costs amortize, except where
OCEAN's false-positive processing offsets the savings.
"""

import pytest

from repro.bench.experiments import figure12

from .conftest import emit


@pytest.fixture(scope="module")
def fig12(suite):
    return figure12(suite)


def test_larger_epoch_faster_except_ocean_low_threads(fig12, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for bench, per in fig12.data.items():
        for threads, (small, large) in per.items():
            if bench == "OCEAN" and threads in (2, 4):
                continue  # the paper's exception, asserted below
            assert large <= small * 1.05, (bench, threads, small, large)


def test_ocean_reverses_at_two_and_four_threads(fig12, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    per = fig12.data["OCEAN"]
    assert per[2][1] > per[2][0], per[2]
    assert per[4][1] > per[4][0], per[4]


def test_amortization_strongest_for_high_reuse_benchmarks(fig12, benchmark):
    """LU and BLACKSCHOLES re-check their working set every epoch, so
    shrinking the epoch count helps them the most."""
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    gains = {
        bench: per[2][0] / per[2][1]
        for bench, per in fig12.data.items()
    }
    assert gains["LU"] > gains["BARNES"]
    assert gains["BLACKSCHOLES"] > gains["BARNES"]


def test_figure12_render(fig12, benchmark):
    rendered = benchmark.pedantic(fig12.render, rounds=1, iterations=1)
    assert "Figure 12" in rendered
    emit(rendered)
