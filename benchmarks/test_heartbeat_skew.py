"""Extension bench: heartbeat delivery skew.

Section 4.1 only requires heartbeats to arrive within a bounded skew;
the model absorbs the jitter by design.  This bench perturbs the
per-thread epoch boundaries and shows (a) zero false negatives survive
any skew, and (b) false positives degrade gracefully -- the knob that
matters is the epoch size, not delivery precision.
"""

import random

import pytest

from repro.bench.reporting import render_table
from repro.core.epoch import partition_with_skew
from repro.core.framework import ButterflyEngine
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.sequential import SequentialAddrCheck
from repro.trace.generator import simulated_alloc_program


@pytest.fixture(scope="module")
def skew_sweep():
    rows = []
    for skew in (0, 8, 24, 56):
        fn_total = 0
        flags_total = 0
        for seed in range(10):
            prog = simulated_alloc_program(
                random.Random(seed), num_threads=3, total_events=3000,
                num_locations=24, inject_error_rate=0.05,
            )
            part = partition_with_skew(
                prog, 128, skew, rng=random.Random(seed)
            )
            guard = ButterflyAddrCheck()
            ButterflyEngine(guard).run(part)
            truth = SequentialAddrCheck()
            truth.run_order(prog)
            flagged_locs = {r.location for r in guard.errors}
            fn_total += sum(
                1 for r in truth.errors if r.location not in flagged_locs
            )
            flags_total += len(guard.errors)
        rows.append((skew, flags_total, fn_total))
    return rows


def test_zero_false_negatives_under_any_skew(skew_sweep, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for skew, _flags, fn in skew_sweep:
        assert fn == 0, skew


def test_render(skew_sweep, benchmark):
    def build():
        return render_table(
            ("max skew (events)", "total flags", "false negatives"),
            skew_sweep,
        )

    from .conftest import emit

    emit(
        "Extension: heartbeat delivery skew (h=128 nominal)\n"
        + benchmark.pedantic(build, rounds=1, iterations=1)
    )
