"""Regression guard for the vectorized AddrCheck first-pass scan.

The columnar kernel's reason to exist is raw throughput: on a
million-event trace the vectorized first pass must stay >= 5x faster
than the per-``Instr`` scalar path (the issue's acceptance floor; the
measured gap on an idle host is ~10x end to end).  This test pins that
floor so an accidental de-vectorization (a stray per-event Python loop,
a dtype regression forcing object arrays) fails loudly instead of
silently eating the speedup.

Skips without numpy (there is no vector kernel to guard) and under
``REPRO_CI=1`` (wall-clock ratios flake on shared runners).
"""

import time

import pytest

np = pytest.importorskip("numpy")

from repro.core.columnar import HAVE_NUMPY  # noqa: E402
from repro.lifeguards.addrcheck import AddrScanner  # noqa: E402
from repro.trace.generator import ColumnarAllocSource  # noqa: E402

if not HAVE_NUMPY:  # REPRO_NO_NUMPY forces the fallback even with numpy
    pytest.skip("columnar vector kernel disabled", allow_module_level=True)

#: 1M events across 10 blocks -- large enough that per-event dispatch
#: dominates the scalar path, small enough to keep the guard quick.
_EVENTS = 1_000_000
_BLOCKS = 10


def _blocks():
    source = ColumnarAllocSource(
        seed=17,
        num_threads=1,
        num_epochs=_BLOCKS,
        events_per_block=_EVENTS // _BLOCKS,
        num_locations=1024,
        change_period=512,
    )
    return [row[0] for row in source.epochs()], source.preallocated


def _scan_all(scanner, blocks, preallocated):
    checks = 0
    for block in blocks:
        scan = scanner(block, set(preallocated))
        checks += scan.checks
    return checks


def _timed(scanner, blocks, preallocated):
    t0 = time.perf_counter()
    checks = _scan_all(scanner, blocks, preallocated)
    return time.perf_counter() - t0, checks


def test_vectorized_scan_at_least_5x_over_object_path(timing_guard):
    blocks, preallocated = _blocks()
    for block in blocks:
        block.instrs  # materialize up front: time kernels, not conversion

    vec = AddrScanner(True, columnar=True)
    obj = AddrScanner(True, columnar=False)

    # Warm both paths (imports, allocator, branch caches).
    _scan_all(vec, blocks[:1], preallocated)
    _scan_all(obj, blocks[:1], preallocated)

    # Interleaved best-of-5: the per-path minimum is the least
    # noise-contaminated estimate of a deterministic kernel's cost, and
    # alternating the paths keeps a scheduler burst from landing on all
    # of one side's repeats.
    vec_s = obj_s = float("inf")
    vec_checks = obj_checks = None
    for _ in range(5):
        t, vec_checks = _timed(vec, blocks, preallocated)
        vec_s = min(vec_s, t)
        t, obj_checks = _timed(obj, blocks, preallocated)
        obj_s = min(obj_s, t)

    assert vec_checks == obj_checks  # same work, bit-identical kernels
    speedup = obj_s / vec_s
    assert speedup >= 5.0, (
        f"vectorized scan only {speedup:.2f}x over per-event path "
        f"(vec {vec_s:.3f}s, obj {obj_s:.3f}s) -- floor is 5x"
    )
