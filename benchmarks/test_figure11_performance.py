"""Figure 11: relative performance, normalized to sequential unmonitored
execution, for 2/4/8 application threads.

Shape contract (Section 7.2's prose, which this reproduction validates):

- "Parallel, No Monitoring" is the fastest configuration everywhere.
- At two threads butterfly vs. timesliced is mixed: better for BARNES
  and FMM, in between for FFT and OCEAN, significantly worse for
  BLACKSCHOLES and LU.
- Butterfly speeds up with threads, while timesliced does not.
- At eight threads butterfly outperforms timesliced in five of six
  cases; the exception is BLACKSCHOLES, which is still approaching the
  crossover.
"""

import pytest

from repro.bench.experiments import figure11
from repro.workloads.registry import BENCHMARKS

from .conftest import emit


@pytest.fixture(scope="module")
def fig11(suite):
    return figure11(suite)


def test_no_monitoring_is_always_fastest(fig11, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for bench, per in fig11.data.items():
        for threads, (ts, bf, par) in per.items():
            assert par < bf, (bench, threads)
            assert par < ts, (bench, threads)


def test_two_threads_mixed_results(fig11, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    data = fig11.data
    # Significantly better for BARNES and FMM.
    for bench in ("BARNES", "FMM"):
        ts, bf, _ = data[bench][2]
        assert bf < ts, bench
    # Significantly worse for BLACKSCHOLES and LU.
    for bench in ("BLACKSCHOLES", "LU"):
        ts, bf, _ = data[bench][2]
        assert bf > 1.3 * ts, bench


def test_butterfly_scales_with_threads(fig11, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for bench, per in fig11.data.items():
        assert per[8][1] < per[4][1] < per[2][1], bench


def test_eight_threads_butterfly_wins_five_of_six(fig11, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    wins = fig11.wins(8)
    assert len(wins) == 5, wins
    assert "BLACKSCHOLES" not in wins


def test_blackscholes_approaches_crossover(fig11, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    per = fig11.data["BLACKSCHOLES"]
    ts8, bf8, _ = per[8]
    # Not yet crossed, but within 25% -- "speeding up well ... has not
    # quite reached the crossover point with eight threads".
    assert bf8 > ts8
    assert bf8 < 1.25 * ts8


def test_monitoring_never_faster_than_no_monitoring(fig11, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for bench, per in fig11.data.items():
        for threads, (ts, bf, par) in per.items():
            assert bf >= par

def test_figure11_render(fig11, benchmark):
    rendered = benchmark.pedantic(fig11.render, rounds=1, iterations=1)
    assert "Figure 11" in rendered
    emit(rendered)
