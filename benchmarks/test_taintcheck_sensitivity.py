"""Extension bench: TaintCheck precision/performance vs. epoch size.

The paper evaluates AddrCheck only; Section 6.2 predicts TaintCheck
behaves the same way with "more false positives with relaxed models
than when assuming sequential consistency".  This bench runs butterfly
TaintCheck over the secure-server workload and charts both claims:

- false positives grow with the epoch size (zero once the
  sanitize-to-use gap spans two epochs);
- the relaxed termination condition flags at least as much as the SC
  one at every epoch size.
"""

import pytest

from repro.bench.reporting import render_table
from repro.core.epoch import partition_by_global_order
from repro.core.framework import ButterflyEngine
from repro.lifeguards.sequential import SequentialTaintCheck
from repro.lifeguards.taintcheck import ButterflyTaintCheck
from repro.workloads.server import SecureServer

from .conftest import emit

EPOCHS = (256, 512, 1024, 2048, 4096)


@pytest.fixture(scope="module")
def sweep():
    prog = SecureServer().generate(4, 16384, seed=1)
    truth = SequentialTaintCheck()
    truth.run_order(prog)
    assert len(truth.errors) == 0  # clean run: every flag is false
    rows = []
    for h in EPOCHS:
        per_mode = {}
        for mode in ("sc", "relaxed"):
            guard = ButterflyTaintCheck(mode=mode)
            ButterflyEngine(guard).run(partition_by_global_order(prog, h))
            per_mode[mode] = len(guard.errors)
        rows.append((h, per_mode["sc"], per_mode["relaxed"]))
    return rows


def test_false_positives_grow_with_epoch_size(sweep, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    relaxed = [row[2] for row in sweep]
    assert relaxed == sorted(relaxed)
    assert relaxed[0] == 0  # small epochs prove sanitization ordered
    assert relaxed[-1] > 0


def test_relaxed_flags_at_least_sc(sweep, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for h, sc, relaxed in sweep:
        assert sc <= relaxed, h


def test_render(sweep, benchmark):
    def build():
        return render_table(
            ("h (events)", "SC flags", "relaxed flags"),
            [(h, sc, rel) for h, sc, rel in sweep],
        )

    emit(
        "Extension: TaintCheck false positives vs. epoch size "
        "(secure-server workload, 4 threads)\n"
        + benchmark.pedantic(build, rounds=1, iterations=1)
    )
