"""Regression guard for the vectorized TaintCheck first-pass scan.

On a READ-heavy trace (the realistic shape: most events never move
taint) the columnar TaintCheck scanner must stay >= 3x faster than the
per-``Instr`` object path -- the PR acceptance floor; the measured gap
on an idle host is far larger because the LUT pass skips the READ
majority entirely.  This pins the floor so an accidental
de-vectorization fails loudly instead of silently eating the speedup.

Skips without numpy (there is no vector kernel to guard) and under
``REPRO_CI=1`` (wall-clock ratios flake on shared runners).
"""

import time

import pytest

np = pytest.importorskip("numpy")

from repro.core.columnar import HAVE_NUMPY  # noqa: E402
from repro.lifeguards.taintcheck import TaintScanner  # noqa: E402
from repro.trace.generator import ColumnarTaintSource  # noqa: E402

if not HAVE_NUMPY:  # REPRO_NO_NUMPY forces the fallback even with numpy
    pytest.skip("columnar vector kernel disabled", allow_module_level=True)

#: 1M events across 10 blocks -- large enough that per-event dispatch
#: dominates the object path, small enough to keep the guard quick.
_EVENTS = 1_000_000
_BLOCKS = 10


def _blocks():
    source = ColumnarTaintSource(
        seed=17,
        num_threads=1,
        num_epochs=_BLOCKS,
        events_per_block=_EVENTS // _BLOCKS,
        num_locations=1024,
        taint_period=512,
    )
    return [row[0] for row in source.epochs()]


def _scan_all(scanner, blocks):
    work = 0
    for block in blocks:
        summary = scanner(block, None)
        work += len(summary.jumps) + sum(
            len(v) for v in summary.rules.values()
        )
    return work


def _timed(scanner, blocks):
    t0 = time.perf_counter()
    work = _scan_all(scanner, blocks)
    return time.perf_counter() - t0, work


def test_vectorized_taint_scan_at_least_3x_over_object_path(timing_guard):
    blocks = _blocks()
    for block in blocks:
        block.instrs  # materialize up front: time kernels, not conversion

    vec = TaintScanner(columnar=True)
    obj = TaintScanner(columnar=False)

    # Warm both paths (imports, allocator, branch caches).
    _scan_all(vec, blocks[:1])
    _scan_all(obj, blocks[:1])

    # Interleaved best-of-5: the per-path minimum is the least
    # noise-contaminated estimate of a deterministic kernel's cost, and
    # alternating the paths keeps a scheduler burst from landing on all
    # of one side's repeats.
    vec_s = obj_s = float("inf")
    vec_work = obj_work = None
    for _ in range(5):
        t, vec_work = _timed(vec, blocks)
        vec_s = min(vec_s, t)
        t, obj_work = _timed(obj, blocks)
        obj_s = min(obj_s, t)

    assert vec_work == obj_work  # same rules/jumps, bit-identical kernels
    assert vec_work > 0  # the trace actually contains taint traffic
    speedup = obj_s / vec_s
    assert speedup >= 3.0, (
        f"vectorized taint scan only {speedup:.2f}x over per-event path "
        f"(vec {vec_s:.3f}s, obj {obj_s:.3f}s) -- floor is 3x"
    )
