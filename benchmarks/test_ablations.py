"""Ablation benches for the design choices DESIGN.md calls out.

1. Epoch-size sweep beyond the paper's two points: the knob trades
   per-epoch fixed cost against window width (false positives).
2. Idempotent filtering: check-count and cycle savings.
3. Two-phase TaintCheck resolution (Section 6.2's false-positive
   optimization) vs. a single whole-window pass.
4. SC vs. relaxed Check termination: the precision cost of supporting
   relaxed consistency.
"""

import random

import pytest

from repro.bench.reporting import render_table
from repro.core.epoch import partition_by_global_order, partition_fixed
from repro.core.framework import ButterflyEngine
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.reports import compare_reports
from repro.lifeguards.sequential import SequentialAddrCheck
from repro.lifeguards.taintcheck import ButterflyTaintCheck
from repro.sim.lba import LBASystem
from repro.trace.events import Instr
from repro.trace.generator import simulated_taint_program
from repro.trace.program import TraceProgram
from repro.workloads.registry import get_benchmark

from .conftest import emit


class TestEpochSizeSweepAblation:
    """More points on the Figure 12/13 curves for the worst-case
    benchmark (OCEAN)."""

    @pytest.fixture(scope="class")
    def sweep(self):
        prog = get_benchmark("OCEAN").generate(4, 16384, seed=1)
        truth = SequentialAddrCheck(prog.preallocated)
        truth.run_order(prog)
        system = LBASystem()
        rows = []
        for h in (256, 512, 1024, 2048, 4096):
            run = system.butterfly(prog, h)
            pr = compare_reports(
                truth.errors, run.guard.errors, prog.memory_op_count
            )
            rows.append(
                (h, run.partition.num_epochs, run.result.cycles,
                 pr.false_positives, pr.false_positive_rate)
            )
        return rows

    def test_false_positives_weakly_increase(self, sweep, benchmark):
        benchmark.extra_info["assertions"] = "shape"
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        fps = [row[3] for row in sweep]
        assert fps == sorted(fps)

    def test_epoch_count_decreases(self, sweep, benchmark):
        benchmark.extra_info["assertions"] = "shape"
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        epochs = [row[1] for row in sweep]
        assert epochs == sorted(epochs, reverse=True)

    def test_render(self, sweep, benchmark):
        def build():
            return render_table(
                ("h (events)", "epochs", "cycles", "false pos", "rate"),
                [
                    (h, e, c, fp, f"{rate:.2e}")
                    for h, e, c, fp, rate in sweep
                ],
            )
        emit("Ablation: OCEAN epoch-size sweep (4 threads)\n"
             + benchmark.pedantic(build, rounds=1, iterations=1))


class TestIdempotentFilterAblation:
    @pytest.fixture(scope="class")
    def runs(self):
        prog = get_benchmark("LU").generate(4, 16384, seed=2)
        part_on = partition_by_global_order(prog, 4096)
        on = ButterflyAddrCheck(
            initially_allocated=prog.preallocated, use_idempotent_filter=True
        )
        ButterflyEngine(on).run(part_on)
        part_off = partition_by_global_order(prog, 4096)
        off = ButterflyAddrCheck(
            initially_allocated=prog.preallocated, use_idempotent_filter=False
        )
        ButterflyEngine(off).run(part_off)
        return on, off

    def test_filter_reduces_checks(self, runs, benchmark):
        benchmark.extra_info["assertions"] = "shape"
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        on, off = runs
        checks_on = sum(w["checks"] for w in on.block_work.values())
        checks_off = sum(w["checks"] for w in off.block_work.values())
        assert checks_on < checks_off / 2

    def test_filter_preserves_error_locations(self, runs, benchmark):
        benchmark.extra_info["assertions"] = "shape"
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        on, off = runs
        assert {r.location for r in on.errors} == {
            r.location for r in off.errors
        }

    def test_render(self, runs, benchmark):
        on, off = runs
        def build():
            rows = []
            for label, g in (("filter on", on), ("filter off", off)):
                checks = sum(w["checks"] for w in g.block_work.values())
                accesses = sum(
                    w["accesses"] for w in g.block_work.values()
                )
                rows.append((label, accesses, checks,
                             f"{1 - checks / max(1, accesses):.0%}"))
            return render_table(
                ("config", "accesses", "checks", "filtered"), rows
            )
        emit("Ablation: idempotent filtering (LU, 4 threads, h=4096)\n"
             + benchmark.pedantic(build, rounds=1, iterations=1))


class TestTwoPhaseAblation:
    def _flags(self, two_phase):
        total = 0
        for seed in range(30):
            prog = simulated_taint_program(
                random.Random(seed), num_threads=3, total_events=60,
                num_locations=6,
            )
            part = partition_by_global_order(prog, 5)
            guard = ButterflyTaintCheck(two_phase=two_phase)
            ButterflyEngine(guard).run(part)
            total += len(guard.errors)
        return total

    def test_two_phase_never_flags_more(self, benchmark):
        with_phases = self._flags(True)
        single = benchmark.pedantic(
            self._flags, args=(False,), rounds=1, iterations=1
        )
        assert with_phases <= single
        emit(
            "Ablation: two-phase TaintCheck resolution\n"
            f"  flags with two phases:   {with_phases}\n"
            f"  flags with single pass:  {single}"
        )

    def test_impossible_path_rejected_only_with_phases(self, benchmark):
        benchmark.extra_info["assertions"] = "shape"
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        # Section 6.2's motivating example: a cross-epoch chain that
        # needs epoch 2 to execute before epoch 0.
        prog = TraceProgram.from_lists(
            [Instr.nop(), Instr.assign(1, 2), Instr.nop(), Instr.jump(1)],
            [Instr.assign(2, 3), Instr.nop(), Instr.nop(), Instr.nop()],
            [Instr.nop(), Instr.nop(), Instr.taint(3), Instr.nop()],
        )
        with_phases = ButterflyTaintCheck(two_phase=True)
        ButterflyEngine(with_phases).run(partition_fixed(prog, 1))
        single = ButterflyTaintCheck(two_phase=False)
        ButterflyEngine(single).run(partition_fixed(prog, 1))
        assert len(with_phases.errors) == 0
        assert len(single.errors) == 1


class TestConsistencyModelAblation:
    def test_sc_flags_subset_and_counts(self, benchmark):
        def count(mode):
            total = 0
            for seed in range(30):
                prog = simulated_taint_program(
                    random.Random(seed + 1000), num_threads=3,
                    total_events=60, num_locations=5,
                )
                part = partition_by_global_order(prog, 5)
                guard = ButterflyTaintCheck(mode=mode)
                ButterflyEngine(guard).run(part)
                total += len(guard.errors)
            return total

        relaxed = count("relaxed")
        sc = benchmark.pedantic(count, args=("sc",), rounds=1, iterations=1)
        assert sc <= relaxed
        emit(
            "Ablation: Check termination condition\n"
            f"  flags under relaxed models: {relaxed}\n"
            f"  flags under seq. consistency: {sc}"
        )
