"""Fault-free supervision overhead budget (PR acceptance criterion).

Wrapping a backend in :class:`~repro.resilience.SupervisedBackend` with
no fault plan adds only a per-task decision lookup (which short-circuits
when no plan is installed) and the ordered-collect bookkeeping, so a
fault-free supervised serial run must stay within 2% of the bare serial
run on the microbench-core workload.

The measured ratio is also recorded in ``BENCH_3.json`` (the
``resilience_overhead`` workload) by ``repro bench``.

Timing-sensitive: skipped under ``REPRO_CI=1``; on a live host the two
configurations are measured interleaved so clock drift hits both.
"""

import json
import pathlib
import random
import time

import pytest

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.resilience import SupervisedBackend
from repro.trace.generator import simulated_alloc_program

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RECORDED = REPO_ROOT / "BENCH_3.json"

#: The acceptance budget: fault-free supervised-serial slowdown over
#: bare serial.
BUDGET = 1.02


@pytest.fixture(scope="module")
def core_partition():
    from repro.bench.perf import (
        CORE_EPOCH,
        CORE_EVENTS,
        CORE_LOCATIONS,
        CORE_SEED,
        CORE_THREADS,
    )

    program = simulated_alloc_program(
        random.Random(CORE_SEED),
        num_threads=CORE_THREADS,
        total_events=CORE_EVENTS,
        num_locations=CORE_LOCATIONS,
    )
    return partition_fixed(program, CORE_EPOCH)


def _interleaved_best(fns, repeats=14):
    """Best-of timings, measured round-robin so slow-host drift lands
    on every configuration equally.  Scheduling noise is additive, so
    the minimum over many samples converges on the true cost; the one
    systematic bias left is the garbage collector, whose cycles can
    repeatedly land inside the same configuration's window -- so GC is
    paused during measurement and drained right before each sample.
    One untimed warmup round absorbs lazy-import and allocator churn
    left behind by earlier benchmarks."""
    import gc

    for fn in fns:
        fn()
    best = [float("inf")] * len(fns)
    gc.disable()
    try:
        for _ in range(repeats):
            for i, fn in enumerate(fns):
                gc.collect()
                t0 = time.perf_counter()
                fn()
                best[i] = min(best[i], time.perf_counter() - t0)
    finally:
        gc.enable()
    return best


def test_fault_free_supervision_within_budget(timing_guard, core_partition):
    def run_bare():
        with ButterflyEngine(ButterflyAddrCheck()) as engine:
            engine.run(core_partition)

    def run_supervised():
        backend = SupervisedBackend("serial")
        try:
            with ButterflyEngine(
                ButterflyAddrCheck(), backend=backend
            ) as engine:
                engine.run(core_partition)
        finally:
            backend.close()

    # A single-digit-percent budget on wall clock can still lose to a
    # burst of host noise; a genuine regression fails every re-measure,
    # noise almost never fails three independent ones.
    for attempt in range(3):
        bare, supervised = _interleaved_best([run_bare, run_supervised])
        if supervised <= bare * BUDGET:
            return
    assert supervised <= bare * BUDGET, (
        f"fault-free supervision too slow on 3 measurements: "
        f"{supervised * 1e3:.2f} ms vs {bare * 1e3:.2f} ms bare "
        f"(ratio {supervised / bare:.4f}, budget {BUDGET})"
    )


def test_recorded_overhead_within_budget():
    """The checked-in BENCH_3.json measurement itself meets the budget."""
    recorded = json.loads(RECORDED.read_text())
    assert recorded["schema"] == 3
    runs = recorded["workloads"]["resilience_overhead"]["runs"]
    ratio = recorded["workloads"]["resilience_overhead"]["overhead_ratio"]
    assert ratio == pytest.approx(
        runs["supervised_serial"]["best_s"] / runs["bare_serial"]["best_s"]
    )
    assert ratio <= BUDGET, (
        f"recorded supervision overhead {ratio:.4f} exceeds budget {BUDGET}"
    )


def test_supervision_changes_no_results(core_partition):
    """Supervision must be invisible: identical errors and stats."""
    bare = ButterflyAddrCheck()
    with ButterflyEngine(bare) as engine:
        stats_bare = engine.run(core_partition)
    guarded = ButterflyAddrCheck()
    backend = SupervisedBackend("serial")
    try:
        with ButterflyEngine(guarded, backend=backend) as engine:
            stats_sup = engine.run(core_partition)
    finally:
        backend.close()
    assert stats_sup == stats_bare
    assert [
        (r.kind, r.location, r.ref, r.block) for r in guarded.errors
    ] == [(r.kind, r.location, r.ref, r.block) for r in bare.errors]
