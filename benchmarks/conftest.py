"""Shared fixtures for the benchmark harness.

The experiment suite is session-scoped: Figures 11, 12 and 13 share the
same traces and runs (as in the paper, where one set of simulations
feeds all three).  Scale: events are 1/16 of the paper's instruction
counts (DESIGN.md section 3), so h in {512, 4096} events stands in for
the paper's {8K, 64K} instructions.

Timing-sensitive assertions (A faster than B on the wall clock) are
skipped when ``REPRO_CI`` is set: shared CI runners have noisy clocks
and such comparisons flake there.  Correctness and shape assertions
always run.
"""

import os

import pytest

from repro.bench.harness import ExperimentConfig, ExperimentSuite

#: Events per thread for the full benchmark runs (2/4/8-thread traces).
BENCH_EVENTS_PER_THREAD = 32768

#: Environment flag marking a noisy-clock environment (CI runners).
CI_ENV_FLAG = "REPRO_CI"


def timing_asserts_enabled() -> bool:
    """Whether wall-clock comparisons are trustworthy on this host."""
    return os.environ.get(CI_ENV_FLAG, "") in ("", "0")


@pytest.fixture
def timing_guard():
    """Request this fixture from any test whose assertions compare
    wall-clock measurements; it skips the test under ``REPRO_CI=1``."""
    if not timing_asserts_enabled():
        pytest.skip(
            f"{CI_ENV_FLAG} set: timing-sensitive assertions are "
            "unreliable on shared CI runners"
        )


@pytest.fixture(scope="session")
def suite():
    return ExperimentSuite(
        ExperimentConfig(events_per_thread=BENCH_EVENTS_PER_THREAD)
    )


def emit(text: str) -> None:
    """Print a regenerated table/figure under pytest -s or into the
    captured output."""
    print()
    print(text)
