"""Shared fixtures for the benchmark harness.

The experiment suite is session-scoped: Figures 11, 12 and 13 share the
same traces and runs (as in the paper, where one set of simulations
feeds all three).  Scale: events are 1/16 of the paper's instruction
counts (DESIGN.md section 3), so h in {512, 4096} events stands in for
the paper's {8K, 64K} instructions.
"""

import pytest

from repro.bench.harness import ExperimentConfig, ExperimentSuite

#: Events per thread for the full benchmark runs (2/4/8-thread traces).
BENCH_EVENTS_PER_THREAD = 32768


@pytest.fixture(scope="session")
def suite():
    return ExperimentSuite(
        ExperimentConfig(events_per_thread=BENCH_EVENTS_PER_THREAD)
    )


def emit(text: str) -> None:
    """Print a regenerated table/figure under pytest -s or into the
    captured output."""
    print()
    print(text)
