"""Table 1: simulator and benchmark parameters.

Regenerates both halves of the paper's Table 1 from the machine
configuration and the benchmark registry, and checks every row against
the published values.
"""

from repro.bench.experiments import table1
from repro.sim.config import MachineConfig

from .conftest import emit


def test_simulation_parameters_match_paper(benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    t1 = table1()
    rows = dict(t1.simulation_rows)
    assert rows["Cores"] == "{4,8,16} cores"
    assert rows["Pipeline"] == "1 GHz, in-order scalar, 65nm"
    assert rows["Line size"] == "64B"
    assert rows["L1-I"] == "64KB, 4-way set-assoc, 1 cycle latency"
    assert rows["L1-D"] == "64KB, 4-way set-assoc, 2 cycle latency"
    assert rows["L2"] == "{2,4,8}MB, 8-way set-assoc, 4 banks, 6 cycle latency"
    assert rows["Memory"] == "512MB, 90 cycle latency"
    assert rows["Log buffer"] == "8KB"


def test_benchmark_rows_match_paper(benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    t1 = table1()
    rows = {name: (suite, inp) for name, suite, inp in t1.benchmark_rows}
    assert rows["BARNES"] == ("Splash-2", "16384 bodies")
    assert rows["FFT"] == ("Splash-2", "m = 20 (2^20 sized matrix)")
    assert rows["FMM"] == ("Splash-2", "32768 bodies")
    assert rows["OCEAN"] == ("Splash-2", "Grid size: 258 x 258")
    assert rows["BLACKSCHOLES"] == ("Parsec 2.0", "16384 options (simmedium)")
    assert rows["LU"] == ("Splash-2", "Matrix size: 1024 x 1024, b = 64")


def test_l2_scaling_sweep(benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # {2,4,8} MB for {4,8,16} cores, as the table's braces indicate.
    for cores, mb in ((4, 2), (8, 4), (16, 8)):
        assert MachineConfig(cores=cores).l2.size_bytes == mb << 20


def test_render_table1(benchmark):
    rendered = benchmark(lambda: table1().render())
    assert "Simulator and Benchmark Parameters" in rendered
    emit(rendered)
