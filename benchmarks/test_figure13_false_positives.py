"""Figure 13: precision sensitivity to epoch size -- false positives as
a percentage of memory accesses (log scale in the paper).

Shape contract: false negatives are impossible; false-positive rates
are (weakly) increasing in the epoch size; OCEAN is the worst case at
the large epoch (expensive enough to explain its Figure 12 reversal);
BARNES grows by orders of magnitude between the two sizes while FFT,
FMM, LU, and BLACKSCHOLES stay low; with the small epoch everything is
far below the paper's 0.001 % line.
"""

import pytest

from repro.bench.experiments import figure13
from repro.workloads.registry import BENCHMARKS

from .conftest import emit


@pytest.fixture(scope="module")
def fig13(suite):
    return figure13(suite)


def test_zero_false_negatives_everywhere(suite, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cfg = suite.config
    for bench in BENCHMARKS:
        for threads in cfg.thread_counts:
            for h in (cfg.epoch_small, cfg.epoch_large):
                record = suite.run(bench, threads, h)
                assert record.precision.false_negatives == 0, (
                    bench, threads, h
                )


def test_rates_weakly_increase_with_epoch_size(fig13, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for bench, per in fig13.data.items():
        for threads, (small, large) in per.items():
            assert large >= small, (bench, threads)


def test_small_epoch_rates_below_paper_line(fig13, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # The paper: "With the smaller epoch size, all programs have false
    # positive rates well below 0.001% of memory accesses."
    for bench, per in fig13.data.items():
        for threads, (small, _large) in per.items():
            assert small < 1e-5, (bench, threads, small)


def test_ocean_is_worst_at_large_epoch(fig13, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert fig13.worst_large_epoch() == "OCEAN"


def test_barnes_grows_orders_of_magnitude(fig13, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    per = fig13.data["BARNES"]
    for threads, (small, large) in per.items():
        # From (effectively) zero to a measurable rate.
        assert large > max(small * 100, 1e-4), (threads, small, large)


def test_no_churn_benchmarks_stay_low(fig13, benchmark):
    benchmark.extra_info["assertions"] = "shape"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for bench in ("FFT", "LU", "BLACKSCHOLES"):
        for threads, (small, large) in fig13.data[bench].items():
            assert large < 1e-3, (bench, threads, large)


def test_figure13_render(fig13, benchmark):
    rendered = benchmark.pedantic(fig13.render, rounds=1, iterations=1)
    assert "Figure 13" in rendered
    emit(rendered)
