"""Microbenchmarks for the analysis core (pytest-benchmark proper).

These measure throughput of the hot paths: block summarization, the
two-pass engine, butterfly AddrCheck's first pass, and TaintCheck's
check resolution.  Useful for tracking regressions; absolute numbers
are host-dependent.
"""

import random
import time

import pytest

from repro.core.dataflow import DefinitionDomain, summarize_block
from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.core.reaching_defs import ReachingDefinitions
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.taintcheck import ButterflyTaintCheck
from repro.shadow.shadow_memory import ShadowMemory
from repro.trace.events import Instr
from repro.trace.generator import (
    simulated_alloc_program,
    simulated_taint_program,
)
from repro.trace.program import TraceProgram


@pytest.fixture(scope="module")
def alloc_program():
    return simulated_alloc_program(
        random.Random(7), num_threads=4, total_events=8000,
        num_locations=256,
    )


@pytest.fixture(scope="module")
def taint_program():
    return simulated_taint_program(
        random.Random(7), num_threads=4, total_events=2000,
        num_locations=64,
    )


def test_summarize_block_throughput(benchmark):
    prog = TraceProgram.from_lists(
        [Instr.write(i % 64) for i in range(4096)]
    )
    block = partition_fixed(prog, 4096).block(0, 0)
    domain = DefinitionDomain()
    facts = benchmark(summarize_block, block, domain)
    assert len(facts.gen) == 64


def test_addrcheck_end_to_end_throughput(benchmark, alloc_program):
    def run():
        guard = ButterflyAddrCheck()
        ButterflyEngine(guard).run(partition_fixed(alloc_program, 512))
        return guard

    guard = benchmark(run)
    assert sum(w["events"] for w in guard.block_work.values()) == 8000


def test_reaching_definitions_throughput(benchmark, alloc_program):
    def run():
        analysis = ReachingDefinitions(keep_history=False)
        ButterflyEngine(analysis).run(partition_fixed(alloc_program, 512))
        return analysis

    analysis = benchmark(run)
    assert analysis.sos.frontier >= 2


def test_taintcheck_resolution_throughput(benchmark, taint_program):
    def run():
        guard = ButterflyTaintCheck()
        ButterflyEngine(guard).run(partition_fixed(taint_program, 128))
        return guard

    guard = benchmark(run)
    assert guard.sos.frontier >= 2


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_optimized_addrcheck_beats_reference(timing_guard, alloc_program):
    """The scanner/bitset fast path must outrun the per-instruction
    reference implementation (timing-sensitive: skipped in CI)."""
    partition = partition_fixed(alloc_program, 512)

    def run(optimized):
        ButterflyEngine(ButterflyAddrCheck(optimized=optimized)).run(
            partition
        )

    reference = _best_of(lambda: run(False))
    optimized = _best_of(lambda: run(True))
    assert optimized < reference, (optimized, reference)


def test_store_range_beats_scalar_loop(timing_guard):
    """Bulk range writes must outrun the equivalent per-address loop
    (timing-sensitive: skipped in CI)."""
    span, bursts = 1024, 64

    def bulk():
        shadow = ShadowMemory(page_size=4096)
        for b in range(bursts):
            shadow.store_range(b * span, span, 1)

    def scalar():
        shadow = ShadowMemory(page_size=4096)
        for b in range(bursts):
            for addr in range(b * span, (b + 1) * span):
                shadow.store(addr, 1)

    assert _best_of(bulk) < _best_of(scalar)


def test_engine_overhead_on_nops(benchmark):
    prog = TraceProgram.from_lists([Instr.nop()] * 20000)

    def run():
        guard = ButterflyAddrCheck()
        return ButterflyEngine(guard).run(partition_fixed(prog, 1000))

    stats = benchmark(run)
    assert stats.first_pass_instructions == 20000
