"""Serve-path overhead budget.

Pushing a version-2 trace through the daemon (framing, Unix socket,
bounded queue, shard executor hop) must stay within ``BUDGET`` of
feeding the same file to the engine offline via ``run_source`` -- the
wire is bookkeeping around the same per-epoch analysis, not a second
analysis.

Timing-sensitive: skipped under ``REPRO_CI=1`` (see ``conftest.py``);
the serve-vs-offline *result* equivalence always runs.
"""

import gc
import json
import random
import time

import pytest

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.serve import (
    ServeConfig,
    ServerThread,
    build_report,
    make_hello,
    push_trace,
)
from repro.serve.server import make_guard
from repro.trace.generator import simulated_alloc_program
from repro.trace.serialize import (
    iter_load,
    save_stream_file,
    stream_header,
)

#: Serve wall-clock over offline wall-clock for the core workload.
#: The core trace's epochs are deliberately small, so the per-epoch
#: transport cost (frame encode, loopback socket, queue hand-off,
#: executor hop) is maximally visible: measured ~2.3x on a quiet dev
#: host.  The budget guards the *shape* -- a constant factor per epoch
#: -- so a regression to O(trace) buffering or double analysis still
#: fails loudly, while loopback chatter does not flake the gate.
BUDGET = 3.0


@pytest.fixture(scope="module")
def core_trace(tmp_path_factory):
    from repro.bench.perf import (
        CORE_EPOCH,
        CORE_EVENTS,
        CORE_LOCATIONS,
        CORE_SEED,
        CORE_THREADS,
    )

    program = simulated_alloc_program(
        random.Random(CORE_SEED),
        num_threads=CORE_THREADS,
        total_events=CORE_EVENTS,
        num_locations=CORE_LOCATIONS,
    )
    partition = partition_fixed(program, CORE_EPOCH)
    path = tmp_path_factory.mktemp("serve-bench") / "core.stream.jsonl"
    save_stream_file(partition, str(path))
    return path


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    sock = tmp_path_factory.mktemp("serve-bench") / "serve.sock"
    with ServerThread(ServeConfig(unix_path=str(sock))) as thread:
        yield thread


def offline_run(path):
    with open(path) as fp:
        header = stream_header(fp, str(path))
    guard = make_guard("addrcheck", frozenset(header["preallocated"]))
    with ButterflyEngine(guard) as engine:
        engine.run_source(iter_load(str(path)))
        return header, engine, guard


def _interleaved_best(fns, repeats=10):
    """Best-of timings, round-robin so host drift hits every
    configuration equally (see test_streaming_overhead)."""
    for fn in fns:
        fn()
    best = [float("inf")] * len(fns)
    gc.disable()
    try:
        for _ in range(repeats):
            for i, fn in enumerate(fns):
                gc.collect()
                t0 = time.perf_counter()
                fn()
                best[i] = min(best[i], time.perf_counter() - t0)
    finally:
        gc.enable()
    return best


def test_serve_within_budget(timing_guard, daemon, core_trace):
    counter = iter(range(10_000))

    def run_offline():
        offline_run(core_trace)

    def run_served():
        push_trace(
            daemon.address, str(core_trace), f"bench-{next(counter)}"
        )

    # Re-measure before failing: noise rarely loses three independent
    # rounds, a real regression loses them all.
    for attempt in range(3):
        offline, served = _interleaved_best([run_offline, run_served])
        if served <= offline * BUDGET:
            return
    assert served <= offline * BUDGET, (
        f"serve path too slow on 3 measurements: {served * 1e3:.2f} ms "
        f"vs {offline * 1e3:.2f} ms offline "
        f"(ratio {served / offline:.3f}, budget {BUDGET})"
    )


def test_serve_changes_no_results(daemon, core_trace):
    """The wire must be invisible: identical report, window bound held."""
    header, engine, guard = offline_run(core_trace)
    hello = make_hello(
        "bench-ref", header["threads"], header["epochs"],
        header["preallocated"], "addrcheck",
    )
    expected = json.loads(
        json.dumps(build_report("bench-ref", hello, engine, guard))
    )
    served = push_trace(daemon.address, str(core_trace), "bench-ref")
    assert served == expected
    assert served["window_high_water"] <= served["window_bound"]
