"""Stream resume: checkpoints survive disconnects, daemon restarts,
and a SIGKILLed daemon process; resumed reports are bit-identical."""

import json
import os
import random
import subprocess
import sys
import time

import pytest

from repro.core.epoch import partition_from_boundaries
from repro.resilience.checkpoint import load_checkpoint
from repro.serve import ServeConfig, ServerThread, StreamClient
from repro.serve.client import read_frame_sync
from repro.serve.protocol import (
    FRAME_EPOCH,
    FRAME_ERROR,
    FRAME_HELLO,
    encode_frame,
    encode_json_frame,
    make_hello,
)
from repro.trace.generator import simulated_alloc_program
from repro.trace.serialize import save_stream_file, stream_header

from tests.serve.conftest import offline_report, write_trace
from tests.serve.test_server import FAST, connect, raw_handshake

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def wait_for_checkpoint(ckpt_dir, min_epoch=1, timeout=10.0):
    """Poll until some stream's checkpoint has committed ``min_epoch``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for path in ckpt_dir.glob("*.ckpt"):
            try:
                checkpoint = load_checkpoint(str(path))
            except Exception:
                continue  # mid-write; poll again
            if checkpoint.next_epoch >= min_epoch:
                return path, checkpoint
        time.sleep(0.01)
    raise AssertionError(f"no checkpoint reached epoch {min_epoch}")


class TestResumeAcrossRestart:
    def test_disconnect_then_new_daemon_resumes(self, tmp_path):
        trace = tmp_path / "t.stream.jsonl"
        write_trace(trace, events=300, seed=5)
        ck = tmp_path / "ck"
        first = ServeConfig(
            unix_path=str(tmp_path / "a.sock"), checkpoint_dir=str(ck)
        )
        with ServerThread(first) as daemon:
            sock = raw_handshake(daemon.address, trace, "s1", 6)
            wait_for_checkpoint(ck, min_epoch=2)
            sock.close()  # abandon mid-stream
        # The drained daemon kept the checkpoint for the dead stream.
        path, checkpoint = wait_for_checkpoint(ck, min_epoch=2)
        committed = checkpoint.next_epoch

        second = ServeConfig(
            unix_path=str(tmp_path / "b.sock"), checkpoint_dir=str(ck)
        )
        with ServerThread(second) as daemon:
            client = StreamClient(
                daemon.address, str(trace), "s1", policy=FAST, retries=2
            )
            served = client.push()
        assert client.last_ack["resume_epoch"] == committed
        assert served == offline_report(trace, "s1")

    def test_token_mismatch_is_refused(self, daemon, trace_file):
        with open(trace_file) as fp:
            header = stream_header(fp, str(trace_file))
        hello = make_hello(
            "s1", header["threads"], header["epochs"],
            header["preallocated"], "addrcheck", token="0" * 32,
        )
        sock = connect(daemon.address)
        sock.sendall(encode_json_frame(FRAME_HELLO, hello))
        ftype, payload = read_frame_sync(sock)
        sock.close()
        assert ftype == FRAME_ERROR
        assert json.loads(payload)["code"] == "token"

    def test_error_frames_carry_resume_coordinates(
        self, daemon, trace_file
    ):
        sock = raw_handshake(daemon.address, trace_file, "s1", 2)
        sock.sendall(encode_frame(FRAME_EPOCH, b"garbage"))
        ftype, payload = read_frame_sync(sock)
        sock.close()
        assert ftype == FRAME_ERROR
        answer = json.loads(payload)
        assert len(answer["token"]) == 32
        assert answer["resume_epoch"] >= 0


def write_irregular_trace(path, seed=4):
    """A v2 stream with explicit variable-size cuts: unequal blocks,
    and a zero-length tail on thread 1 (it runs out of events early)."""
    prog = simulated_alloc_program(
        random.Random(seed),
        num_threads=2,
        total_events=300,
        num_locations=16,
        inject_error_rate=0.05,
    )
    n0, n1 = (len(t) for t in prog.threads)
    boundaries = [
        [5, 5, n0 // 2, n0 // 2 + 1, (3 * n0) // 4, n0 - 1, n0, n0],
        [n1 // 3, n1 // 3, n1 // 2, n1, n1, n1, n1, n1],
    ]
    partition = partition_from_boundaries(prog, boundaries)
    save_stream_file(partition, str(path))
    return partition


class TestIrregularCutResume:
    def test_resumed_irregular_stream_matches_uninterrupted(
        self, tmp_path
    ):
        trace = tmp_path / "irregular.stream.jsonl"
        write_irregular_trace(trace)
        ck = tmp_path / "ck"
        first = ServeConfig(
            unix_path=str(tmp_path / "a.sock"), checkpoint_dir=str(ck)
        )
        with ServerThread(first) as daemon:
            sock = raw_handshake(daemon.address, trace, "s1", 4)
            wait_for_checkpoint(ck, min_epoch=2)
            sock.close()  # abandon mid-stream

        second = ServeConfig(
            unix_path=str(tmp_path / "b.sock"), checkpoint_dir=str(ck)
        )
        with ServerThread(second) as daemon:
            client = StreamClient(
                daemon.address, str(trace), "s1", policy=FAST, retries=2
            )
            served = client.push()
        # Resume coordinates survive irregular cuts: the committed
        # epochs were not re-fed, and the report is byte-identical to
        # the offline run over the same explicit boundaries.
        assert client.last_ack["resume_epoch"] >= 2
        assert served == offline_report(trace, "s1")


def start_daemon(tmp_path, sock_name, ck, shard_backend="thread"):
    """``repro serve`` as a real subprocess; returns (proc, address)."""
    sock_path = str(tmp_path / sock_name)
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--unix", sock_path,
            "--checkpoint-dir", str(ck),
            "--queue-depth", "2",
            "--shard-backend", shard_backend,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    banner = proc.stdout.readline()
    assert "serving on unix" in banner, (banner, proc.stderr.read())
    return proc, ("unix", sock_path)


class TestKilledDaemon:
    # (killed daemon's backend, restarted daemon's backend): same-
    # backend resume both ways, plus one cross-backend pair proving the
    # checkpoint format is shard-backend agnostic.
    @pytest.mark.parametrize("first_backend,second_backend", [
        ("thread", "thread"),
        ("process", "process"),
        ("process", "thread"),
    ])
    def test_sigkill_mid_epoch_then_resume(
        self, tmp_path, first_backend, second_backend
    ):
        trace = tmp_path / "t.stream.jsonl"
        write_trace(trace, events=300, seed=9)
        ck = tmp_path / "ck"
        proc, address = start_daemon(tmp_path, "a.sock", ck, first_backend)
        try:
            sock = raw_handshake(address, trace, "s1", 5)
            _, checkpoint = wait_for_checkpoint(ck, min_epoch=2)
            committed = checkpoint.next_epoch
            proc.kill()  # SIGKILL: no drain, no final checkpoint
            proc.wait(timeout=10)
            sock.close()
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait()

        proc, address = start_daemon(
            tmp_path, "b.sock", ck, second_backend
        )
        try:
            client = StreamClient(
                address, str(trace), "s1", policy=FAST, retries=2
            )
            served = client.push()
            # Resumed from a committed boundary at or past what we saw:
            # the killed daemon's folded epochs were not re-fed.
            assert client.last_ack["resume_epoch"] >= committed
            assert served == offline_report(trace, "s1")
        finally:
            proc.terminate()
            proc.wait(timeout=10)
