"""The live metrics endpoint: a text /metrics-style snapshot of every
``serve.*`` counter and gauge the daemon records, scraped over HTTP."""

import urllib.request

import pytest

from repro.obs import Recorder, render_metrics, render_snapshot
from repro.obs.metrics import metric_name
from repro.serve import ServeConfig, ServerThread, push_trace

from tests.serve.conftest import write_trace


class TestRenderer:
    def test_names_sanitized_and_prefixed(self):
        assert metric_name("serve.pending_epochs") == (
            "repro_serve_pending_epochs"
        )
        assert metric_name("serve.shard_depth.3") == (
            "repro_serve_shard_depth_3"
        )

    def test_counters_gauges_and_spans_rendered(self):
        recorder = Recorder()
        recorder.count("serve.epochs_folded", 7)
        recorder.gauge("serve.pending_epochs", 2)
        with recorder.span("epoch.analyze"):
            pass
        text = render_metrics(recorder)
        assert "# TYPE repro_serve_epochs_folded counter" in text
        assert "repro_serve_epochs_folded 7" in text
        assert "# TYPE repro_serve_pending_epochs gauge" in text
        assert "repro_serve_pending_epochs 2" in text
        assert "repro_epoch_analyze_count 1" in text
        assert "repro_epoch_analyze_total_ns" in text
        assert text.endswith("\n")

    def test_empty_recorder_renders_valid_empty_page(self):
        assert render_metrics(Recorder()) == "\n"

    def test_float_gauge_keeps_precision(self):
        text = render_snapshot({"gauges": {"g": 0.5}})
        assert "repro_g 0.5" in text

    def test_nonfinite_floats_render_prometheus_spelling(self):
        text = render_snapshot(
            {
                "gauges": {
                    "a": float("nan"),
                    "b": float("inf"),
                    "c": float("-inf"),
                }
            }
        )
        assert "repro_a NaN" in text
        assert "repro_b +Inf" in text
        assert "repro_c -Inf" in text
        # Python's own spellings must never leak onto the page.
        assert "nan" not in text
        assert " inf" not in text and " -inf" not in text

    def test_colliding_counter_names_merge_into_one_family(self):
        text = render_snapshot(
            {
                "counters": {
                    "serve.shard-depth": 3,
                    "serve.shard_depth": 4,
                }
            }
        )
        assert text.count("# TYPE repro_serve_shard_depth counter") == 1
        assert "repro_serve_shard_depth 7" in text

    def test_colliding_gauge_names_last_sorted_wins(self):
        text = render_snapshot(
            {"gauges": {"q-depth": 9, "q_depth": 2}}
        )
        assert text.count("# TYPE repro_q_depth gauge") == 1
        # "q_depth" sorts after "q-depth"; its sample wins.
        assert "repro_q_depth 2" in text

    def test_colliding_span_names_merge_aggregates(self):
        text = render_snapshot(
            {
                "spans": {
                    "pass.first": {
                        "count": 2, "total_ns": 100, "max_ns": 80
                    },
                    "pass-first": {
                        "count": 1, "total_ns": 50, "max_ns": 90
                    },
                }
            }
        )
        assert text.count("# TYPE repro_pass_first_count counter") == 1
        assert "repro_pass_first_count 3" in text
        assert "repro_pass_first_total_ns 150" in text
        assert "repro_pass_first_max_ns 90" in text

    def test_cross_kind_collision_emits_single_family(self):
        text = render_snapshot(
            {"counters": {"x.y": 1}, "gauges": {"x-y": 5}}
        )
        assert text.count("# TYPE repro_x_y") == 1
        assert "# TYPE repro_x_y counter" in text
        # Every # TYPE family appears exactly once page-wide.
        families = [
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE")
        ]
        assert len(families) == len(set(families))


def _scrape(address):
    host, port = address
    with urllib.request.urlopen(
        f"http://{host}:{port}/metrics", timeout=10
    ) as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        return response.read().decode("utf-8")


class TestEndpoint:
    @pytest.mark.parametrize("shard_backend", ["thread", "process"])
    def test_serves_every_counter_and_gauge_live(
        self, tmp_path, shard_backend
    ):
        trace = tmp_path / "t.stream.jsonl"
        write_trace(trace, events=200, seed=6)
        recorder = Recorder()
        config = ServeConfig(
            unix_path=str(tmp_path / "s.sock"),
            metrics_port=0,
            workers=2,
            shard_backend=shard_backend,
        )
        with ServerThread(config, recorder) as daemon:
            assert daemon.server.metrics_address is not None
            push_trace(daemon.address, str(trace), "s1")
            body = _scrape(daemon.server.metrics_address)
            snapshot = recorder.snapshot()
        # Every serve.* counter and gauge the recorder holds is on the
        # page, with the value it held at scrape time.
        lines = dict(
            line.split(" ", 1)
            for line in body.splitlines()
            if line and not line.startswith("#")
        )
        for family in ("counters", "gauges"):
            for name, value in snapshot[family].items():
                if not name.startswith("serve."):
                    continue
                exposed = metric_name(name)
                assert exposed in lines, (exposed, body)
                assert float(lines[exposed]) == float(value)
        # The tentpole families specifically:
        for required in (
            "repro_serve_streams_active",
            "repro_serve_pending_epochs",
            "repro_serve_epochs_folded",
            "repro_serve_epochs_received",
            "repro_serve_streams_accepted",
            "repro_serve_streams_completed",
            "repro_serve_workers",
            "repro_serve_shard_depth_0",
            "repro_serve_shard_depth_1",
        ):
            assert required in lines, (required, sorted(lines))
        assert float(lines["repro_serve_workers"]) == 2.0

    def test_scrapes_track_live_progress(self, tmp_path):
        trace = tmp_path / "t.stream.jsonl"
        write_trace(trace, events=150, seed=8)
        recorder = Recorder()
        config = ServeConfig(
            unix_path=str(tmp_path / "s.sock"), metrics_port=0
        )
        with ServerThread(config, recorder) as daemon:
            before = _scrape(daemon.server.metrics_address)
            assert "repro_serve_streams_completed" not in before
            push_trace(daemon.address, str(trace), "s1")
            after = _scrape(daemon.server.metrics_address)
        assert "repro_serve_streams_completed 1" in after

    def test_disabled_by_default(self, tmp_path):
        config = ServeConfig(unix_path=str(tmp_path / "s.sock"))
        with ServerThread(config) as daemon:
            assert daemon.server.metrics_address is None
