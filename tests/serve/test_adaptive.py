"""``repro serve --adaptive-epoch``: online epoch folding, recorded
boundaries, offline replayability, and the checkpoint mode guard."""

import json
import os
import random

import pytest

from repro.core.epoch import partition_auto, partition_from_boundaries
from repro.core.framework import ButterflyEngine
from repro.errors import CheckpointError
from repro.serve import ServeConfig, ServerThread, StreamClient, push_trace
from repro.serve.protocol import build_report, make_hello, resume_token
from repro.serve.shards import build_stream_engine, make_guard
from repro.trace.generator import alloc_handoff_program
from repro.trace.serialize import save_stream_file

from tests.serve.conftest import offline_report
from tests.serve.test_resume import wait_for_checkpoint
from tests.serve.test_server import FAST, raw_handshake


def handoff_trace(tmp_path, h=4, seed=3, threads=3, events=120):
    """A saved v2 stream whose FP rate genuinely depends on the
    heartbeat (allocation handoffs land in the wings)."""
    prog = alloc_handoff_program(
        random.Random(seed), num_threads=threads, events_per_thread=events
    )
    partition = partition_auto(prog, h)
    path = tmp_path / "handoff.stream.jsonl"
    save_stream_file(partition, str(path))
    return prog, partition, path


def adaptive_config(tmp_path, name, fold, shard_backend="thread", ck=None):
    """An adaptive daemon with the fold factor pinned at ``fold`` so
    folding behavior is deterministic under test timing."""
    return ServeConfig(
        unix_path=str(tmp_path / f"{name}.sock"),
        checkpoint_dir=None if ck is None else str(ck),
        queue_depth=2,
        shard_backend=shard_backend,
        adaptive_epoch=True,
        slo_min_fold=fold,
        slo_max_fold=fold,
    )


def replay_report(prog, report, stream_id, producer_epochs, num_threads):
    """Re-check ``report`` offline over its own recorded boundaries."""
    replay = partition_from_boundaries(
        prog, [list(cuts) for cuts in report["boundaries"]]
    )
    guard = make_guard("addrcheck", prog.preallocated)
    with ButterflyEngine(guard) as engine:
        engine.run(replay)
    hello = make_hello(
        stream_id, num_threads, producer_epochs, sorted(prog.preallocated)
    )
    return json.loads(
        json.dumps(
            build_report(
                stream_id, hello, engine, guard,
                boundaries=replay.boundaries,
            )
        )
    )


class TestAdaptiveServe:
    @pytest.mark.parametrize("shard_backend", ["thread", "process"])
    def test_folds_and_replays_bit_identically(
        self, tmp_path, shard_backend
    ):
        prog, partition, path = handoff_trace(tmp_path)
        config = adaptive_config(tmp_path, "a", fold=4, shard_backend=shard_backend)
        with ServerThread(config) as daemon:
            served = push_trace(daemon.address, str(path), "s1")
        boundaries = served["boundaries"]
        # The daemon really coalesced: fewer analysis epochs than
        # producer rows, and every thread folded the same number.
        assert len(boundaries) == partition.num_threads
        assert 0 < len(boundaries[0]) < partition.num_epochs
        assert len({len(cuts) for cuts in boundaries}) == 1
        offline = replay_report(
            prog, served, "s1", partition.num_epochs, partition.num_threads
        )
        assert offline == served

    def test_non_folding_adaptive_matches_fixed_serve(self, tmp_path):
        prog, partition, path = handoff_trace(tmp_path)
        config = adaptive_config(tmp_path, "a", fold=1)
        with ServerThread(config) as daemon:
            served = push_trace(daemon.address, str(path), "s1")
        # Fold factor 1 means producer cuts are used verbatim...
        assert served.pop("boundaries") == [
            list(cuts) for cuts in partition.boundaries
        ]
        # ...and everything else matches a fixed-epoch offline run.
        assert served == offline_report(path, "s1")

    def test_adaptive_resume_across_restart(self, tmp_path):
        prog, partition, path = handoff_trace(tmp_path, events=200)
        ck = tmp_path / "ck"
        first = adaptive_config(tmp_path, "a", fold=2, ck=ck)
        with ServerThread(first) as daemon:
            sock = raw_handshake(daemon.address, path, "s1", 6)
            wait_for_checkpoint(ck, min_epoch=1)
            sock.close()  # abandon mid-stream

        second = adaptive_config(tmp_path, "b", fold=2, ck=ck)
        with ServerThread(second) as daemon:
            client = StreamClient(
                daemon.address, str(path), "s1", policy=FAST, retries=2
            )
            served = client.push()
        # The resume coordinate is producer rows, not analysis epochs.
        assert client.last_ack["resume_epoch"] >= 2
        offline = replay_report(
            prog, served, "s1", partition.num_epochs, partition.num_threads
        )
        assert offline == served


class TestCheckpointModeGuard:
    def setup_stream(self, tmp_path, stream_id, h=4):
        prog = alloc_handoff_program(
            random.Random(7), num_threads=2, events_per_thread=80
        )
        partition = partition_auto(prog, h)
        hello = make_hello(
            stream_id,
            partition.num_threads,
            partition.num_epochs,
            sorted(prog.preallocated),
        )
        return partition, hello, resume_token(hello)

    ADAPTIVE = {
        "target_fold_ms": 1000.0,
        "queue_high": 3,
        "queue_low": 1,
        "min_fold": 2,
        "max_fold": 2,
    }

    def test_fixed_daemon_refuses_adaptive_checkpoint(self, tmp_path):
        partition, hello, token = self.setup_stream(tmp_path, "adaptive")
        ck = str(tmp_path / "ck")
        os.makedirs(ck)  # the daemon's loop normally creates this
        engine, resume = build_stream_engine(
            hello, token, ck, 1, "serial", dict(self.ADAPTIVE)
        )
        assert resume == 0
        for lid in range(4):
            engine.feed_blocks(lid, partition.epoch_blocks(lid))
        engine.close()

        with pytest.raises(CheckpointError, match="adaptive-epoch daemon"):
            build_stream_engine(hello, token, ck, 1, "serial", None)

        # The matching mode resumes, in producer-row coordinates.
        resumed, resume = build_stream_engine(
            hello, token, ck, 1, "serial", dict(self.ADAPTIVE)
        )
        assert resume == 4
        resumed.close()

    def test_adaptive_daemon_refuses_fixed_checkpoint(self, tmp_path):
        partition, hello, token = self.setup_stream(tmp_path, "fixed")
        ck = str(tmp_path / "ck")
        os.makedirs(ck)
        engine, _ = build_stream_engine(hello, token, ck, 1, "serial", None)
        for lid in range(3):
            engine.feed_blocks(lid, partition.epoch_blocks(lid))
        engine.close()

        with pytest.raises(CheckpointError, match="fixed-epoch daemon"):
            build_stream_engine(
                hello, token, ck, 1, "serial", dict(self.ADAPTIVE)
            )
