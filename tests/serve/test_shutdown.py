"""Graceful shutdown: SIGTERM/SIGINT drain in-flight work, checkpoint
every live stream, notify producers, flush sinks, and exit 0."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve import ServeConfig, ServerThread, StreamClient
from repro.serve.client import read_frame_sync
from repro.serve.protocol import FRAME_ERROR

from tests.serve.conftest import offline_report, write_trace
from tests.serve.test_resume import REPO_ROOT, wait_for_checkpoint
from tests.serve.test_server import FAST, raw_handshake


class TestInProcessDrain:
    @pytest.mark.parametrize("shard_backend", ["thread", "process"])
    def test_drain_notifies_and_checkpoints_inflight_streams(
        self, tmp_path, shard_backend
    ):
        trace = tmp_path / "t.stream.jsonl"
        write_trace(trace, events=300, seed=2)
        ck = tmp_path / "ck"
        config = ServeConfig(
            unix_path=str(tmp_path / "s.sock"),
            checkpoint_dir=str(ck),
            shard_backend=shard_backend,
            # A long idle timeout: the drain must interrupt a quietly
            # waiting read immediately, not ride the timeout out.
            idle_timeout=60.0,
        )
        daemon = ServerThread(config).start()
        sock = raw_handshake(daemon.address, trace, "inflight", 4)
        wait_for_checkpoint(ck, min_epoch=1)
        started = time.monotonic()
        daemon.stop()
        assert time.monotonic() - started < 30.0
        ftype, payload = read_frame_sync(sock)
        sock.close()
        assert ftype == FRAME_ERROR
        answer = json.loads(payload)
        assert answer["code"] == "drain"
        assert answer["token"]
        assert list(ck.glob("*.ckpt"))
        # The socket file is gone: a restarted daemon can rebind it.
        assert not os.path.exists(config.unix_path)

        # The checkpointed stream resumes on a fresh daemon.
        next_config = ServeConfig(
            unix_path=str(tmp_path / "s2.sock"), checkpoint_dir=str(ck)
        )
        with ServerThread(next_config) as daemon:
            client = StreamClient(
                daemon.address, str(trace), "inflight",
                policy=FAST, retries=2,
            )
            served = client.push()
        assert client.last_ack["resume_epoch"] >= 1
        assert served == offline_report(trace, "inflight")

    def test_stop_is_idempotent(self, tmp_path):
        daemon = ServerThread(
            ServeConfig(unix_path=str(tmp_path / "s.sock"))
        ).start()
        daemon.stop()
        daemon.stop()


def run_daemon(tmp_path, extra=()):
    sock_path = str(tmp_path / "serve.sock")
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--unix", sock_path,
            "--checkpoint-dir", str(tmp_path / "ck"),
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    banner = proc.stdout.readline()
    assert "serving on unix" in banner, (banner, proc.stderr.read())
    return proc, ("unix", sock_path)


class TestSignals:
    @pytest.mark.parametrize("shard_backend", ["thread", "process"])
    def test_sigterm_drains_flushes_and_exits_zero(
        self, tmp_path, shard_backend
    ):
        trace = tmp_path / "t.stream.jsonl"
        write_trace(trace, events=200, seed=1)
        events_path = tmp_path / "events.jsonl"
        summary_path = tmp_path / "summary.json"
        proc, address = run_daemon(tmp_path, (
            "--emit-events", str(events_path),
            "--summary-json", str(summary_path),
            "--shard-backend", shard_backend,
        ))
        try:
            served = StreamClient(
                address, str(trace), "s1", policy=FAST, retries=2
            ).push()
            assert served == offline_report(trace, "s1")
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait()
        assert proc.returncode == 0, (out, err)
        assert "drained:" in out
        assert "streams_completed=1" in out
        # The JSONL event sink was flushed on the way down: the
        # stream's full lifecycle plus the drain itself are on disk.
        events = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        names = [e["ev"] for e in events]
        assert "serve.accepted" in names
        assert "serve.completed" in names
        assert "serve.drain" in names
        summary = json.loads(summary_path.read_text())
        assert summary["counters"]["serve.streams_completed"] == 1

    def test_sigint_also_drains(self, tmp_path):
        # No --emit-events / --summary-json: nothing was counted, so
        # the farewell line is the bare form.
        proc, _ = run_daemon(tmp_path)
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, (out, err)
        assert "drained" in out
