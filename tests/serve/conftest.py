"""Shared fixtures for the serve daemon tests."""

import json
import random

import pytest

from repro.core.epoch import partition_auto
from repro.core.framework import ButterflyEngine
from repro.serve import ServeConfig, ServerThread, build_report, make_hello
from repro.serve.server import make_guard
from repro.trace.generator import simulated_alloc_program
from repro.trace.serialize import (
    iter_load,
    save_stream_file,
    stream_header,
)


def write_trace(path, threads=2, events=200, h=8, seed=0):
    """A version-2 stream trace file; returns its partition."""
    prog = simulated_alloc_program(
        random.Random(seed), num_threads=threads, total_events=events
    )
    partition = partition_auto(prog, h)
    save_stream_file(partition, str(path))
    return partition


def offline_report(path, stream_id, lifeguard="addrcheck"):
    """The report offline ``repro check`` computes over the same file,
    JSON round-tripped so it compares bit-for-bit with a wire REPORT."""
    with open(path) as fp:
        header = stream_header(fp, str(path))
    guard = make_guard(lifeguard, frozenset(header["preallocated"]))
    engine = ButterflyEngine(guard)
    try:
        engine.run_source(iter_load(str(path)))
    finally:
        engine.close()
    hello = make_hello(
        stream_id,
        header["threads"],
        header["epochs"],
        header["preallocated"],
        lifeguard,
    )
    return json.loads(
        json.dumps(build_report(stream_id, hello, engine, guard))
    )


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.stream.jsonl"
    write_trace(path)
    return path


@pytest.fixture(params=["thread", "process"])
def daemon(request, tmp_path):
    """A running in-process daemon on a Unix socket; stopped on exit.

    Parametrized over both shard backends: every daemon-facing test --
    end-to-end pushes, transport faults, the overload ladder (shed),
    backpressure accounting -- must behave identically whether engines
    live on shard threads or in shard worker processes.
    """
    thread = ServerThread(
        ServeConfig(
            unix_path=str(tmp_path / "serve.sock"),
            checkpoint_dir=str(tmp_path / "ckpt"),
            queue_depth=2,
            idle_timeout=5.0,
            shard_backend=request.param,
        )
    )
    with thread:
        yield thread
