"""Integration tests for the serve daemon: correctness, concurrency,
fault isolation, backpressure, and the overload ladder."""

import json
import socket
import threading
import time

import pytest

from repro.obs.recorder import Recorder
from repro.resilience.faults import FaultPlan
from repro.resilience.supervisor import RetryPolicy
from repro.serve import (
    ServeConfig,
    ServeErrorFrame,
    ServerThread,
    StreamClient,
    push_trace,
)
from repro.serve.client import read_frame_sync
from repro.serve.protocol import (
    FRAME_ACK,
    FRAME_END,
    FRAME_EPOCH,
    FRAME_ERROR,
    FRAME_HELLO,
    FRAME_REPORT,
    encode_frame,
    encode_json_frame,
    make_hello,
)
from repro.trace.serialize import stream_header

from tests.serve.conftest import offline_report, write_trace

#: Zero-backoff retry policy: tests exercise the retry *logic*, not its
#: production pacing.
FAST = RetryPolicy(backoff_base=0.0, backoff_max=0.0)


def connect(address):
    kind, where = address
    sock = socket.socket(
        socket.AF_UNIX if kind == "unix" else socket.AF_INET,
        socket.SOCK_STREAM,
    )
    sock.settimeout(10.0)
    sock.connect(where)
    return sock


def raw_handshake(address, path, stream_id, epochs_to_send=0):
    """HELLO + ``epochs_to_send`` raw epoch frames; the open socket."""
    with open(path) as fp:
        header = stream_header(fp, str(path))
        lines = [fp.readline() for _ in range(epochs_to_send)]
    hello = make_hello(
        stream_id, header["threads"], header["epochs"],
        header["preallocated"], "addrcheck",
    )
    sock = connect(address)
    sock.sendall(encode_json_frame(FRAME_HELLO, hello))
    ftype, payload = read_frame_sync(sock)
    assert ftype == FRAME_ACK, payload
    for line in lines:
        sock.sendall(encode_frame(FRAME_EPOCH, line.strip().encode()))
    return sock


class TestEndToEnd:
    def test_report_matches_offline_run(self, daemon, trace_file):
        served = push_trace(daemon.address, str(trace_file), "s1")
        assert served == offline_report(trace_file, "s1")

    def test_taintcheck_stream(self, daemon, trace_file):
        served = push_trace(
            daemon.address, str(trace_file), "s1", lifeguard="taintcheck"
        )
        assert served == offline_report(
            trace_file, "s1", lifeguard="taintcheck"
        )

    def test_tcp_transport(self, tmp_path, trace_file):
        with ServerThread(ServeConfig(port=0)) as daemon:
            assert daemon.address[0] == "tcp"
            served = push_trace(daemon.address, str(trace_file), "s1")
        assert served == offline_report(trace_file, "s1")

    def test_window_bound_holds_under_push(self, daemon, trace_file):
        report = push_trace(daemon.address, str(trace_file), "s1")
        assert report["window_high_water"] <= report["window_bound"]

    def test_checkpoint_removed_after_completion(
        self, daemon, trace_file, tmp_path
    ):
        push_trace(daemon.address, str(trace_file), "s1")
        # The daemon unlinks just after flushing the REPORT frame, so
        # give the loop thread a beat to get there.
        deadline = time.monotonic() + 5.0
        while list((tmp_path / "ckpt").glob("*.ckpt")):
            assert time.monotonic() < deadline, "checkpoint not removed"
            time.sleep(0.01)

    def test_concurrent_streams_all_correct(self, daemon, tmp_path):
        paths = {}
        for i in range(6):
            path = tmp_path / f"t{i}.stream.jsonl"
            write_trace(path, threads=2 + i % 2, events=150, seed=i)
            paths[f"stream-{i}"] = path
        results, errors = {}, []

        def push(sid, path):
            try:
                results[sid] = push_trace(daemon.address, str(path), sid)
            except Exception as exc:  # pragma: no cover - assertion aid
                errors.append((sid, exc))

        threads = [
            threading.Thread(target=push, args=(sid, path))
            for sid, path in paths.items()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for sid, path in paths.items():
            assert results[sid] == offline_report(path, sid)


class TestTransportFaults:
    def test_faulted_push_matches_clean_report(self, daemon, trace_file):
        plan = FaultPlan(
            disconnect=0.08, trunc_frame=0.05, corrupt_bytes=0.05, seed=3
        )
        served = push_trace(
            daemon.address, str(trace_file), "faulty",
            plan=plan, retries=40,
        )
        expected = offline_report(trace_file, "faulty")
        assert served == expected

    def test_corrupt_frame_is_contained_to_its_stream(
        self, daemon, trace_file
    ):
        sock = raw_handshake(daemon.address, trace_file, "bad", 1)
        sock.sendall(encode_frame(FRAME_EPOCH, b"definitely not json"))
        ftype, payload = read_frame_sync(sock)
        assert ftype == FRAME_ERROR
        answer = json.loads(payload)
        assert answer["code"] == "protocol"
        assert answer["token"]  # resumable: the good epoch survived
        sock.close()
        # The daemon is still healthy: a fresh stream completes.
        served = push_trace(daemon.address, str(trace_file), "good")
        assert served == offline_report(trace_file, "good")

    def test_idle_producer_times_out(self, tmp_path, trace_file):
        config = ServeConfig(
            unix_path=str(tmp_path / "s.sock"), idle_timeout=0.2
        )
        with ServerThread(config) as daemon:
            sock = raw_handshake(daemon.address, trace_file, "quiet", 1)
            ftype, payload = read_frame_sync(sock)  # stall past timeout
            assert ftype == FRAME_ERROR
            assert json.loads(payload)["code"] == "timeout"
            sock.close()

    def test_slow_trickle_inside_a_frame_is_not_idle(
        self, tmp_path, trace_file
    ):
        # Regression: read_frame used to wrap the whole header+payload
        # read in ONE wait_for, so a live producer trickling a large
        # frame slower than idle_timeout was killed as "idle" mid-frame.
        # The deadline is per read now -- progress resets it -- so a
        # trickled delivery slower than the timeout must still complete.
        config = ServeConfig(
            unix_path=str(tmp_path / "s.sock"), idle_timeout=0.3
        )
        with open(trace_file) as fp:
            header = stream_header(fp, str(trace_file))
            lines = [line.strip() for line in fp if line.strip()]
        epochs = header["epochs"]
        with ServerThread(config) as daemon:
            sock = raw_handshake(daemon.address, trace_file, "drip", 0)
            # Trickle the first epoch frame in small chunks, pausing
            # between them so the frame takes several idle_timeouts end
            # to end while no single gap exceeds the deadline.
            frame = encode_frame(FRAME_EPOCH, lines[0].encode())
            step = max(1, len(frame) // 6)
            for off in range(0, len(frame), step):
                sock.sendall(frame[off:off + step])
                time.sleep(0.15)
            for line in lines[1:epochs]:
                sock.sendall(encode_frame(FRAME_EPOCH, line.encode()))
            sock.sendall(encode_json_frame(
                FRAME_END, {"epochs_written": epochs}
            ))
            ftype, payload = read_frame_sync(sock)
            sock.close()
        assert ftype == FRAME_REPORT, payload
        assert json.loads(payload) == offline_report(trace_file, "drip")

    def test_stalling_producer_recovers_through_retries(
        self, tmp_path, trace_file
    ):
        config = ServeConfig(
            unix_path=str(tmp_path / "s.sock"),
            checkpoint_dir=str(tmp_path / "ck"),
            idle_timeout=0.3,
        )
        plan = FaultPlan(stall=0.25, stall_s=1.0, seed=7)
        with ServerThread(config) as daemon:
            served = StreamClient(
                daemon.address, str(trace_file), "slow",
                plan=plan, policy=FAST, retries=40,
            ).push()
        assert served == offline_report(trace_file, "slow")


class TestOverloadLadder:
    def test_duplicate_stream_id_refused(self, daemon, trace_file):
        sock = raw_handshake(daemon.address, trace_file, "dup", 1)
        with pytest.raises(ServeErrorFrame, match="already connected"):
            StreamClient(
                daemon.address, str(trace_file), "dup",
                policy=FAST, retries=0,
            ).push()
        sock.close()

    def test_stream_cap_refuses_connects(self, tmp_path, trace_file):
        config = ServeConfig(
            unix_path=str(tmp_path / "s.sock"), max_streams=1
        )
        with ServerThread(config, Recorder()) as daemon:
            sock = raw_handshake(daemon.address, trace_file, "first", 1)
            with pytest.raises(ServeErrorFrame, match="cap"):
                StreamClient(
                    daemon.address, str(trace_file), "second",
                    policy=FAST, retries=0,
                ).push()
            sock.close()
            snapshot = daemon.server.recorder.snapshot()
        assert snapshot["counters"]["serve.connects_refused"] == 1

    @pytest.mark.parametrize("shard_backend", ["thread", "process"])
    def test_shed_newest_is_resumable(
        self, tmp_path, trace_file, shard_backend
    ):
        # max_pending_epochs=0: the very first queued epoch trips the
        # shed rung, and the (only, hence newest) stream is evicted with
        # its checkpoint intact.
        shed_config = ServeConfig(
            unix_path=str(tmp_path / "s.sock"),
            checkpoint_dir=str(tmp_path / "ck"),
            max_pending_epochs=0,
            shard_backend=shard_backend,
        )
        with ServerThread(shed_config, Recorder()) as daemon:
            with pytest.raises(ServeErrorFrame) as exc_info:
                StreamClient(
                    daemon.address, str(trace_file), "victim",
                    policy=FAST, retries=0,
                ).push()
            snapshot = daemon.server.recorder.snapshot()
        assert exc_info.value.code == "shed"
        assert snapshot["counters"]["serve.streams_shed"] >= 1
        assert list((tmp_path / "ck").glob("*.ckpt"))
        # A healthy daemon on the same checkpoint dir finishes the run.
        ok_config = ServeConfig(
            unix_path=str(tmp_path / "s2.sock"),
            checkpoint_dir=str(tmp_path / "ck"),
        )
        with ServerThread(ok_config) as daemon:
            served = StreamClient(
                daemon.address, str(trace_file), "victim",
                policy=FAST, retries=5,
            ).push()
        assert served == offline_report(trace_file, "victim")


class TestBackpressure:
    def test_stalls_counted_and_accounting_balances(
        self, tmp_path, trace_file
    ):
        config = ServeConfig(
            unix_path=str(tmp_path / "s.sock"), queue_depth=1
        )
        with ServerThread(config, Recorder()) as daemon:
            push_trace(daemon.address, str(trace_file), "s1")
            snapshot = daemon.server.recorder.snapshot()
        counters = snapshot["counters"]
        assert counters["serve.backpressure_stalls"] >= 1
        assert (
            counters["serve.epochs_received"]
            == counters["serve.epochs_folded"]
        )
        assert snapshot["gauges"]["serve.pending_epochs"] == 0
        assert counters["serve.bytes_ingested"] > 0
